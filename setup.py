"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e . --no-use-pep517`` (the legacy editable path) works
on machines without the ``wheel`` package, e.g. offline build hosts.
"""

from setuptools import setup

setup()
