"""Figure 10: CPU/FPGA task-assignment comparison.

Compares, per benchmark, the modeled end-to-end FLEX runtime when only
step (d) — FOP — runs on the FPGA (the proposed partition) against the
alternative that also offloads step (e) — insert & update.  The paper
reports an average 1.2x advantage for keeping the update on the CPU,
because offloading it forces every updated position back across the link
and serialises the host's region building against the device.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import FlexConfig
from repro.core.flex_legalizer import FlexLegalizer
from repro.core.task_assignment import TaskPartition
from repro.experiments import paper_data
from repro.experiments.common import (
    DEFAULT_FIGURE_BENCHMARKS,
    DEFAULT_SCALE,
    ExperimentResult,
    run_design,
)


def run_fig10_task_assignment(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate the Fig. 10 task-assignment comparison."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS)
    rows = []
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("flex",))
        assert bundle.flex is not None
        legalization = bundle.flex.legalization

        fop_only = FlexLegalizer(
            FlexConfig(task_partition=TaskPartition.FOP_ON_FPGA)
        ).model_run(legalization)
        both = FlexLegalizer(
            FlexConfig(task_partition=TaskPartition.FOP_AND_UPDATE_ON_FPGA)
        ).model_run(legalization)
        t_fop = fop_only.modeled_runtime_seconds
        t_both = both.modeled_runtime_seconds
        rows.append(
            [
                name,
                t_fop,
                t_both,
                t_both / t_fop if t_fop else float("nan"),
                fop_only.timeline.visible_transfer,
                both.timeline.visible_transfer,
            ]
        )
    speedups = [row[3] for row in rows if isinstance(row[3], float)]
    average = sum(speedups) / len(speedups) if speedups else float("nan")
    rows.append(["Average", "", "", average, "", ""])
    return ExperimentResult(
        title="Fig. 10: speedup of assigning only FOP (step d) to the FPGA",
        headers=[
            "benchmark",
            "fop_on_fpga_s",
            "fop+update_on_fpga_s",
            "speedup",
            "visible_xfer_fop_s",
            "visible_xfer_both_s",
        ],
        rows=rows,
        notes=[
            "paper: keeping insert & update on the CPU is on average "
            f"{paper_data.FIG10_AVERAGE}x faster",
        ],
        extras={"average_speedup": average},
    )
