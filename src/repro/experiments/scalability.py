"""Section 5.4: scalability of FLEX vs. the multi-threaded CPU legalizer.

The paper argues that FLEX scales better than the CPU / CPU-GPU
approaches because it parallelises *within* a region (two FOP PEs
evaluate two insertion points of the same target and synchronise with a
few-cycle comparison) instead of across regions (which requires heavy
position synchronisation).  This experiment quantifies that claim on one
design: the modeled FLEX runtime as the FOP PE count grows from 1 to the
largest count that fits on the U50, next to the multi-threaded CPU
runtime as the thread count grows — the CPU curve saturates at ~1.8x
while the FLEX curve stays near-linear until it becomes host-bound.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.config import FlexConfig
from repro.core.flex_legalizer import FlexLegalizer
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, run_design
from repro.fpga.resources import ResourceEstimator
from repro.perf.thread_model import MultiThreadModel


def run_scalability(
    name: str = "des_perf_b_md2",
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    pe_counts: Sequence[int] = (1, 2, 3, 4),
    thread_counts: Sequence[int] = (1, 2, 4, 8, 10),
) -> ExperimentResult:
    """Compare FLEX PE scaling against CPU thread scaling (Sec. 5.4)."""
    bundle = run_design(name, scale=scale, seed=seed, algorithms=("flex", "mgl"))
    assert bundle.flex is not None and bundle.mgl is not None
    legalization = bundle.flex.legalization
    estimator = ResourceEstimator()

    rows = []
    flex_base = None
    for pes in pe_counts:
        config = FlexConfig(fop_pe_parallelism=pes)
        run = FlexLegalizer(config).model_run(legalization)
        fits = estimator.estimate(config).fits()
        time_s = run.modeled_runtime_seconds
        if flex_base is None:
            flex_base = time_s
        rows.append([f"FLEX {pes} PE", time_s, flex_base / time_s, "yes" if fits else "no"])

    thread_model = MultiThreadModel()
    cpu_base = None
    for threads in thread_counts:
        time_s = thread_model.runtime_seconds(bundle.mgl.legalization.trace, threads)
        if cpu_base is None:
            cpu_base = time_s
        rows.append([f"CPU {threads} threads", time_s, cpu_base / time_s, "-"])

    return ExperimentResult(
        title=f"Sec. 5.4: scalability of FLEX PEs vs CPU threads on {name}",
        headers=["configuration", "time_s", "self_speedup", "fits U50"],
        rows=rows,
        notes=[
            "FLEX parallelises insertion points of the same region (cheap sync); "
            "the CPU legalizer parallelises regions and saturates at ~1.8x",
            "host-side multiprocess sharding is measured (not modeled) by "
            "run_worker_scalability",
        ],
    )


def run_worker_scalability(
    name: str = "des_perf_b_md2",
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    baseline_backend: str = "numpy",
    repeat: int = 1,
) -> ExperimentResult:
    """Measured wall-clock sweep of the ``multiprocess`` backend's workers.

    Unlike :func:`run_scalability` (which *models* the FPGA/CPU runtime
    from recorded counters), this experiment measures real end-to-end
    host wall time: the same design is legalized with the sequential
    baseline backend and then with the multiprocess backend at each
    worker count.  Every run is bit-for-bit identical — the sweep only
    changes how long it takes — which the rows assert by comparing the
    average displacement.

    ``repeat`` runs each configuration that many times and reports the
    fastest run.  The multiprocess backend keeps its worker pool (and
    the shared-memory cell store) alive between repeats, so with
    ``repeat >= 2`` the reported number is the steady-state warm-pool
    cost — what an ECO stream actually pays — rather than the one-off
    fork latency of the first run.
    """
    from repro.benchgen import iccad2017_design
    from repro.kernels import MultiprocessKernelBackend, available_backends
    from repro.mgl.fop import FOPConfig
    from repro.mgl.legalizer import MGLLegalizer
    from repro.core.sacs import SortAheadShifter

    if baseline_backend not in available_backends():  # pragma: no cover
        baseline_backend = "python"
    repeat = max(1, int(repeat))

    def run_once(backend):
        layout = iccad2017_design(name, scale=scale, seed=seed)
        legalizer = MGLLegalizer(
            FOPConfig(shifter=SortAheadShifter(), use_fwd_bwd_pipeline=True),
            backend=backend,
        )
        start = time.perf_counter()
        result = legalizer.legalize(layout)
        return result, time.perf_counter() - start

    def run_best(backend):
        result, best_s = run_once(backend)
        for _ in range(repeat - 1):
            result, seconds = run_once(backend)
            best_s = min(best_s, seconds)
        return result, best_s

    baseline, baseline_s = run_best(baseline_backend)
    rows = [
        [
            baseline_backend,
            1,
            baseline_s,
            1.0,
            "-",
            baseline.average_displacement,
            baseline.trace.retry0_feasibility_rate * 100.0,
            baseline.trace.retries_total,
        ]
    ]
    for workers in worker_counts:
        backend = MultiprocessKernelBackend(workers=workers)
        try:
            result, seconds = run_best(backend)
        finally:
            # Release the persistent worker pool before timing the next
            # row — idle forked workers would contaminate the sweep.
            backend.close()
        stats = result.trace.shard_stats or {}
        detail = stats.get("mode", "?")
        if stats.get("mode") == "wavefront":
            detail += f" rej={stats.get('speculation_rejects', 0)}"
        if stats.get("sequential_rerun"):
            detail += " rerun"
        rows.append(
            [
                "multiprocess",
                workers,
                seconds,
                baseline_s / seconds if seconds > 0 else float("nan"),
                detail,
                result.average_displacement,
                result.trace.retry0_feasibility_rate * 100.0,
                result.trace.retries_total,
            ]
        )
    return ExperimentResult(
        title=f"Host scalability: multiprocess workers vs {baseline_backend} on {name}",
        headers=[
            "backend",
            "workers",
            "wall_s",
            "speedup",
            "mode",
            "AveDis",
            "retry0_%",
            "retries",
        ],
        rows=rows,
        notes=[
            "all rows are bit-for-bit identical placements; only wall time varies",
            f"wall_s is the best of {repeat} run(s); repeats >= 2 reuse the "
            "persistent worker pool (warm shared-memory path)",
            "speculation rejects show where dense designs serialise the wavefront",
            "retry0_% / retries report the occupancy-aware window planner's "
            "feasibility counters (identical across rows, like AveDis)",
        ],
    )
