"""Table 2: FPGA resource consumption.

The resource estimator composes module-level figures into totals for the
1-PE and 2-PE configurations and compares them with the published Table 2
numbers and with the Alveo U50 capacity.  The harness also reports the
largest PE count that still fits on the device (the scalability headroom
discussed in Sec. 5.4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FlexConfig
from repro.experiments import paper_data
from repro.experiments.common import ExperimentResult
from repro.fpga.resources import ALVEO_U50, ResourceEstimator


def run_table2(config: Optional[FlexConfig] = None) -> ExperimentResult:
    """Regenerate Table 2 from the module-level resource model."""
    estimator = ResourceEstimator()
    reports = estimator.table2(config)
    rows = []
    for report in reports:
        paper_row = paper_data.TABLE2.get(
            "No parallelism of FOP PE" if "1 " in report.config_label else "2 parallelism of FOP PE",
            {},
        )
        rows.append(
            [
                report.config_label,
                report.totals.luts,
                report.totals.ffs,
                report.totals.brams,
                report.totals.dsps,
                paper_row.get("luts", ""),
                paper_row.get("brams", ""),
            ]
        )
    available = paper_data.TABLE2["Available"]
    rows.append(
        [
            "Available (U50)",
            ALVEO_U50.luts,
            ALVEO_U50.ffs,
            ALVEO_U50.brams,
            ALVEO_U50.dsps,
            available["luts"],
            available["brams"],
        ]
    )
    max_pes = estimator.max_pe_count(config)
    return ExperimentResult(
        title="Table 2: FPGA resource consumption",
        headers=["configuration", "LUTs", "FFs", "BRAMs", "DSPs", "paper LUTs", "paper BRAMs"],
        rows=rows,
        notes=[
            f"largest FOP PE count fitting on the U50 under this model: {max_pes} "
            "(BRAM-bound, as discussed in Sec. 5.4)",
        ],
        extras={"reports": reports, "max_pe_count": max_pes},
    )
