"""Experiment harness: one module per paper table / figure.

Every experiment module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``format()``
method prints the same rows / series the paper reports, and (where the
paper provides numbers) the published reference values next to the
measured ones.  ``repro.experiments.runner`` executes the full set and is
what the ``benchmarks/`` harness and the EXPERIMENTS.md tables are
generated from.

Absolute runtimes are modeled (see DESIGN.md, Substitutions); the
experiments therefore compare *shapes*: who wins, by roughly which
factor, and how the trends move with density, cell height mix and thread
or PE count.
"""

from repro.experiments.common import DesignBundle, ExperimentResult, run_design_suite
from repro.experiments import paper_data
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig2 import run_fig2_scaling, run_fig2_parallelism, run_fig2_shift_share
from repro.experiments.fig6 import run_fig6_sorting_share
from repro.experiments.fig8 import run_fig8_ladder
from repro.experiments.fig9 import run_fig9_sacs
from repro.experiments.fig10 import run_fig10_task_assignment
from repro.experiments.scalability import run_scalability
from repro.experiments.eco_churn import run_eco_churn
from repro.experiments.runner import run_all

__all__ = [
    "DesignBundle",
    "ExperimentResult",
    "run_design_suite",
    "paper_data",
    "run_table1",
    "run_table2",
    "run_fig2_scaling",
    "run_fig2_parallelism",
    "run_fig2_shift_share",
    "run_fig6_sorting_share",
    "run_fig8_ladder",
    "run_fig9_sacs",
    "run_fig10_task_assignment",
    "run_scalability",
    "run_eco_churn",
    "run_all",
]
