"""Figure 8: speedup of the FPGA-side optimisation ladder.

Normalised speedups of the FOP datapath as each FLEX optimisation is
enabled: normal pipeline → SACS → multi-granularity pipeline → two
parallel FOP PEs.  The paper reports 2–3x for SACS, an additional 1–2x
for the multi-granularity pipeline and 1.6–1.9x for the second PE.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import FlexConfig
from repro.experiments import paper_data
from repro.experiments.common import (
    DEFAULT_FIGURE_BENCHMARKS,
    DEFAULT_SCALE,
    ExperimentResult,
    run_design,
)
from repro.fpga.pipeline_sim import FpgaPipelineModel


def run_fig8_ladder(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    config: Optional[FlexConfig] = None,
) -> ExperimentResult:
    """Regenerate the Fig. 8 speedup ladder on the (scaled) benchmarks."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS)
    config = config or FlexConfig()
    rows = []
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("flex",))
        assert bundle.flex is not None
        trace = bundle.flex.trace
        model = FpgaPipelineModel(config, trace_used_sacs=trace.shift_algorithm == "sacs")
        ladder = model.speedup_ladder(trace)
        rows.append(
            [
                name,
                ladder["normal-pipeline"],
                ladder["sacs"],
                ladder["multi-granularity"],
                ladder["2-parallel-fop-pe"],
                ladder["2-parallel-fop-pe"] / ladder["multi-granularity"],
            ]
        )
    ranges = paper_data.FIG8_RANGES
    notes = [
        "columns are cumulative speedups over the normal pipeline; the last column "
        "is the incremental gain of the second FOP PE",
        f"paper ranges: SACS {ranges['sacs'][0]}-{ranges['sacs'][1]}x, "
        f"multi-granularity +{ranges['multi-granularity'][0]}-{ranges['multi-granularity'][1]}x, "
        f"2 PEs +{ranges['2-parallel-fop-pe'][0]}-{ranges['2-parallel-fop-pe'][1]}x",
    ]
    return ExperimentResult(
        title="Fig. 8: normalized speedup of the FPGA optimisation ladder",
        headers=["benchmark", "normal", "sacs", "multi-granularity", "2-fop-pe", "2pe_gain"],
        rows=rows,
        notes=notes,
    )
