"""Run every experiment and print (or save) the full report.

``python -m repro.experiments.runner`` regenerates all tables and figures
of the paper on the scaled synthetic suite; the output is what
EXPERIMENTS.md is built from.  The scale, benchmark subset and seed can
be controlled from the command line.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.benchgen.iccad2017 import benchmark_names
from repro.experiments.common import DEFAULT_FIGURE_BENCHMARKS, DEFAULT_SCALE, ExperimentResult
from repro.experiments.fig2 import run_fig2_parallelism, run_fig2_scaling, run_fig2_shift_share
from repro.experiments.fig6 import run_fig6_sorting_share
from repro.experiments.fig8 import run_fig8_ladder
from repro.experiments.fig9 import run_fig9_sacs
from repro.experiments.eco_churn import run_eco_churn
from repro.experiments.eco_soak import run_eco_soak
from repro.experiments.fig10 import run_fig10_task_assignment
from repro.experiments.scalability import run_worker_scalability
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def run_all(
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    table1_names: Optional[Sequence[str]] = None,
    figure_names: Optional[Sequence[str]] = None,
    host_scaling: bool = False,
    eco: bool = False,
    eco_soak: bool = False,
) -> Dict[str, ExperimentResult]:
    """Run every table / figure experiment and return the results by key."""
    figure_names = list(figure_names) if figure_names is not None else list(DEFAULT_FIGURE_BENCHMARKS)
    results: Dict[str, ExperimentResult] = {}
    results["table1"] = run_table1(table1_names, scale=scale, seed=seed)
    results["table2"] = run_table2()
    results["fig2a"] = run_fig2_scaling(scale=scale, seed=seed)
    results["fig2bc"] = run_fig2_parallelism(figure_names[:4], scale=scale, seed=seed)
    results["fig2g"] = run_fig2_shift_share(figure_names[:4], scale=scale, seed=seed)
    results["fig6g"] = run_fig6_sorting_share(figure_names[:4], scale=scale, seed=seed)
    results["fig8"] = run_fig8_ladder(figure_names, scale=scale, seed=seed)
    results["fig9"] = run_fig9_sacs(figure_names, scale=scale, seed=seed)
    results["fig10"] = run_fig10_task_assignment(figure_names, scale=scale, seed=seed)
    if host_scaling:
        results["host_scaling"] = run_worker_scalability(scale=scale, seed=seed)
    if eco:
        results["eco_churn"] = run_eco_churn(scale=scale, seed=seed)
    if eco_soak:
        results["eco_soak"] = run_eco_soak(
            num_cells=max(120, int(round(112644 * scale))),
            seed=seed if seed is not None else 1,
            batches=100, churn=0.02, max_avedis_drift=0.05, repack_every=25,
        )
    return results


def format_report(results: Dict[str, ExperimentResult]) -> str:
    """Render all experiment results as one plain-text report."""
    blocks = []
    keys = ["table1", "table2", "fig2a", "fig2bc", "fig2g", "fig6g", "fig8", "fig9",
            "fig10", "host_scaling", "eco_churn", "eco_soak"]
    for key in keys:
        if key in results:
            blocks.append(results[key].format())
    return ("\n\n" + "=" * 96 + "\n\n").join(blocks)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Regenerate the FLEX paper's tables and figures")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="cell-count scale relative to the published benchmarks")
    parser.add_argument("--seed", type=int, default=None, help="benchmark generation seed")
    parser.add_argument("--quick", action="store_true",
                        help="use a 6-benchmark subset for Table 1 as well")
    parser.add_argument("--host-scaling", action="store_true",
                        help="also run the measured multiprocess worker sweep")
    parser.add_argument("--eco", action="store_true",
                        help="also run the ECO churn sweep (incremental vs full re-runs)")
    parser.add_argument("--eco-soak", action="store_true",
                        help="also run the 100-batch displacement-bounded ECO soak")
    parser.add_argument("--output", type=str, default=None, help="write the report to this file")
    args = parser.parse_args(argv)

    table1_names = list(DEFAULT_FIGURE_BENCHMARKS) if args.quick else benchmark_names()
    start = time.perf_counter()
    results = run_all(scale=args.scale, seed=args.seed, table1_names=table1_names,
                      host_scaling=args.host_scaling, eco=args.eco,
                      eco_soak=args.eco_soak)
    report = format_report(results)
    report += f"\n\nharness wall time: {time.perf_counter() - start:.1f} s\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
