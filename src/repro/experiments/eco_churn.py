"""ECO churn sweep: incremental re-legalization vs full re-runs.

The incremental engine's pitch is simple — after a small ECO delta, do
not re-legalize the whole design.  This experiment quantifies it: the
same seeded delta stream is applied to two copies of one design; the
*incremental* copy goes through :class:`~repro.incremental
.IncrementalLegalizer` (dirty-set re-legalization), the *full* copy is
reset and re-legalized from scratch after every batch — the naive
production alternative.  Both paths use the same legalizer parameters
and kernel backend, so the wall-time ratio is pure engine win, and the
AveDis columns show quality parity (the incremental path reuses the
committed placements of all clean cells, so it can only differ where the
dirty sets differ from a global re-optimisation).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.benchgen.eco import EcoSpec, generate_eco_stream
from repro.benchgen.iccad2017 import iccad2017_design
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult
from repro.incremental.engine import IncrementalLegalizer, apply_deltas
from repro.mgl.legalizer import fast_mgl_legalizer as _make_legalizer


def run_eco_churn(
    name: str = "des_perf_1",
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    churn_rates: Sequence[float] = (0.01, 0.02, 0.05, 0.10, 0.25),
    batches: int = 2,
    backend: str = "numpy",
    eco_seed: int = 0,
    macro_move_probability: float = 0.0,
    full_threshold: float = 0.5,
) -> ExperimentResult:
    """Sweep ECO churn rates, comparing incremental vs full re-runs.

    For every churn rate the *same* delta stream drives both paths:

    * **incremental** — one :meth:`IncrementalLegalizer.apply` per batch
      (dirty-set re-legalization, measured wall time);
    * **full** — the same deltas applied, then every movable cell reset
      and the full legalizer re-run (measured wall time).

    Rows report the summed per-batch wall times, the speedup, the mean
    dirty fraction, and the final AveDis of both paths.
    """
    from repro.kernels import available_backends

    if backend not in available_backends():  # pragma: no cover - numpy-less env
        backend = "python"

    rows = []
    for churn in churn_rates:
        base = iccad2017_design(name, scale=scale, seed=seed)
        spec = EcoSpec(
            churn=churn,
            batches=batches,
            seed=eco_seed,
            macro_move_probability=macro_move_probability,
        )
        stream = generate_eco_stream(base, spec)

        # Incremental path: persistent engine over the delta stream.
        inc_layout = base.copy()
        engine = IncrementalLegalizer(
            _make_legalizer(backend), full_threshold=full_threshold
        )
        engine.begin(inc_layout)
        inc_wall = 0.0
        inc_result = None
        for batch in stream:
            inc_result = engine.apply(batch)
            inc_wall += inc_result.stats.wall_seconds
        assert inc_result is not None
        dirty_mean = sum(s.dirty_fraction for s in engine.history) / len(engine.history)
        modes = {s.mode for s in engine.history}

        # Full path: reset + re-legalize everything after every batch.
        full_layout = base.copy()
        full_legalizer = _make_legalizer(backend)
        full_legalizer.legalize(full_layout)
        full_wall = 0.0
        full_result = None
        for batch in stream:
            apply_deltas(full_layout, batch)
            start = time.perf_counter()
            full_layout.reset_positions()
            full_result = full_legalizer.legalize(full_layout)
            full_wall += time.perf_counter() - start
        assert full_result is not None

        speedup = full_wall / inc_wall if inc_wall > 0 else float("inf")
        rows.append(
            [
                churn * 100.0,
                dirty_mean * 100.0,
                "+".join(sorted(modes)),
                inc_wall,
                full_wall,
                speedup,
                inc_result.average_displacement,
                full_result.average_displacement,
            ]
        )

    return ExperimentResult(
        title=(
            f"ECO churn sweep on {name} (scale {scale}, {batches} batches/rate, "
            f"backend {backend})"
        ),
        headers=[
            "churn_%",
            "dirty_%",
            "mode",
            "inc_wall_s",
            "full_wall_s",
            "speedup",
            "AveDis_inc",
            "AveDis_full",
        ],
        rows=rows,
        notes=[
            "both paths replay the identical seeded delta stream per churn rate",
            "incremental re-legalizes only the dirty set; full resets and "
            "re-legalizes every movable cell after each batch",
            "AveDis parity: incremental reuses clean placements, so quality "
            "tracks the full re-run closely at low churn",
        ],
    )
