"""Shared experiment plumbing.

:func:`run_design_suite` generates (scaled) ICCAD-2017-like designs and
runs every legalizer configuration an experiment may need, returning one
:class:`DesignBundle` per design.  Bundles are cached per
``(name, scale, seed)`` so that the Table 1 harness and the figure
harnesses executed in the same process do not repeat the (Python-slow)
legalization runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.analytical import AnalyticalGpuRuntimeModel, AnalyticalLegalizer, AnalyticalResult
from repro.baselines.cpu_gpu import CpuGpuBaseline, CpuGpuRunResult
from repro.baselines.multithread import MultiThreadedMglBaseline, MultiThreadedRunResult
from repro.benchgen.iccad2017 import BenchmarkInfo, benchmark_names, get_benchmark, iccad2017_design
from repro.core.flex_legalizer import FlexLegalizer, FlexRunResult
from repro.core.config import FlexConfig
from repro.geometry.layout import Layout
from repro.legality.checker import LegalityChecker
from repro.perf.report import format_table


#: Default subset of benchmarks used by the figure experiments (full
#: Table 1 uses all 16); chosen to span densities and height mixes.
DEFAULT_FIGURE_BENCHMARKS: Tuple[str, ...] = (
    "des_perf_1",
    "des_perf_b_md1",
    "edit_dist_a_md3",
    "fft_a_md2",
    "pci_b_a_md2",
    "pci_b_b_md3",
)

#: Default cell-count scale applied to the published benchmark sizes so
#: that the pure-Python harness finishes in minutes.
DEFAULT_SCALE = 0.004


@dataclass
class DesignBundle:
    """All per-design results an experiment may need."""

    info: BenchmarkInfo
    scale: float
    layout_input: Layout
    mgl: Optional[MultiThreadedRunResult] = None
    flex: Optional[FlexRunResult] = None
    cpu_gpu: Optional[CpuGpuRunResult] = None
    analytical: Optional[AnalyticalResult] = None
    analytical_runtime_seconds: float = 0.0
    legal: Dict[str, bool] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def num_cells(self) -> int:
        return len(self.layout_input.movable_cells())


@dataclass
class ExperimentResult:
    """Formatted output of one experiment."""

    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def format(self, float_format: str = "{:.3f}") -> str:
        text = [self.title, format_table(self.headers, self.rows, float_format=float_format)]
        for note in self.notes:
            text.append(f"note: {note}")
        return "\n".join(text)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


_BUNDLE_CACHE: Dict[Tuple[str, float, Optional[int], Tuple[str, ...]], DesignBundle] = {}


def clear_bundle_cache() -> None:
    """Drop all cached design runs (used by tests)."""
    _BUNDLE_CACHE.clear()


def run_design(
    name: str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    algorithms: Sequence[str] = ("mgl", "flex", "cpu_gpu", "analytical"),
    flex_config: Optional[FlexConfig] = None,
    check_legality: bool = True,
) -> DesignBundle:
    """Run the requested legalizers on one (scaled) benchmark.

    Results are cached per ``(name, scale, seed, algorithms)`` within the
    process; each legalizer receives its own copy of the generated input
    layout so quality numbers are independent.
    """
    key = (name, scale, seed, tuple(sorted(algorithms)))
    if key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key]
    info = get_benchmark(name)
    layout = iccad2017_design(name, scale=scale, seed=seed)
    bundle = DesignBundle(info=info, scale=scale, layout_input=layout)
    checker = LegalityChecker()

    if "mgl" in algorithms:
        mgl_layout = layout.copy()
        bundle.mgl = MultiThreadedMglBaseline().legalize(mgl_layout)
        if check_legality:
            bundle.legal["mgl"] = checker.check(mgl_layout).legal
    if "flex" in algorithms:
        flex_layout = layout.copy()
        bundle.flex = FlexLegalizer(flex_config).legalize(flex_layout)
        if check_legality:
            bundle.legal["flex"] = checker.check(flex_layout).legal
    if "cpu_gpu" in algorithms:
        gpu_layout = layout.copy()
        bundle.cpu_gpu = CpuGpuBaseline().legalize(gpu_layout)
        if check_legality:
            bundle.legal["cpu_gpu"] = checker.check(gpu_layout).legal
    if "analytical" in algorithms:
        ana_layout = layout.copy()
        bundle.analytical = AnalyticalLegalizer().legalize(ana_layout)
        bundle.analytical_runtime_seconds = AnalyticalGpuRuntimeModel().runtime_seconds(
            bundle.analytical.num_cells, bundle.analytical.iterations
        )
        if check_legality:
            bundle.legal["analytical"] = checker.check(ana_layout).legal

    _BUNDLE_CACHE[key] = bundle
    return bundle


def run_design_suite(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    algorithms: Sequence[str] = ("mgl", "flex", "cpu_gpu", "analytical"),
    flex_config: Optional[FlexConfig] = None,
) -> List[DesignBundle]:
    """Run the requested legalizers over a set of benchmarks."""
    selected = list(names) if names is not None else benchmark_names()
    return [
        run_design(
            name,
            scale=scale,
            seed=seed,
            algorithms=algorithms,
            flex_config=flex_config,
        )
        for name in selected
    ]
