"""Figure 9: SACS optimisation ladder vs. the tall-cell proportion.

Four cumulative SACS configurations are compared — plain SACS, SACS with
the dedicated architecture (SACS-Ar), plus the bandwidth optimisations
(SACS-ImpBW), plus parallel left/right moves (SACS-Paral) — and, per
benchmark, the proportion of cells taller than three rows.  The paper's
key observation is that the SACS-Ar → SACS-ImpBW gain correlates with
that proportion: benchmarks without tall cells gain nothing from the
bandwidth optimisation, while ``pci_b_a_md2`` (the tallest mix) gains the
most.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import paper_data
from repro.experiments.common import (
    DEFAULT_FIGURE_BENCHMARKS,
    DEFAULT_SCALE,
    ExperimentResult,
    run_design,
)
from repro.fpga.sacs_dataflow import SacsCycleModel


def _sacs_cycles(trace, model: SacsCycleModel) -> float:
    total = 0.0
    for ip in trace.iter_insertion_points():
        total += model.shift_cycles(ip)
    return total


def run_fig9_sacs(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate the Fig. 9 SACS optimisation series."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS)
    base_model, ar_model, bw_model, par_model = SacsCycleModel.figure9_series()
    rows = []
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("flex",))
        assert bundle.flex is not None
        trace = bundle.flex.trace
        layout = bundle.flex.legalization.layout
        base = _sacs_cycles(trace, base_model)
        ar = _sacs_cycles(trace, ar_model)
        bw = _sacs_cycles(trace, bw_model)
        par = _sacs_cycles(trace, par_model)
        rows.append(
            [
                name,
                layout.tall_cell_fraction(3),
                1.0,
                base / ar if ar else float("nan"),
                base / bw if bw else float("nan"),
                base / par if par else float("nan"),
                ar / bw if bw else float("nan"),
            ]
        )
    lo, hi = paper_data.FIG9_RANGES["total"]
    return ExperimentResult(
        title="Fig. 9: speedup of the SACS optimisation steps vs tall-cell proportion",
        headers=[
            "benchmark",
            "tall_cell_fraction",
            "SACS",
            "SACS-Ar",
            "SACS-ImpBW",
            "SACS-Paral",
            "ImpBW_gain",
        ],
        rows=rows,
        notes=[
            "columns SACS..SACS-Paral are cumulative speedups of the cell-shift stage "
            "normalised to plain SACS; ImpBW_gain isolates the bandwidth optimisation",
            f"paper: total SACS-Paral speedup in the {lo}-{hi}x range; the ImpBW gain "
            "grows with the proportion of cells taller than three rows",
        ],
    )
