"""Table 1: result comparison with state-of-the-art legalizers.

For every (scaled) ICCAD-2017 benchmark the harness reports, exactly like
the paper's Table 1:

* the measured average displacement (AveDis) of the TCAD'22 multi-threaded
  CPU baseline, the DATE'22 CPU-GPU baseline, the ISPD'25-style analytical
  legalizer and FLEX;
* their modeled runtimes;
* the speedups Acc(T), Acc(D) and Acc(I) of FLEX over the three baselines;

plus average and FLEX-normalised ratio rows, and (in the notes) the
published averages for comparison.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments import paper_data
from repro.experiments.common import DEFAULT_SCALE, DesignBundle, ExperimentResult, run_design_suite
from repro.perf.report import geometric_mean


HEADERS = [
    "benchmark",
    "cells",
    "den%",
    "mgl_avedis",
    "mgl_time_s",
    "date22_avedis",
    "date22_time_s",
    "ispd25_avedis",
    "ispd25_time_s",
    "flex_avedis",
    "flex_time_s",
    "Acc(T)",
    "Acc(D)",
    "Acc(I)",
]


def _bundle_row(bundle: DesignBundle) -> List[object]:
    assert bundle.mgl and bundle.flex and bundle.cpu_gpu and bundle.analytical
    flex_time = bundle.flex.modeled_runtime_seconds
    mgl_time = bundle.mgl.modeled_runtime_seconds
    gpu_time = bundle.cpu_gpu.modeled_runtime_seconds
    ana_time = bundle.analytical_runtime_seconds
    return [
        bundle.name,
        bundle.num_cells,
        round(bundle.info.density_percent, 1),
        bundle.mgl.average_displacement,
        mgl_time,
        bundle.cpu_gpu.average_displacement,
        gpu_time,
        bundle.analytical.average_displacement,
        ana_time,
        bundle.flex.average_displacement,
        flex_time,
        mgl_time / flex_time if flex_time > 0 else float("nan"),
        gpu_time / flex_time if flex_time > 0 else float("nan"),
        ana_time / flex_time if flex_time > 0 else float("nan"),
    ]


def run_table1(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Table 1 on the (scaled) synthetic suite."""
    bundles = run_design_suite(names, scale=scale, seed=seed)
    rows = [_bundle_row(b) for b in bundles]

    # Average row (arithmetic means, like the paper's Average row).
    def mean(col: int) -> float:
        values = [row[col] for row in rows if isinstance(row[col], (int, float))]
        return sum(values) / len(values) if values else float("nan")

    average = ["Average", int(mean(1)), round(mean(2), 1)] + [mean(i) for i in range(3, len(HEADERS))]
    rows.append(average)

    # Ratio row: quality and runtime normalised to FLEX.
    flex_avedis = average[HEADERS.index("flex_avedis")]
    flex_time = average[HEADERS.index("flex_time_s")]
    ratio = ["Ratio", "", ""]
    for header in HEADERS[3:]:
        idx = HEADERS.index(header)
        if header.endswith("avedis"):
            ratio.append(average[idx] / flex_avedis if flex_avedis else float("nan"))
        elif header.endswith("time_s"):
            ratio.append(average[idx] / flex_time if flex_time else float("nan"))
        else:
            ratio.append("")
    rows.append(ratio)

    notes = [
        f"cell counts scaled by {scale:g} relative to the published designs",
        "runtimes are modeled hardware times derived from measured work counters",
        (
            "paper averages: AveDis {t[tcad22_avedis]:.3f}/{t[date22_avedis]:.2f}/"
            "{t[ispd25_avedis]:.2f}/{t[flex_avedis]:.3f}, "
            "Acc(T)={t[acc_t]}x Acc(D)={t[acc_d]}x Acc(I)={t[acc_i]}x"
        ).format(t=paper_data.TABLE1_AVERAGE),
    ]
    acc_t = [row[HEADERS.index("Acc(T)")] for row in rows[:-2]]
    acc_d = [row[HEADERS.index("Acc(D)")] for row in rows[:-2]]
    acc_i = [row[HEADERS.index("Acc(I)")] for row in rows[:-2]]
    extras = {
        "bundles": bundles,
        "geomean_acc_t": geometric_mean([v for v in acc_t if isinstance(v, float)]),
        "geomean_acc_d": geometric_mean([v for v in acc_d if isinstance(v, float)]),
        "geomean_acc_i": geometric_mean([v for v in acc_i if isinstance(v, float)]),
    }
    return ExperimentResult(
        title="Table 1: comparison with state-of-the-art legalizers (scaled synthetic suite)",
        headers=HEADERS,
        rows=rows,
        notes=notes,
        extras=extras,
    )
