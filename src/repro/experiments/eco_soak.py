"""Long-stream ECO soak: quality and fragmentation drift over hundreds of batches.

The churn sweep (:mod:`repro.experiments.eco_churn`) measures the
incremental engine's *speed* on short streams; this harness measures
what short streams cannot show — **quality drift**.  Each incremental
pass is locally optimal, yet over hundreds of batches AveDis can ratchet
upward and the free space can fragment into unusable slivers (the
paper's "repeated local legalization degrades global quality" failure
mode).  The soak drives one :class:`~repro.incremental.engine
.IncrementalLegalizer` — typically with a displacement budget and/or a
scheduled repack — through a long seeded delta stream and records the
full quality/fragmentation trajectory, then holds the final layout
against the gold standard: a from-scratch full legalization of the very
same post-stream design.

The headline numbers (also written to ``BENCH_eco_soak.json`` by the
soak benchmark and gated in CI via ``benchmarks/check_regression.py
--eco-soak``):

* ``drift_vs_full`` — relative AveDis excess of the soaked layout over
  the from-scratch repack of the final design (the acceptance bar is
  5 % at ≤ 5 % churn);
* ``repacks`` — how many times the governor intervened;
* ``speedup_estimate`` — total incremental wall time vs ``batches``
  from-scratch runs (the naive production alternative), which must stay
  well above 1 even though the governor occasionally pays a full run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.benchgen.eco import EcoSpec, generate_eco_stream
from repro.benchgen.generator import DesignSpec, generate_design
from repro.experiments.common import ExperimentResult
from repro.geometry.layout import Layout
from repro.incremental.engine import IncrementalLegalizer
from repro.mgl.legalizer import fast_mgl_legalizer as _make_legalizer


def soak_layout(
    layout: Layout,
    *,
    batches: int = 200,
    churn: float = 0.02,
    backend: str = "numpy",
    eco_seed: int = 0,
    macro_move_probability: float = 0.0,
    full_threshold: float = 0.5,
    max_avedis_drift: Optional[float] = 0.05,
    repack_every: Optional[int] = None,
    max_fragmentation_drift: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one long-stream soak on ``layout`` and return the raw payload.

    The layout is legalized (if needed) and adopted by an
    :class:`IncrementalLegalizer` configured with the given budgets, the
    seeded delta stream is replayed batch by batch, and every batch's
    quality/fragmentation/repack counters are recorded.  Afterwards a
    *copy* of the final layout is reset and fully re-legalized from
    scratch — the quality gold standard the soaked layout is compared
    against.  ``layout`` is mutated in place (it ends in the soaked
    state).

    Returns a JSON-serialisable payload::

        {"design": ..., "knobs": {...}, "trajectory": [{...} per batch],
         "final": {"avedis_incremental": ..., "avedis_full": ...,
                   "drift_vs_full": ..., "repacks": ...,
                   "speedup_estimate": ..., ...}}
    """
    from repro.kernels import available_backends

    if backend not in available_backends():  # pragma: no cover - numpy-less env
        backend = "python"

    engine = IncrementalLegalizer(
        _make_legalizer(backend),
        full_threshold=full_threshold,
        max_avedis_drift=max_avedis_drift,
        repack_every=repack_every,
        max_fragmentation_drift=max_fragmentation_drift,
        track_fragmentation=True,
    )
    engine.begin(layout)
    base_avedis = engine._baseline_avedis

    spec = EcoSpec(
        churn=churn,
        batches=batches,
        seed=eco_seed,
        macro_move_probability=macro_move_probability,
    )
    stream = generate_eco_stream(layout, spec)

    trajectory: List[Dict[str, Any]] = []
    inc_wall = 0.0
    failed_batches = 0
    for i, batch in enumerate(stream):
        result = engine.apply(batch)
        inc_wall += result.stats.wall_seconds
        if not result.success:
            failed_batches += 1
        s = result.stats
        trajectory.append(
            {
                "batch": i,
                "mode": s.mode,
                "repack_reason": s.repack_reason,
                "dirty_fraction": s.dirty_fraction,
                "avedis": s.avedis,
                "avedis_drift": s.avedis_drift,
                "fragmentation": s.fragmentation,
                "repacks_total": s.repacks_total,
                "wall_seconds": s.wall_seconds,
            }
        )

    # Gold standard: from-scratch full legalization of the final design.
    reference = layout.copy()
    reference.reset_positions()
    full_start = time.perf_counter()
    full_result = _make_legalizer(backend).legalize(reference)
    full_wall = time.perf_counter() - full_start

    inc_avedis = engine.history[-1].avedis if engine.history else base_avedis
    full_avedis = full_result.average_displacement
    drift_vs_full = inc_avedis / full_avedis - 1.0 if full_avedis > 0 else 0.0
    modes = [s.mode for s in engine.history]
    return {
        "design": layout.name,
        "num_cells": len(layout.cells),
        "num_movable": len(layout.movable_cells()),
        "knobs": {
            "batches": batches,
            "churn": churn,
            "backend": backend,
            "eco_seed": eco_seed,
            "macro_move_probability": macro_move_probability,
            "full_threshold": full_threshold,
            "max_avedis_drift": max_avedis_drift,
            "repack_every": repack_every,
            "max_fragmentation_drift": max_fragmentation_drift,
        },
        "trajectory": trajectory,
        "final": {
            "avedis_incremental": inc_avedis,
            "avedis_full": full_avedis,
            "drift_vs_full": drift_vs_full,
            "fragmentation": engine.history[-1].fragmentation if engine.history else 0.0,
            "repacks": engine.repacks_total,
            "full_mode_batches": modes.count("full"),
            "incremental_batches": modes.count("incremental"),
            "failed_batches": failed_batches,
            "mean_dirty_fraction": (
                sum(s.dirty_fraction for s in engine.history) / len(engine.history)
                if engine.history
                else 0.0
            ),
            "inc_wall_seconds": inc_wall,
            "full_wall_seconds": full_wall,
            "speedup_estimate": (
                batches * full_wall / inc_wall if inc_wall > 0 else float("inf")
            ),
        },
    }


def soak_result_table(payload: Dict[str, Any], *, sample_every: int = 10) -> ExperimentResult:
    """Render a soak payload as an :class:`ExperimentResult` table.

    The table samples the trajectory every ``sample_every`` batches
    (always including the last batch and every repack), so a 500-batch
    soak still prints as a readable page; the full trajectory stays in
    ``result.extras["payload"]``.
    """
    rows: List[List[object]] = []
    trajectory = payload["trajectory"]
    for entry in trajectory:
        is_sample = entry["batch"] % max(1, sample_every) == 0
        is_last = entry["batch"] == len(trajectory) - 1
        if not (is_sample or is_last or entry["repack_reason"]):
            continue
        rows.append(
            [
                entry["batch"],
                entry["mode"] + (f":{entry['repack_reason']}" if entry["repack_reason"] else ""),
                entry["dirty_fraction"] * 100.0,
                entry["avedis"],
                entry["avedis_drift"] * 100.0,
                entry["fragmentation"],
                entry["repacks_total"],
            ]
        )
    final = payload["final"]
    knobs = payload["knobs"]
    result = ExperimentResult(
        title=(
            f"ECO long-stream soak on {payload['design']} "
            f"({payload['num_movable']} movable cells, {knobs['batches']} batches, "
            f"churn {knobs['churn'] * 100:.1f}%, backend {knobs['backend']})"
        ),
        headers=["batch", "mode", "dirty_%", "AveDis", "drift_%", "frag", "repacks"],
        rows=rows,
        notes=[
            f"final AveDis {final['avedis_incremental']:.4f} vs from-scratch "
            f"{final['avedis_full']:.4f} (drift {final['drift_vs_full'] * 100:+.2f}%)",
            f"{final['repacks']} repacks, {final['incremental_batches']} incremental "
            f"+ {final['full_mode_batches']} full batches, "
            f"mean dirty {final['mean_dirty_fraction'] * 100:.2f}%",
            f"incremental wall {final['inc_wall_seconds']:.3f}s vs "
            f"~{knobs['batches']}x{final['full_wall_seconds']:.3f}s full re-runs "
            f"(est. speedup {final['speedup_estimate']:.1f}x)",
        ],
        extras={"payload": payload},
    )
    return result


def run_eco_soak(
    name: str = "eco_soak",
    *,
    num_cells: int = 400,
    density: float = 0.6,
    seed: int = 1,
    batches: int = 200,
    churn: float = 0.02,
    backend: str = "numpy",
    eco_seed: int = 0,
    macro_move_probability: float = 0.0,
    full_threshold: float = 0.5,
    max_avedis_drift: Optional[float] = 0.05,
    repack_every: Optional[int] = None,
    max_fragmentation_drift: Optional[float] = None,
    sample_every: int = 10,
) -> ExperimentResult:
    """Generate a dense synthetic design and soak it (see :func:`soak_layout`)."""
    spec = DesignSpec(
        name=name,
        num_cells=num_cells,
        density=density,
        seed=seed,
        height_mix={1: 0.7, 2: 0.18, 3: 0.08, 4: 0.04},
    )
    layout = generate_design(spec)
    payload = soak_layout(
        layout,
        batches=batches,
        churn=churn,
        backend=backend,
        eco_seed=eco_seed,
        macro_move_probability=macro_move_probability,
        full_threshold=full_threshold,
        max_avedis_drift=max_avedis_drift,
        repack_every=repack_every,
        max_fragmentation_drift=max_fragmentation_drift,
    )
    return soak_result_table(payload, sample_every=sample_every)
