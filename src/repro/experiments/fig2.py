"""Figure 2: the motivation measurements.

Three separately runnable pieces:

* :func:`run_fig2_scaling` — Fig. 2(a): multi-threaded CPU legalization
  time at 1/2/4/8/10 threads (saturation around 1.8x);
* :func:`run_fig2_parallelism` — Fig. 2(b)(c): the region-level
  parallelism achievable by the CPU-GPU legalizer versus the GPU's CUDA
  core count, and the share of its runtime spent synchronising;
* :func:`run_fig2_shift_share` — Fig. 2(g): the share of FOP runtime
  spent in cell shifting (more than 60 % in the paper).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments import paper_data
from repro.experiments.common import (
    DEFAULT_FIGURE_BENCHMARKS,
    DEFAULT_SCALE,
    ExperimentResult,
    run_design,
)
from repro.perf.cost_model import CpuCostModel
from repro.perf.gpu_model import CpuGpuModel


def run_fig2_scaling(
    name: str = "edit_dist_a_md3",
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 10),
) -> ExperimentResult:
    """Fig. 2(a): multi-threaded CPU legalization time vs thread count."""
    bundle = run_design(name, scale=scale, seed=seed, algorithms=("mgl",))
    assert bundle.mgl is not None
    curve = bundle.mgl.scaling_curve
    base = curve.get(1)
    rows = []
    for threads in thread_counts:
        time_s = curve.get(threads)
        if time_s is None:
            time_s = bundle.mgl.single_thread_seconds / paper_data.FIG2A_THREAD_SPEEDUP.get(threads, 1.8)
        rows.append(
            [
                threads,
                time_s,
                base / time_s if time_s else float("nan"),
                paper_data.FIG2A_THREAD_SPEEDUP.get(threads, float("nan")),
            ]
        )
    return ExperimentResult(
        title=f"Fig. 2(a): multi-threaded CPU legalization time on {name}",
        headers=["threads", "time_s", "speedup", "paper speedup"],
        rows=rows,
        notes=["the 2-thread run reduces runtime by only ~20 %; saturation at 8 threads"],
        extras={"curve": curve},
    )


def run_fig2_parallelism(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Fig. 2(b)(c): CPU-GPU legalizer parallelism and synchronisation share."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS[:4])
    rows = []
    model = CpuGpuModel()
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("cpu_gpu",))
        assert bundle.cpu_gpu is not None
        breakdown = bundle.cpu_gpu.breakdown
        parallelism = bundle.cpu_gpu.achievable_parallelism
        total = breakdown.total
        rows.append(
            [
                name,
                model.params.cuda_cores,
                parallelism,
                parallelism / model.params.cuda_cores,
                breakdown.gpu_sync / total if total else float("nan"),
                breakdown.cpu_tough / total if total else float("nan"),
            ]
        )
    return ExperimentResult(
        title="Fig. 2(b)(c): CPU-GPU legalizer — achievable parallelism and overheads",
        headers=[
            "benchmark",
            "cuda_cores",
            "parallel_regions",
            "utilised_fraction",
            "sync_share",
            "tough_cpu_share",
        ],
        rows=rows,
        notes=[
            "the achievable region-level parallelism stays far below the CUDA core "
            "count, so a larger GPU cannot help (paper Fig. 2(c))",
        ],
    )


def run_fig2_shift_share(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Fig. 2(g): share of FOP runtime spent in cell shifting."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS[:4])
    cost = CpuCostModel()
    rows = []
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("mgl",))
        assert bundle.mgl is not None
        trace = bundle.mgl.legalization.trace
        stages = cost.fop_stage_seconds(trace)
        total = sum(stages.values())
        share = stages["cell_shift"] / total if total else 0.0
        rows.append([name, share, trace.cell_shift_fraction(), paper_data.FIG2G_CELL_SHIFT_SHARE])
    return ExperimentResult(
        title="Fig. 2(g): cell shifting share of FOP runtime",
        headers=["benchmark", "cpu_time_share", "work_share", "paper (>)"],
        rows=rows,
        notes=["cell shifting dominates FOP, motivating SACS (paper: more than 60 %)"],
    )
