"""Figure 6(g): cost of SACS pre-sorting relative to the rest of FOP.

SACS sorts each localRegion's cells by x before shifting; the paper
reports this pre-sorting at roughly 10 % of FOP runtime, an acceptable
overhead for turning the unpredictable multi-pass loop into a single
pass.  The harness reports, per benchmark, the share of FPGA FOP cycles
spent in (a) the Ahead pre-sorter alone and (b) all sorting (pre-sorter
plus the in-PE breakpoint sorter), next to the paper's 10 % reference.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import paper_data
from repro.experiments.common import (
    DEFAULT_FIGURE_BENCHMARKS,
    DEFAULT_SCALE,
    ExperimentResult,
    run_design,
)


def run_fig6_sorting_share(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Share of FOP cycles spent sorting under the FLEX configuration."""
    selected = list(names) if names is not None else list(DEFAULT_FIGURE_BENCHMARKS[:4])
    rows = []
    for name in selected:
        bundle = run_design(name, scale=scale, seed=seed, algorithms=("flex",))
        assert bundle.flex is not None
        fpga = bundle.flex.fpga
        total = sum(fpga.stage_cycles.values())
        presort = fpga.stage_cycles.get("presort", 0.0)
        sort_bp = fpga.stage_cycles.get("sort_bp", 0.0)
        rows.append(
            [
                name,
                presort / total if total else 0.0,
                (presort + sort_bp) / total if total else 0.0,
                paper_data.FIG6G_SORT_SHARE,
            ]
        )
    return ExperimentResult(
        title="Fig. 6(g): sorting share of FOP work in SACS",
        headers=["benchmark", "presort_share", "all_sorting_share", "paper (~)"],
        rows=rows,
        notes=[
            "the Ahead pre-sorter runs once per localRegion and is amortised over "
            "its insertion points; including the streaming breakpoint sorter gives "
            "the total sorting share",
        ],
    )
