"""Published reference numbers from the paper, used for paper-vs-measured
comparisons in the experiment output and in EXPERIMENTS.md.

All values are transcribed from the ICPP'25 paper:

* :data:`TABLE1` — per-benchmark AveDis / runtime of TCAD'22-MGL (8-thread
  CPU), DATE'22 (CPU-GPU), ISPD'25 (analytical GPU) and FLEX, plus the
  speedup columns Acc(T) / Acc(D) / Acc(I);
* :data:`TABLE2` — FPGA resource consumption for 1 and 2 FOP PEs;
* :data:`FIG2A_THREAD_SPEEDUP` — the multi-threaded CPU scaling;
* :data:`FIG8_RANGES` / :data:`FIG9_RANGES` / :data:`FIG10_AVERAGE` — the
  speedup ranges of the breakdown analyses.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class Table1Row(NamedTuple):
    """One row of paper Table 1."""

    cells: int
    density: float
    tcad22_avedis: float
    tcad22_time: float
    date22_avedis: float
    date22_time: float
    ispd25_avedis: float
    ispd25_time: float
    flex_avedis: float
    flex_time: float
    acc_t: float
    acc_d: float
    acc_i: float


#: Paper Table 1 (IC/CAD 2017 contest benchmarks).
TABLE1: Dict[str, Table1Row] = {
    "des_perf_1": Table1Row(112644, 90.6, 0.967, 4.74, 1.05, 3.47, 0.66, 7.51, 0.665, 1.322, 3.6, 2.6, 5.7),
    "des_perf_a_md1": Table1Row(108288, 55.1, 0.919, 1.81, 0.92, 2.00, 1.20, 8.38, 0.904, 0.727, 2.5, 2.8, 11.5),
    "des_perf_a_md2": Table1Row(108288, 55.9, 1.148, 1.67, 1.32, 2.00, 1.12, 16.64, 1.144, 0.663, 2.5, 3.0, 25.1),
    "des_perf_b_md1": Table1Row(112644, 55.0, 0.675, 1.28, 0.70, 6.85, 0.65, 20.34, 0.635, 0.375, 3.4, 18.3, 54.2),
    "des_perf_b_md2": Table1Row(112644, 64.7, 0.618, 1.31, 0.72, 1.75, 0.70, 1.11, 0.653, 0.501, 2.6, 3.5, 2.2),
    "edit_dist_1_md1": Table1Row(130661, 67.4, 0.664, 0.98, 0.67, 1.67, 0.63, 2.68, 0.646, 0.347, 2.8, 4.8, 7.7),
    "edit_dist_a_md2": Table1Row(127413, 59.4, 0.614, 1.30, 0.73, 1.80, 0.67, 2.22, 0.650, 0.547, 2.4, 3.3, 4.1),
    "edit_dist_a_md3": Table1Row(127413, 57.2, 0.783, 1.78, 0.91, 3.92, 0.79, 19.21, 0.771, 0.897, 2.0, 4.4, 21.4),
    "fft_2_md2": Table1Row(32281, 82.7, 0.721, 0.29, 0.68, 0.45, 0.68, 1.74, 0.694, 0.112, 2.6, 4.0, 15.5),
    "fft_a_md2": Table1Row(30625, 32.3, 0.563, 0.22, 0.65, 0.32, 0.75, 0.51, 0.604, 0.041, 5.4, 7.8, 12.4),
    "fft_a_md3": Table1Row(30625, 31.2, 0.531, 0.15, 0.56, 0.34, 0.59, 0.39, 0.567, 0.036, 4.2, 9.4, 10.8),
    "pci_b_a_md1": Table1Row(29517, 49.5, 0.652, 0.33, 0.63, 0.58, 0.92, 0.70, 0.699, 0.106, 3.1, 5.5, 6.6),
    "pci_b_a_md2": Table1Row(29517, 57.7, 0.839, 0.47, 0.91, 0.62, 0.85, 2.12, 0.838, 0.130, 3.6, 4.8, 16.3),
    "pci_b_b_md1": Table1Row(28914, 26.6, 0.781, 0.31, 0.48, 0.62, 1.14, 0.88, 0.821, 0.085, 3.6, 7.3, 10.4),
    "pci_b_b_md2": Table1Row(28914, 18.3, 0.704, 0.32, 0.63, 0.45, 1.01, 1.69, 0.746, 0.072, 4.4, 6.3, 23.5),
    "pci_b_b_md3": Table1Row(28914, 22.2, 0.925, 0.34, 0.87, 0.45, 1.09, 1.92, 0.945, 0.082, 4.1, 5.5, 23.4),
}

#: Paper Table 1 "Average" row.
TABLE1_AVERAGE = {
    "tcad22_avedis": 0.757,
    "tcad22_time": 1.08,
    "date22_avedis": 0.78,
    "date22_time": 1.71,
    "ispd25_avedis": 0.84,
    "ispd25_time": 5.50,
    "flex_avedis": 0.749,
    "flex_time": 0.378,
    "acc_t": 2.9,
    "acc_d": 4.5,
    "acc_i": 14.7,
}

#: Paper Table 1 "Ratio" row (quality/time normalised to FLEX).
TABLE1_RATIO = {
    "tcad22_avedis": 1.01,
    "tcad22_time": 2.86,
    "date22_avedis": 1.04,
    "date22_time": 4.52,
    "ispd25_avedis": 1.12,
    "ispd25_time": 14.67,
    "flex_avedis": 1.00,
    "flex_time": 1.00,
}

#: Paper Table 2: FPGA resource consumption on the Alveo U50.
TABLE2 = {
    "No parallelism of FOP PE": {"luts": 59837, "ffs": 67326, "brams": 391, "dsps": 8},
    "2 parallelism of FOP PE": {"luts": 86632, "ffs": 91603, "brams": 738, "dsps": 12},
    "Available": {"luts": 871680, "ffs": 1743360, "brams": 1344, "dsps": 5952},
}

#: Fig. 2(a): speedup of the multi-threaded CPU legalizer over one thread.
FIG2A_THREAD_SPEEDUP = {1: 1.0, 2: 1.25, 4: 1.55, 8: 1.8, 10: 1.82}

#: Fig. 2(c): CUDA cores of the GTX 1660 Ti vs. the achievable parallelism
#: of the legalization algorithm on the two superblue benchmarks.
FIG2C_PARALLELISM = {"cuda_cores": 1536, "superblue11_a": 0.40, "superblue19": 0.31}

#: Fig. 2(g): share of FOP runtime spent in cell shifting.
FIG2G_CELL_SHIFT_SHARE = 0.60  # "more than 60 %"

#: Fig. 6(g): share of FOP runtime spent pre-sorting in SACS.
FIG6G_SORT_SHARE = 0.10

#: Fig. 8: speedup ranges of the optimisation ladder (relative to the
#: previous configuration).
FIG8_RANGES = {
    "sacs": (2.0, 3.0),
    "multi-granularity": (1.0, 2.0),
    "2-parallel-fop-pe": (1.6, 1.9),
}

#: Fig. 9: total speedup range of the fully-optimised SACS over plain SACS.
FIG9_RANGES = {"total": (1.5, 3.5)}

#: Fig. 10: average speedup of keeping insert & update on the CPU.
FIG10_AVERAGE = 1.2

#: Headline claims (abstract / conclusion).
HEADLINE = {
    "max_speedup_vs_cpu_gpu": 18.3,
    "max_speedup_vs_multithread_cpu": 5.4,
    "quality_improvement_vs_cpu_gpu": 0.04,
    "quality_improvement_vs_multithread_cpu": 0.01,
}
