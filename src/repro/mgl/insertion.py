"""Insertion-interval / insertion-point enumeration (paper Sec. 2.2.2).

An *insertion interval* is a gap between two adjacent cells in a
localSegment; an *insertion point* combines one interval per row spanned
by the target cell.  For a target of height ``h`` anchored at bottom row
``r`` the combination is fully described by, for each spanned row, the
index at which the target is inserted into that row's x-sorted subcell
list (its "split index"): cells before the split are pushed left, cells
at or after the split are pushed right.

Enumerating every combination of per-row intervals independently would be
exponential in the cell height; instead we sweep the cells of the spanned
rows in order of their x-centres.  Each swept cell advances the split
index of exactly one row, so the sweep visits every *distinct* combination
that can be optimal — at most ``(number of subcells in the spanned rows)
+ 1`` insertion points per candidate bottom row, which matches the
"hundreds of insertion points per localRegion" workload the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.cell import Cell
from repro.geometry.region import LocalRegion
from repro.geometry.row import pg_compatible


@dataclass(frozen=True)
class InsertionPoint:
    """One candidate insertion point for a target cell.

    Attributes
    ----------
    bottom_row:
        Bottom row index the target would be anchored on.
    rows:
        The rows spanned by the target (``bottom_row .. bottom_row+h-1``).
    split:
        For each spanned row, the index into the region's x-sorted subcell
        list at which the target is inserted: subcells with list position
        ``< split[row]`` are on the target's left, the rest on its right.
    """

    bottom_row: int
    rows: Tuple[int, ...]
    split: Tuple[Tuple[int, int], ...]

    def split_map(self) -> Dict[int, int]:
        """The per-row split indexes as a dictionary."""
        return dict(self.split)

    def left_cell_indices(self, region: LocalRegion) -> List[int]:
        """Local indices of the cells on the target's left, deduplicated."""
        seen: List[int] = []
        split = self.split_map()
        for row in self.rows:
            for idx in region.cell_indices_in_row(row)[: split[row]]:
                if idx not in seen:
                    seen.append(idx)
        return seen

    def right_cell_indices(self, region: LocalRegion) -> List[int]:
        """Local indices of the cells on the target's right, deduplicated."""
        seen: List[int] = []
        split = self.split_map()
        for row in self.rows:
            for idx in region.cell_indices_in_row(row)[split[row] :]:
                if idx not in seen:
                    seen.append(idx)
        return seen


def candidate_bottom_rows(region: LocalRegion, target: Cell) -> List[int]:
    """Bottom rows on which the target can legally be anchored in the region.

    A row qualifies when the target fits vertically inside the window, the
    P/G alignment constraint holds, every spanned row has a localSegment
    and each of those segments is at least as wide as the target.
    """
    rows: List[int] = []
    window = region.window
    for bottom in range(window.row_lo, window.row_hi - target.height + 1):
        if not pg_compatible(target.height, bottom):
            continue
        spanned = range(bottom, bottom + target.height)
        ok = True
        for row in spanned:
            seg = region.segments.get(row)
            if seg is None or seg.length < target.width:
                ok = False
                break
        if ok:
            rows.append(bottom)
    return rows


def _row_prefix_widths(region: LocalRegion, row: int) -> List[float]:
    """Prefix sums of subcell widths in a row (index i = width of first i cells)."""
    widths = [region.local_cells[idx].width for idx in region.cell_indices_in_row(row)]
    prefix = [0.0]
    for w in widths:
        prefix.append(prefix[-1] + w)
    return prefix


def _combination_feasible(
    region: LocalRegion,
    target: Cell,
    rows: Sequence[int],
    split: Dict[int, int],
    prefix_widths: Dict[int, List[float]],
) -> bool:
    """Cheap per-row capacity check for one split combination.

    The exact cross-row feasibility interval is computed later by cell
    shifting; this filter only rejects combinations where a single row
    cannot possibly host its left cells, the target and its right cells
    even when fully packed.
    """
    for row in rows:
        seg = region.segments[row]
        prefix = prefix_widths[row]
        total = prefix[-1]
        left = prefix[split[row]]
        right = total - left
        if left + target.width + right > seg.length + 1e-9:
            return False
    return True


def enumerate_insertion_points(
    region: LocalRegion,
    target: Cell,
    bottom_row: int,
    *,
    max_points: Optional[int] = None,
) -> List[InsertionPoint]:
    """Enumerate the distinct insertion points for one candidate bottom row.

    Points are produced in left-to-right sweep order.  ``max_points``
    optionally truncates the enumeration (used by the approximate GPU
    baseline model); the reference legalizers always evaluate all points.
    """
    rows = tuple(range(bottom_row, bottom_row + target.height))
    for row in rows:
        if row not in region.segments:
            return []
    prefix_widths = {row: _row_prefix_widths(region, row) for row in rows}

    # Sweep events: one event per distinct localCell overlapping the
    # spanned rows.  Passing a cell's x-centre moves it from the target's
    # right side to its left side in *every* spanned row it covers, so a
    # multi-row cell is always consistently on one side.
    rows_set = set(rows)
    per_cell_rows: Dict[int, List[int]] = {}
    for row in rows:
        for idx in region.cell_indices_in_row(row):
            per_cell_rows.setdefault(idx, []).append(row)
    events: List[Tuple[float, int, List[int]]] = []
    for idx, covered in per_cell_rows.items():
        cell = region.local_cells[idx]
        events.append((cell.x + cell.width / 2.0, idx, covered))
    events.sort(key=lambda e: (e[0], e[1]))

    split = {row: 0 for row in rows}
    points: List[InsertionPoint] = []

    def emit() -> None:
        if _combination_feasible(region, target, rows, split, prefix_widths):
            points.append(
                InsertionPoint(
                    bottom_row=bottom_row,
                    rows=rows,
                    split=tuple(sorted(split.items())),
                )
            )

    emit()
    for _, _, covered in events:
        if max_points is not None and len(points) >= max_points:
            break
        for row in covered:
            if row in rows_set:
                split[row] += 1
        emit()
    if max_points is not None:
        return points[:max_points]
    return points


def enumerate_all_insertion_points(
    region: LocalRegion, target: Cell, *, max_points_per_row: Optional[int] = None
) -> Iterator[InsertionPoint]:
    """Enumerate insertion points over all candidate bottom rows (loop1 x loop2)."""
    for bottom in candidate_bottom_rows(region, target):
        yield from enumerate_insertion_points(
            region, target, bottom, max_points=max_points_per_row
        )
