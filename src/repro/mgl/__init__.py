"""The Multi-row Global Legalization (MGL) algorithm substrate.

This package implements the legalization flow of paper Fig. 3(e):

a. **input & pre-move** (:mod:`repro.mgl.premove`) — snap every cell to
   the nearest designated row, tolerating overlaps;
b. **process ordering** — the baseline size-descending order lives in
   :class:`~repro.mgl.legalizer.MGLLegalizer`; FLEX's sliding-window
   ordering lives in :mod:`repro.core.ordering`;
c. **define localRegion** (:mod:`repro.mgl.local_region`) — extract
   localSegments, localCells and the region density inside the target's
   window;
d. **FOP** (:mod:`repro.mgl.fop`) — enumerate insertion points
   (:mod:`repro.mgl.insertion`), run cell shifting
   (:mod:`repro.mgl.shifting`) and the displacement-curve pipeline
   (:mod:`repro.mgl.curves`) to find the optimal position;
e. **insert & update** (:mod:`repro.mgl.update`) — commit the winning
   position and the induced shifts back into the layout.

:class:`~repro.mgl.legalizer.MGLLegalizer` ties the steps together and is
the faithful reimplementation of the multi-threaded CPU baseline
(TCAD'22) that FLEX builds on.
"""

from repro.mgl.curves import (
    BreakpointPiece,
    CurveEvaluation,
    evaluate_piecewise,
    minimize_curves,
    minimize_curves_fwd_bwd,
)
from repro.mgl.insertion import InsertionPoint, enumerate_insertion_points
from repro.mgl.shifting import ShiftOutcome, shift_cells_original
from repro.mgl.local_region import RegionBuilder, build_local_region, initial_window
from repro.mgl.window_planner import plan_initial_window, window_is_promising
from repro.mgl.premove import premove
from repro.mgl.fop import FOPConfig, FOPResult, find_optimal_position
from repro.mgl.update import commit_placement
from repro.mgl.legalizer import LegalizationResult, MGLLegalizer, fast_mgl_legalizer

__all__ = [
    "BreakpointPiece",
    "CurveEvaluation",
    "evaluate_piecewise",
    "minimize_curves",
    "minimize_curves_fwd_bwd",
    "InsertionPoint",
    "enumerate_insertion_points",
    "ShiftOutcome",
    "shift_cells_original",
    "RegionBuilder",
    "build_local_region",
    "initial_window",
    "plan_initial_window",
    "window_is_promising",
    "premove",
    "FOPConfig",
    "FOPResult",
    "find_optimal_position",
    "commit_placement",
    "MGLLegalizer",
    "fast_mgl_legalizer",
    "LegalizationResult",
]
