"""Step (a) of the MGL flow: input & pre-move.

Every movable cell is temporarily positioned on the nearest designated
row that satisfies the P/G alignment constraint, and its x coordinate is
snapped to the site grid, tolerating the overlaps this creates.  The step
is inherently serial and cheap, which is why FLEX keeps it on the CPU
(paper Sec. 3.1.1).
"""

from __future__ import annotations


from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.geometry.row import nearest_legal_row


def premove_cell(layout: Layout, cell: Cell) -> None:
    """Snap one cell to the nearest legal row / site, keeping it on-chip."""
    row = nearest_legal_row(cell.gp_y, cell.height, layout.num_rows)
    x = round(cell.gp_x)
    x = min(max(0.0, x), layout.width - cell.width)
    cell.x = float(x)
    cell.y = float(row)


def premove(layout: Layout) -> int:
    """Pre-move every movable, not-yet-legalized cell.

    Returns the number of cells processed (the work measure of step (a)).
    Fixed cells and already-legalized cells are left untouched.
    """
    count = 0
    for cell in layout.cells:
        if cell.fixed or cell.legalized:
            continue
        premove_cell(layout, cell)
        count += 1
    return count
