"""Displacement-curve math: breakpoints, merging, slope sums and minimization.

A localCell's displacement as a function of the target position ``x_t``
is a piecewise-linear curve (paper Fig. 3(c)).  Every curve is decomposed
into *elementary breakpoint pieces*: a piece ``(x0, ls, rs)`` is zero at
``x0``, has slope ``ls`` for ``x_t < x0`` and slope ``rs`` for
``x_t > x0``.  The sum of all cells' curves (Fig. 3(d)) is then evaluated
by the five-stage pipeline of the paper:

``sort bp`` → ``merge bp`` → ``sum slopesR`` → ``sum slopesL`` →
``calculate value``

Two functionally identical implementations are provided:

* :func:`minimize_curves` — the original sequential organisation, where
  every stage finishes before the next starts (the "Normal Pipeline" of
  Fig. 5);
* :func:`minimize_curves_fwd_bwd` — the reorganised
  ``fwdtraverse`` / ``bwdtraverse`` form used by FLEX's multi-granularity
  pipeline, where merging is duplicated into forward and backward halves
  and ``calculate v`` is split into ``vR``, ``vL`` and ``v``.

Both return the same optimum; equivalence is enforced by property-based
tests.  The functions are pure and operate on small Python lists — the
number of breakpoints per insertion point is typically a few dozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


_EPS = 1e-9


@dataclass(frozen=True)
class BreakpointPiece:
    """An elementary hinge piece of a piecewise-linear curve.

    The piece evaluates to ``ls * (x - x0)`` for ``x < x0`` and
    ``rs * (x - x0)`` for ``x >= x0`` (both expressions are 0 at ``x0``).
    A V-shaped absolute-value curve ``|x - a|`` is the single piece
    ``(a, -1, +1)``; hinges such as ``max(0, b - x)`` are ``(b, -1, 0)``.
    """

    x: float
    left_slope: float
    right_slope: float

    def value(self, query: float) -> float:
        """Evaluate the piece at ``query``."""
        if query < self.x:
            return self.left_slope * (query - self.x)
        return self.right_slope * (query - self.x)


@dataclass(frozen=True)
class CurveEvaluation:
    """Result of minimizing a sum of displacement curves over an interval."""

    best_x: float
    best_value: float
    n_breakpoints: int
    n_merged: int

    def shifted(self, delta: float) -> "CurveEvaluation":
        """Return a copy with ``delta`` added to the best value."""
        return CurveEvaluation(self.best_x, self.best_value + delta, self.n_breakpoints, self.n_merged)


# ----------------------------------------------------------------------
# Direct evaluation (reference implementation used by tests and snapping)
# ----------------------------------------------------------------------
def evaluate_piecewise(pieces: Sequence[BreakpointPiece], constant: float, x: float) -> float:
    """Evaluate ``constant + sum of pieces`` at ``x`` directly (O(n))."""
    # This IS the documented left-to-right float64 reference fold that
    # the fused evaluators must match bit-for-bit.
    return constant + sum(p.value(x) for p in pieces)  # repro: allow[flt-sum]


# ----------------------------------------------------------------------
# Stage implementations (the original five operations)
# ----------------------------------------------------------------------
def sort_breakpoints(pieces: Iterable[BreakpointPiece]) -> List[BreakpointPiece]:
    """``sort bp``: gather all breakpoints and sort them by x-coordinate."""
    return sorted(pieces, key=lambda p: p.x)


def merge_breakpoints(sorted_pieces: Sequence[BreakpointPiece]) -> List[BreakpointPiece]:
    """``merge bp``: merge breakpoints with identical x by accumulating slopes."""
    merged: List[BreakpointPiece] = []
    for piece in sorted_pieces:
        if merged and abs(piece.x - merged[-1].x) <= _EPS:
            last = merged[-1]
            merged[-1] = BreakpointPiece(
                last.x, last.left_slope + piece.left_slope, last.right_slope + piece.right_slope
            )
        else:
            merged.append(piece)
    return merged


def sum_slopes_right(merged: Sequence[BreakpointPiece]) -> List[float]:
    """``sum slopesR``: forward prefix sums of the merged right slopes.

    ``slopesR[i]`` is the cumulative right slope of all merged breakpoints
    with index ``<= i``; it equals the contribution of those pieces to the
    curve slope anywhere to the right of breakpoint ``i``.
    """
    out: List[float] = []
    acc = 0.0
    for piece in merged:
        acc += piece.right_slope
        out.append(acc)
    return out


def sum_slopes_left(merged: Sequence[BreakpointPiece]) -> List[float]:
    """``sum slopesL``: backward suffix sums of the merged left slopes.

    ``slopesL[j]`` is the cumulative left slope of all merged breakpoints
    with index ``>= j``; it equals the contribution of those pieces to the
    curve slope anywhere to the left of breakpoint ``j``.
    """
    out = [0.0] * len(merged)
    acc = 0.0
    for j in range(len(merged) - 1, -1, -1):
        acc += merged[j].left_slope
        out[j] = acc
    return out


def _breakpoint_values(
    merged: Sequence[BreakpointPiece], slopes_r: Sequence[float], slopes_l: Sequence[float]
) -> List[float]:
    """Curve value (without the external constant) at every merged breakpoint.

    The value at the leftmost breakpoint is computed directly from the
    suffix information; subsequent values follow from the segment slopes
    ``slopesR[i] + slopesL[i+1]`` (``calculate value`` of the paper).
    """
    n = len(merged)
    if n == 0:
        return []
    # Value at breakpoint 0: only pieces to its right contribute, through
    # their left slopes.
    v0 = 0.0
    for j in range(1, n):
        v0 += merged[j].left_slope * (merged[0].x - merged[j].x)
    values = [v0]
    for i in range(n - 1):
        slope = slopes_r[i] + slopes_l[i + 1]
        values.append(values[-1] + slope * (merged[i + 1].x - merged[i].x))
    return values


def _value_at(
    query: float,
    merged: Sequence[BreakpointPiece],
    slopes_r: Sequence[float],
    slopes_l: Sequence[float],
    values: Sequence[float],
) -> float:
    """Interpolate the summed curve at an arbitrary query point."""
    n = len(merged)
    if n == 0:
        return 0.0
    if query <= merged[0].x:
        return values[0] + slopes_l[0] * (query - merged[0].x)
    if query >= merged[-1].x:
        return values[-1] + slopes_r[-1] * (query - merged[-1].x)
    # Find the segment containing the query (linear scan; n is small).
    for i in range(n - 1):
        if merged[i].x <= query <= merged[i + 1].x:
            slope = slopes_r[i] + slopes_l[i + 1]
            return values[i] + slope * (query - merged[i].x)
    return values[-1]  # pragma: no cover - unreachable


def _pick_best(
    candidates: Sequence[Tuple[float, float]], preferred_x: Optional[float]
) -> Tuple[float, float]:
    """Select the candidate with the lowest value, breaking ties toward
    the preferred x-coordinate (the target's global-placement x)."""
    best_x, best_v = candidates[0]
    for x, v in candidates[1:]:
        if v < best_v - _EPS:
            best_x, best_v = x, v
        elif abs(v - best_v) <= _EPS and preferred_x is not None:
            if abs(x - preferred_x) < abs(best_x - preferred_x):
                best_x, best_v = x, v
    return best_x, best_v


# ----------------------------------------------------------------------
# Original pipeline
# ----------------------------------------------------------------------
def minimize_curves(
    pieces: Sequence[BreakpointPiece],
    constant: float,
    lo: float,
    hi: float,
    *,
    preferred_x: Optional[float] = None,
) -> CurveEvaluation:
    """Minimize ``constant + sum of pieces`` over ``[lo, hi]``.

    This is the original five-stage organisation: each stage consumes the
    complete output of its predecessor.  Raises ``ValueError`` when the
    interval is empty.
    """
    if hi < lo - _EPS:
        raise ValueError(f"empty evaluation interval [{lo}, {hi}]")
    hi = max(hi, lo)
    sorted_pieces = sort_breakpoints(pieces)
    merged = merge_breakpoints(sorted_pieces)
    slopes_r = sum_slopes_right(merged)
    slopes_l = sum_slopes_left(merged)
    values = _breakpoint_values(merged, slopes_r, slopes_l)

    candidates: List[Tuple[float, float]] = []
    for piece, value in zip(merged, values):
        if lo - _EPS <= piece.x <= hi + _EPS:
            candidates.append((min(max(piece.x, lo), hi), value))
    for bound in (lo, hi):
        candidates.append((bound, _value_at(bound, merged, slopes_r, slopes_l, values)))
    if preferred_x is not None and lo <= preferred_x <= hi:
        candidates.append(
            (preferred_x, _value_at(preferred_x, merged, slopes_r, slopes_l, values))
        )
    best_x, best_v = _pick_best(candidates, preferred_x)
    return CurveEvaluation(
        best_x=best_x,
        best_value=best_v + constant,
        n_breakpoints=len(sorted_pieces),
        n_merged=len(merged),
    )


# ----------------------------------------------------------------------
# Reorganised pipeline (fwdtraverse / bwdtraverse of Fig. 5)
# ----------------------------------------------------------------------
def minimize_curves_fwd_bwd(
    pieces: Sequence[BreakpointPiece],
    constant: float,
    lo: float,
    hi: float,
    *,
    preferred_x: Optional[float] = None,
) -> CurveEvaluation:
    """Minimize the summed curve using the reorganised FLEX dataflow.

    ``fwdtraverse`` performs forward-merge, the slopesR prefix sums and
    the forward part of the value computation in a single forward sweep
    over the sorted breakpoints; ``bwdtraverse`` performs backward-merge,
    the slopesL suffix sums and the final value computation in a single
    backward sweep.  The result is identical to :func:`minimize_curves`;
    only the operation structure differs (which is what enables the
    multi-granularity pipeline on the FPGA).
    """
    if hi < lo - _EPS:
        raise ValueError(f"empty evaluation interval [{lo}, {hi}]")
    hi = max(hi, lo)
    sorted_pieces = sort_breakpoints(pieces)

    # --- fwdtraverse: fwdmerge + sum slopesR + calculate vR (streaming) ---
    merged_x: List[float] = []
    merged_ls: List[float] = []
    merged_rs: List[float] = []
    slopes_r: List[float] = []
    acc_r = 0.0
    for piece in sorted_pieces:
        if merged_x and abs(piece.x - merged_x[-1]) <= _EPS:
            merged_ls[-1] += piece.left_slope
            merged_rs[-1] += piece.right_slope
            acc_r += piece.right_slope
            slopes_r[-1] = acc_r
        else:
            merged_x.append(piece.x)
            merged_ls.append(piece.left_slope)
            merged_rs.append(piece.right_slope)
            acc_r += piece.right_slope
            slopes_r.append(acc_r)
    n = len(merged_x)
    # vR[i] = sum over pieces j <= i of rs_j * (x_i - x_j), accumulated forward.
    v_r: List[float] = []
    acc_weighted = 0.0  # sum rs_j * x_j for j <= i
    for i in range(n):
        acc_weighted += merged_rs[i] * merged_x[i]
        v_r.append(slopes_r[i] * merged_x[i] - acc_weighted)

    # --- bwdtraverse: bwdmerge + sum slopesL + calculate vL and v ---------
    slopes_l = [0.0] * n
    v_l = [0.0] * n
    acc_l = 0.0
    acc_weighted_l = 0.0  # sum ls_j * x_j for j >= i
    for i in range(n - 1, -1, -1):
        acc_l += merged_ls[i]
        acc_weighted_l += merged_ls[i] * merged_x[i]
        slopes_l[i] = acc_l
        # vL[i] = sum over pieces j >= i of ls_j * (x_i - x_j); piece i itself
        # contributes zero at its own breakpoint.
        v_l[i] = acc_l * merged_x[i] - acc_weighted_l
    values = [v_r[i] + v_l[i] for i in range(n)]

    merged = [BreakpointPiece(merged_x[i], merged_ls[i], merged_rs[i]) for i in range(n)]
    candidates: List[Tuple[float, float]] = []
    for i in range(n):
        if lo - _EPS <= merged_x[i] <= hi + _EPS:
            candidates.append((min(max(merged_x[i], lo), hi), values[i]))
    for bound in (lo, hi):
        candidates.append((bound, _value_at(bound, merged, slopes_r, slopes_l, values)))
    if preferred_x is not None and lo <= preferred_x <= hi:
        candidates.append((preferred_x, _value_at(preferred_x, merged, slopes_r, slopes_l, values)))
    best_x, best_v = _pick_best(candidates, preferred_x)
    return CurveEvaluation(
        best_x=best_x,
        best_value=best_v + constant,
        n_breakpoints=len(sorted_pieces),
        n_merged=n,
    )


# ----------------------------------------------------------------------
# Helpers for constructing the displacement curves of shifted cells
# ----------------------------------------------------------------------
def left_shift_curve(threshold: float, current_x: float, gp_x: float) -> Tuple[List[BreakpointPiece], float]:
    """Displacement-change curve of a cell pushed left by the target.

    The cell's new position is ``current_x - max(0, threshold - x_t)``.
    The returned ``(pieces, constant)`` represent the *change* of the
    cell's displacement-from-global-placement relative to its value when
    it is not moved; summing changes over affected cells (plus the
    target's own displacement) ranks insertion positions exactly like the
    absolute objective would, because the unaffected cells contribute a
    constant that is common to every candidate position of the region.
    """
    delta = current_x - gp_x
    if delta >= 0:
        # The cell currently sits right of its GP spot; moving it left first
        # reduces then increases its displacement (non-convex overall curve).
        return (
            [
                BreakpointPiece(threshold - delta, -1.0, +1.0),
                BreakpointPiece(threshold, 0.0, -1.0),
            ],
            -delta,
        )
    # The cell is already left of its GP spot; any further left move adds
    # displacement one-for-one.
    return [BreakpointPiece(threshold, -1.0, 0.0)], 0.0


def right_shift_curve(
    threshold: float, target_width: float, current_x: float, gp_x: float
) -> Tuple[List[BreakpointPiece], float]:
    """Displacement-change curve of a cell pushed right by the target.

    The cell's new position is ``current_x + max(0, (x_t + w_t) - threshold)``
    where ``threshold`` is the largest target right edge that leaves the
    cell untouched.  Expressed in ``x_t`` the hinge sits at
    ``threshold - target_width``.
    """
    hinge = threshold - target_width
    delta = current_x - gp_x
    if delta <= 0:
        # Currently left of GP: moving right first helps, then hurts.
        return (
            [
                BreakpointPiece(hinge - delta, -1.0, +1.0),
                BreakpointPiece(hinge, +1.0, 0.0),
            ],
            delta,
        )
    return [BreakpointPiece(hinge, 0.0, +1.0)], 0.0


def target_curve(gp_x: float, vertical_cost: float) -> Tuple[List[BreakpointPiece], float]:
    """Displacement curve of the target cell itself.

    Horizontal displacement is ``|x_t - gp_x|``; the vertical component is
    a constant for a fixed candidate bottom row and is passed in already
    converted to horizontal units.
    """
    return [BreakpointPiece(gp_x, -1.0, +1.0)], vertical_cost
