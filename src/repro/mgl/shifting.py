"""Cell shifting: resolving the overlaps a target insertion would cause.

Cell shifting is the dominant operation inside FOP (paper Fig. 2(g):
more than 60 % of FOP runtime).  Given an insertion point, it determines
how far every localCell would have to move — to the left for cells on the
target's left, to the right for cells on its right — as a *function of
the target position* ``x_t``.

Because the localCells of a region are mutually non-overlapping before
the insertion, the displacement of every affected cell is a hinge in
``x_t``:

* a left-side cell ``c`` moves only when ``x_t`` drops below its *push
  threshold* ``b_c`` and then by exactly ``b_c - x_t``;
* a right-side cell ``c`` moves only when the target's right edge
  ``x_t + w_t`` exceeds its threshold ``r_c`` and then by
  ``(x_t + w_t) - r_c``.

The thresholds obey a simple propagation rule along each row: a cell
inherits its neighbour's threshold minus the free gap between them.
Multi-row cells couple the rows, which is exactly why the original
algorithm (Fig. 6, Algorithm 3) needs an unpredictable number of passes:
it traverses subcells bottom-to-top / right-to-left and a constraint that
propagates "down" into an already-visited row is only discovered in the
next pass.  The Sort-Ahead Cell Shifting algorithm
(:mod:`repro.core.sacs`) pre-sorts cells by x so a single pass suffices;
both produce identical thresholds.

This module provides the shared data structures, the original multi-pass
algorithm, and helpers to turn a :class:`ShiftOutcome` into displacement
curves and into concrete committed positions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.region import LocalCell, LocalRegion
from repro.mgl.insertion import InsertionPoint

_INF = math.inf
_EPS = 1e-9


@dataclass
class ShiftOutcome:
    """Result of cell shifting for one insertion point.

    ``left_thresholds`` maps a localCell index to its push threshold
    ``b_c`` (the cell moves left by ``max(0, b_c - x_t)``);
    ``right_thresholds`` maps to ``r_c`` (the cell moves right by
    ``max(0, x_t + w_t - r_c)``).  ``xt_lo``/``xt_hi`` bound the target
    positions for which every cell stays inside its localSegments.
    """

    left_thresholds: Dict[int, float] = field(default_factory=dict)
    right_thresholds: Dict[int, float] = field(default_factory=dict)
    xt_lo: float = -_INF
    xt_hi: float = _INF
    feasible: bool = True
    passes: int = 0
    cell_visits: int = 0
    multirow_accesses: int = 0
    tall_accesses: int = 0
    sorted_cells: int = 0

    @property
    def n_affected(self) -> int:
        """Number of cells that received a finite threshold."""
        return len(self.left_thresholds) + len(self.right_thresholds)


# ----------------------------------------------------------------------
# Shared geometry helpers
# ----------------------------------------------------------------------
def _segment_bounds_for_cell(region: LocalRegion, cell: LocalCell) -> Tuple[float, float]:
    """Tightest segment bounds over the rows a localCell covers."""
    lo = max(region.segments[row].x_lo for row in cell.rows)
    hi = min(region.segments[row].x_hi for row in cell.rows)
    return lo, hi


def target_position_bounds(
    region: LocalRegion, target: Cell, insertion: InsertionPoint
) -> Tuple[float, float]:
    """Target x bounds imposed by the spanned segments alone."""
    lo = max(region.segments[row].x_lo for row in insertion.rows)
    hi = min(region.segments[row].x_hi for row in insertion.rows) - target.width
    return lo, hi


def _feasibility_bounds(
    region: LocalRegion,
    target: Cell,
    insertion: InsertionPoint,
    left: Dict[int, float],
    right: Dict[int, float],
) -> Tuple[float, float]:
    """Combine segment bounds with the push-limits of every affected cell."""
    lo, hi = target_position_bounds(region, target, insertion)
    for idx, b in left.items():
        cell = region.local_cells[idx]
        seg_lo, _ = _segment_bounds_for_cell(region, cell)
        lo = max(lo, b - (cell.x - seg_lo))
    for idx, r in right.items():
        cell = region.local_cells[idx]
        _, seg_hi = _segment_bounds_for_cell(region, cell)
        hi = min(hi, r + (seg_hi - cell.right) - target.width)
    return lo, hi


def _record_access(outcome: ShiftOutcome, cell: LocalCell) -> None:
    outcome.cell_visits += 1
    if cell.height > 1:
        outcome.multirow_accesses += 1
    if cell.height > 3:
        outcome.tall_accesses += 1


@dataclass
class RegionRowView:
    """Flattened, per-region snapshot of the row/cell structure.

    Built once per localRegion and shared by every insertion point's
    shifting call, so the hot propagation loops work on plain lists
    instead of repeatedly dereferencing the dataclass graph.
    """

    rows: List[int] = field(default_factory=list)
    row_indices: Dict[int, List[int]] = field(default_factory=dict)
    row_x: Dict[int, List[float]] = field(default_factory=dict)
    row_right: Dict[int, List[float]] = field(default_factory=dict)
    total_subcells: int = 0
    multirow_subcells: int = 0
    tall_subcells: int = 0
    n_cells: int = 0
    multirow_cells: int = 0
    tall_cells: int = 0


def build_row_view(region: LocalRegion) -> RegionRowView:
    """Precompute the flattened row view of a region."""
    view = RegionRowView()
    view.rows = region.rows()
    for row in view.rows:
        indices = region.cell_indices_in_row(row)
        view.row_indices[row] = indices
        view.row_x[row] = [region.local_cells[i].x for i in indices]
        view.row_right[row] = [region.local_cells[i].right for i in indices]
        view.total_subcells += len(indices)
        view.multirow_subcells += sum(1 for i in indices if region.local_cells[i].height > 1)
        view.tall_subcells += sum(1 for i in indices if region.local_cells[i].height > 3)
    view.n_cells = len(region.local_cells)
    view.multirow_cells = sum(1 for lc in region.local_cells if lc.height > 1)
    view.tall_cells = sum(1 for lc in region.local_cells if lc.height > 3)
    return view


# ----------------------------------------------------------------------
# Original multi-pass cell shifting (Fig. 6, Algorithm 3)
# ----------------------------------------------------------------------
def shift_cells_original(
    region: LocalRegion,
    target: Cell,
    insertion: InsertionPoint,
    view: Optional[RegionRowView] = None,
) -> ShiftOutcome:
    """The original iterative cell-shifting algorithm.

    Both the left-move and the right-move phase traverse all subcells of
    the region in a fixed order (rows bottom-to-top; right-to-left within
    a row for the left move, left-to-right for the right move) and repeat
    until a full pass makes no change (the ``finish`` flag of the paper).
    The number of passes is unpredictable — it depends on how constraints
    propagate across rows through multi-row cells — which is what makes
    this algorithm hard to pipeline and motivates SACS.

    The traversal work (every subcell touched once per pass) is accounted
    in bulk per pass; the Python loop itself only performs the constraint
    propagation, which touches the affected cells.
    """
    view = view or build_row_view(region)
    outcome = ShiftOutcome()
    split = insertion.split_map()
    local_cells = region.local_cells

    # --- left-move phase ------------------------------------------------
    left: Dict[int, float] = {}
    for row in insertion.rows:
        indices = view.row_indices[row]
        k = split[row]
        if k > 0:
            boundary = local_cells[indices[k - 1]]
            prev = left.get(boundary.local_index, -_INF)
            left[boundary.local_index] = max(prev, boundary.right)
    changed = bool(left) or True
    while changed:
        changed = False
        outcome.passes += 1
        outcome.cell_visits += view.total_subcells
        outcome.multirow_accesses += view.multirow_subcells
        outcome.tall_accesses += view.tall_subcells
        if not left:
            break
        for row in view.rows:
            indices = view.row_indices[row]
            xs = view.row_x[row]
            rights = view.row_right[row]
            limit = split.get(row)
            for pos in range(len(indices) - 1, 0, -1):
                idx = indices[pos]
                b = left.get(idx)
                if b is None:
                    continue
                # Right-side cells of spanned rows never push anything left.
                if limit is not None and pos >= limit:
                    continue
                neighbour_idx = indices[pos - 1]
                candidate = b - (xs[pos] - rights[pos - 1])
                if candidate > left.get(neighbour_idx, -_INF) + _EPS:
                    left[neighbour_idx] = candidate
                    changed = True

    # --- right-move phase -----------------------------------------------
    right: Dict[int, float] = {}
    for row in insertion.rows:
        indices = view.row_indices[row]
        k = split[row]
        if k < len(indices):
            boundary = local_cells[indices[k]]
            prev = right.get(boundary.local_index, _INF)
            right[boundary.local_index] = min(prev, boundary.x)
    changed = True
    while changed:
        changed = False
        outcome.passes += 1
        outcome.cell_visits += view.total_subcells
        outcome.multirow_accesses += view.multirow_subcells
        outcome.tall_accesses += view.tall_subcells
        if not right:
            break
        for row in view.rows:
            indices = view.row_indices[row]
            xs = view.row_x[row]
            rights = view.row_right[row]
            limit = split.get(row)
            last = len(indices) - 1
            for pos in range(0, last):
                idx = indices[pos]
                r = right.get(idx)
                if r is None:
                    continue
                if limit is not None and pos < limit:
                    continue
                neighbour_idx = indices[pos + 1]
                candidate = r + (xs[pos + 1] - rights[pos])
                if candidate < right.get(neighbour_idx, _INF) - _EPS:
                    right[neighbour_idx] = candidate
                    changed = True

    return _finalize_outcome(outcome, region, target, insertion, left, right)


def _finalize_outcome(
    outcome: ShiftOutcome,
    region: LocalRegion,
    target: Cell,
    insertion: InsertionPoint,
    left: Dict[int, float],
    right: Dict[int, float],
) -> ShiftOutcome:
    """Common post-processing shared by the original and SACS algorithms."""
    outcome.left_thresholds = left
    outcome.right_thresholds = right
    if set(left) & set(right):
        # A cell constrained from both sides means the insertion point
        # cannot host the target at any position.
        outcome.feasible = False
        return outcome
    # A cell on the target's right side of a spanned row must never be
    # pushed left (it would collide with the target), and vice versa; if a
    # cross-row chain forces that, the insertion point is contradictory.
    split = insertion.split_map()
    for row in insertion.rows:
        indices = region.cell_indices_in_row(row)
        k = split[row]
        if any(idx in left for idx in indices[k:]) or any(idx in right for idx in indices[:k]):
            outcome.feasible = False
            return outcome
    lo, hi = _feasibility_bounds(region, target, insertion, left, right)
    outcome.xt_lo, outcome.xt_hi = lo, hi
    outcome.feasible = hi >= lo - _EPS and math.ceil(lo - _EPS) <= math.floor(hi + _EPS)
    return outcome


class OriginalShifter:
    """Shifter object wrapping :func:`shift_cells_original`.

    The FOP driver accepts any object with this interface; FLEX supplies
    :class:`repro.core.sacs.SortAheadShifter` instead.  A flattened
    :class:`RegionRowView` is cached per region so that the per-insertion-
    point calls do not rebuild it.
    """

    name = "original"

    def __init__(self) -> None:
        self._view: Optional[RegionRowView] = None
        self._region_id: Optional[int] = None

    def prepare(self, region: LocalRegion) -> None:
        """Precompute the flattened row view of the region."""
        self._view = build_row_view(region)
        # Identity token for cache invalidation only — never ordered,
        # iterated or persisted, so the address is safe here.
        self._region_id = id(region)  # repro: allow[det-id-key]

    def shift(self, region: LocalRegion, target: Cell, insertion: InsertionPoint) -> ShiftOutcome:
        """Run the multi-pass cell-shifting algorithm for one insertion point."""
        if self._view is None or self._region_id != id(region):  # repro: allow[det-id-key]
            self.prepare(region)
        return shift_cells_original(region, target, insertion, self._view)


# ----------------------------------------------------------------------
# Applying a shift outcome
# ----------------------------------------------------------------------
def shifted_positions(outcome: ShiftOutcome, region: LocalRegion, target_x: float, target_width: float) -> Dict[int, float]:
    """Concrete new x positions of the affected cells for a chosen target x.

    Only cells that actually move appear in the returned mapping.
    """
    moves: Dict[int, float] = {}
    for idx, b in outcome.left_thresholds.items():
        shift = max(0.0, b - target_x)
        if shift > _EPS:
            moves[idx] = region.local_cells[idx].x - shift
    target_right = target_x + target_width
    for idx, r in outcome.right_thresholds.items():
        shift = max(0.0, target_right - r)
        if shift > _EPS:
            moves[idx] = region.local_cells[idx].x + shift
    return moves


def verify_no_overlap(
    region: LocalRegion,
    moves: Dict[int, float],
    target_x: float,
    target_width: float,
    insertion: InsertionPoint,
) -> bool:
    """Check that the proposed moves leave the region overlap-free.

    This is a defensive verification used by tests and by the insert &
    update step before committing; it is cheap (linear in the number of
    subcells of the region).
    """
    spans: Dict[int, List[Tuple[float, float]]] = {}
    for row in region.rows():
        row_spans: List[Tuple[float, float]] = []
        for idx in region.cell_indices_in_row(row):
            cell = region.local_cells[idx]
            x = moves.get(idx, cell.x)
            row_spans.append((x, x + cell.width))
        if row in insertion.rows:
            row_spans.append((target_x, target_x + target_width))
        row_spans.sort()
        spans[row] = row_spans
    for row_spans in spans.values():
        for (lo1, hi1), (lo2, hi2) in zip(row_spans, row_spans[1:]):
            if lo2 < hi1 - 1e-6:
                return False
    return True
