"""The complete MGL legalizer (the TCAD'22 baseline algorithm).

:class:`MGLLegalizer` strings together the five steps of paper Fig. 3(e):
pre-move, processing ordering, localRegion extraction, FOP and insert &
update, retrying each target with progressively larger windows and
falling back to a direct free-space search when even the expanded window
has no feasible insertion point.

The legalizer is parameterised by

* the *cell-shifting implementation* (original multi-pass vs SACS),
* the *curve pipeline organisation* (original vs fwdtraverse/bwdtraverse),
* the *processing ordering* (size-descending — the baseline — or any
  callable; FLEX plugs in the sliding-window ordering),

so that every configuration evaluated in the paper can be expressed as a
parameterisation of this one class, and all of them share the same
quality-relevant machinery.
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval, gaps_between, intersect_interval_lists
from repro.geometry.layout import Layout
from repro.geometry.row import legal_bottom_rows
from repro.kernels import BackendSpec, resolve_backend
from repro.legality.metrics import DisplacementStats, PlacementMetrics
from repro.mgl.fop import FOPConfig, find_optimal_position
from repro.mgl.local_region import RegionBuilder, region_transfer_words
from repro.mgl.premove import premove, premove_cell
from repro.mgl.window_planner import (
    DEFAULT_GROWTH,
    DEFAULT_MAX_GROWTHS,
    DEFAULT_SLACK,
    plan_initial_window,
)
from repro.mgl.update import commit_placement
from repro.obs import enabled as obs_enabled
from repro.obs import span
from repro.perf.counters import LegalizationTrace, TargetCellWork

#: Type of a processing-ordering function: receives the layout and the
#: unlegalized cells and yields them in processing order.
OrderingFn = Callable[[Layout, List[Cell]], List[Cell]]


def size_descending_order(layout: Layout, cells: List[Cell]) -> List[Cell]:
    """The baseline ordering: larger cells first (paper Sec. 3.1.2).

    Cells are sorted by area, then height, then width, all descending;
    ties are broken by the cell index for determinism.
    """
    return sorted(cells, key=lambda c: (-c.area, -c.height, -c.width, c.index))


def fast_mgl_legalizer(backend: BackendSpec = None, **kwargs) -> "MGLLegalizer":
    """An :class:`MGLLegalizer` in the fast host configuration.

    SACS shifting plus the fwdtraverse/bwdtraverse curve pipeline — the
    configuration the CLI, the incremental/ECO tooling and the host
    benchmarks all run.  Keeping the construction in one place means a
    future FOP knob change cannot leave those surfaces on silently
    different configurations.  ``kwargs`` pass through to the
    constructor.
    """
    from repro.core.sacs import SortAheadShifter  # deferred: core imports mgl

    return MGLLegalizer(
        FOPConfig(shifter=SortAheadShifter(), use_fwd_bwd_pipeline=True),
        backend=backend,
        **kwargs,
    )


@dataclass
class LegalizationResult:
    """Outcome of one legalization run."""

    layout: Layout
    trace: LegalizationTrace
    stats: DisplacementStats
    failed_cells: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def success(self) -> bool:
        """True when every movable cell received a legal position."""
        return not self.failed_cells

    @property
    def average_displacement(self) -> float:
        """The S_am quality metric of the run (Eq. 2), in row heights."""
        return self.stats.average_displacement


class MGLLegalizer:
    """Multi-row Global Legalization.

    Parameters
    ----------
    fop_config:
        FOP kernel configuration (shifter choice, pipeline organisation,
        vertical cost factor, kernel backend).
    backend:
        Convenience override of the kernel backend (:mod:`repro.kernels`
        name or instance).  When given it is applied to ``fop_config``
        and — when the shifter supports it — to the shifter, so a single
        argument switches every kernel of the run.
    ordering:
        Processing-ordering function; defaults to size-descending.
    window_width_factor / window_min_width / window_extra_rows:
        Initial (geometric) search-window sizing around each target.
    window_slack / planner_growth / planner_max_growths / use_window_planner:
        Occupancy-aware window planning (:mod:`repro.mgl.window_planner`):
        the geometric window is grown until it provably contains
        ``(1 + window_slack)`` times the target's free-capacity needs,
        by ``planner_growth`` per step, at most ``planner_max_growths``
        times.  ``use_window_planner=False`` restores the blind
        geometric window.
    window_expansion:
        Multiplicative growth applied to the window on each retry.
    max_retries:
        Number of window expansions before the free-space fallback.
    metrics:
        Metric converter used for the result statistics.
    algorithm_name:
        Label recorded in the trace (``"mgl"`` for the baseline).
    """

    def __init__(
        self,
        fop_config: Optional[FOPConfig] = None,
        *,
        backend: BackendSpec = None,
        ordering: Optional[OrderingFn] = None,
        window_width_factor: float = 5.0,
        window_min_width: float = 24.0,
        window_extra_rows: int = 3,
        window_slack: float = DEFAULT_SLACK,
        planner_growth: float = DEFAULT_GROWTH,
        planner_max_growths: int = DEFAULT_MAX_GROWTHS,
        use_window_planner: bool = True,
        window_expansion: float = 1.8,
        max_retries: int = 4,
        metrics: Optional[PlacementMetrics] = None,
        algorithm_name: str = "mgl",
    ) -> None:
        config = fop_config or FOPConfig()
        if backend is not None:
            # Never write through to a caller-owned config or shifter: a
            # config shared between legalizers must keep its own backend.
            shifter = config.shifter
            if hasattr(shifter, "set_backend"):
                shifter = copy.copy(shifter)
                shifter.set_backend(backend)
            config = replace(config, backend=backend, shifter=shifter)
        self.fop_config = config
        self.ordering: OrderingFn = ordering or size_descending_order
        self.window_width_factor = window_width_factor
        self.window_min_width = window_min_width
        self.window_extra_rows = window_extra_rows
        self.window_slack = window_slack
        self.planner_growth = planner_growth
        self.planner_max_growths = planner_max_growths
        self.use_window_planner = use_window_planner
        self.window_expansion = window_expansion
        self.max_retries = max_retries
        self.metrics = metrics or PlacementMetrics(
            site_width_units=1.0 / self.fop_config.vertical_cost_factor
        )
        self.algorithm_name = algorithm_name

    # ------------------------------------------------------------------
    def window_params(self) -> dict:
        """Initial-window planning parameters, keyword-compatible with
        :func:`repro.mgl.window_planner.plan_initial_window` and
        :func:`repro.core.task_assignment.plan_shards`."""
        return dict(
            width_factor=self.window_width_factor,
            min_width=self.window_min_width,
            extra_rows=self.window_extra_rows,
            slack=self.window_slack,
            growth=self.planner_growth,
            max_growths=self.planner_max_growths,
            use_planner=self.use_window_planner,
        )

    def close(self) -> None:
        """Release backend-held resources (worker pools, shared memory).

        The ``multiprocess`` backend keeps a persistent worker pool for
        the legalizer's lifetime; ``close()`` hands the release through
        to it.  Sequential backends hold nothing and this is a no-op.
        Idempotent, and not terminal — a later ``legalize`` call simply
        re-creates what it needs.  ``with MGLLegalizer(...) as leg:``
        closes automatically.
        """
        backend = self.fop_config.backend
        if backend is not None:
            backend = resolve_backend(backend)
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "MGLLegalizer":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    def with_backend(self, backend: BackendSpec) -> "MGLLegalizer":
        """A clone of this legalizer running on a different kernel backend.

        Used by layout-parallel backends to hand their worker processes a
        sequential legalizer with identical parameters.
        """
        return MGLLegalizer(
            self.fop_config,
            backend=backend,
            ordering=self.ordering,
            window_width_factor=self.window_width_factor,
            window_min_width=self.window_min_width,
            window_extra_rows=self.window_extra_rows,
            window_slack=self.window_slack,
            planner_growth=self.planner_growth,
            planner_max_growths=self.planner_max_growths,
            use_window_planner=self.use_window_planner,
            window_expansion=self.window_expansion,
            max_retries=self.max_retries,
            metrics=self.metrics,
            algorithm_name=self.algorithm_name,
        )

    # ------------------------------------------------------------------
    def legalize(self, layout: Layout) -> LegalizationResult:
        """Legalize every movable cell of the layout in place."""
        start = time.perf_counter()
        trace = self._new_trace(layout)
        with span("mgl.premove"):
            trace.premove_cells = premove(layout)
            layout.rebuild_index()
        pending = layout.unlegalized_cells()
        return self._legalize_pending(layout, pending, trace, start)

    def legalize_subset(
        self, layout: Layout, targets: Sequence[Cell]
    ) -> LegalizationResult:
        """Re-entrant legalization of an explicit target subset.

        The incremental (ECO) engine's entry point: ``targets`` are the
        dirty cells of an otherwise legal layout.  Every target must be
        a movable, currently-unlegalized cell of ``layout``; everything
        else is treated as an obstacle exactly as in :meth:`legalize`.
        Only the targets are pre-moved, and — unlike :meth:`legalize` —
        the layout's obstacle index is trusted as-is (no whole-index
        rebuild), so callers maintaining the index incrementally pay
        only for the cells they touched.

        The result is bit-for-bit identical to running :meth:`legalize`
        on the same layout state: a full run's pending set would be the
        same cells, and the processing ordering, window planning and
        kernel backends all restrict naturally to the subset.

        When the kernel backend shards across workers, the targets'
        spatial dirty clusters (:func:`repro.core.task_assignment
        .cluster_targets`) are handed to the shard planner as seeds, so
        each ECO dirty neighbourhood stays on one worker — window
        retries then expand inside their own worker's territory instead
        of escaping into another's and forcing a sequential re-run.
        Seeding only coarsens the window-disjoint partition, so results
        remain bit-for-bit identical at any worker count.
        """
        start = time.perf_counter()
        for target in targets:
            if target.fixed or target.legalized:
                raise ValueError(
                    f"cell {target.name} is not a pending target "
                    "(fixed or already legalized)"
                )
            if layout.cells[target.index] is not target:
                raise ValueError(f"cell {target.name} does not belong to this layout")
        backend = resolve_backend(self.fop_config.backend)
        clusters = None
        if backend.supports_layout_parallel and targets:
            from repro.core.task_assignment import cluster_targets

            clusters = cluster_targets(
                layout,
                targets,
                x_radius=self.window_min_width / 2.0,
                row_radius=self.window_extra_rows,
            )
        trace = self._new_trace(layout)
        with span("mgl.premove", subset=True):
            for target in targets:
                premove_cell(layout, target)
        trace.premove_cells = len(targets)
        return self._legalize_pending(
            layout, list(targets), trace, start, shard_clusters=clusters
        )

    # ------------------------------------------------------------------
    def _new_trace(self, layout: Layout) -> LegalizationTrace:
        backend = resolve_backend(self.fop_config.backend)
        return LegalizationTrace(
            design_name=layout.name,
            algorithm=self.algorithm_name,
            shift_algorithm=getattr(self.fop_config.shifter, "name", "original"),
            kernel_backend=backend.name,
            num_cells=len(layout.cells),
            num_movable=len(layout.movable_cells()),
        )

    def _legalize_pending(
        self,
        layout: Layout,
        pending: List[Cell],
        trace: LegalizationTrace,
        start: float,
        *,
        shard_clusters: Optional[List[List[int]]] = None,
    ) -> LegalizationResult:
        """Order and legalize a pending target set (shared run tail)."""
        backend = resolve_backend(self.fop_config.backend)
        with span("mgl.order", targets=len(pending)):
            ordered = self.ordering(layout, pending)
        n = max(1, len(ordered))
        trace.ordering_ops = int(
            getattr(self.ordering, "last_op_count", n * max(1.0, math.log2(n)))
        )

        with span("mgl.place", targets=len(ordered), backend=backend.name) as sp:
            if backend.supports_layout_parallel:
                # Sharded execution across worker processes; produces results
                # and work records bit-for-bit equal to the sequential run.
                failed = backend.legalize_sharded(
                    self, layout, ordered, trace, clusters=shard_clusters
                )
            else:
                failed = self._legalize_ordered(layout, ordered, trace)
            if obs_enabled():
                # The per-stage FOP workload split is O(targets) to fold,
                # so it is attached to the span only when tracing is on.
                sp.set(failed=len(failed), fop_stages=trace.fop_stage_workload())

        with span("mgl.metrics"):
            stats = self.metrics.compute(layout)
        return LegalizationResult(
            layout=layout,
            trace=trace,
            stats=stats,
            failed_cells=failed,
            wall_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _legalize_ordered(
        self, layout: Layout, ordered: Sequence[Cell], trace: LegalizationTrace
    ) -> List[int]:
        """Sequentially legalize an already-ordered target sequence."""
        failed: List[int] = []
        for target in ordered:
            if target.legalized:
                continue
            placed, work = self._legalize_cell(layout, target)
            trace.add_target(work)
            trace.region_build_ops += work.region_transfer_words  # proportional proxy
            trace.update_ops += work.update_moved_cells + 1
            if not placed:
                failed.append(target.index)
        return failed

    # ------------------------------------------------------------------
    def _legalize_cell(self, layout: Layout, target: Cell) -> Tuple[bool, TargetCellWork]:
        """Legalize one target cell (steps c–e with window retries)."""
        work = TargetCellWork(cell_index=target.index, height=target.height, width=target.width)
        window, growths = plan_initial_window(layout, target, **self.window_params())
        work.planner_growths = growths
        # One builder per target: retries grow the window monotonically,
        # so each retry rescans only the newly exposed strips and reuses
        # the per-row obstacle lists already gathered for the region.
        builder = RegionBuilder(layout, target)
        for retry in range(self.max_retries + 1):
            region, scanned = builder.build(window)
            work.window_retries = retry
            work.final_window = (window.x_lo, window.x_hi, window.row_lo, window.row_hi)
            work.n_local_cells = len(region.local_cells)
            work.n_subcells = region.total_subcells()
            work.n_rows = len(region.segments)
            work.region_density = region.density
            work.region_transfer_words += region_transfer_words(region)
            result = find_optimal_position(region, target, self.fop_config, work)
            if result.feasible:
                moved = commit_placement(layout, region, target, result)
                if moved is not None:
                    work.update_moved_cells = moved
                    return True, work
            # Grow the window and retry.
            window = window.expanded(
                dx=window.width * (self.window_expansion - 1.0) / 2.0 + target.width,
                drows=max(2, int(window.num_rows * (self.window_expansion - 1.0) / 2.0) + 1),
                layout_width=layout.width,
                layout_rows=layout.num_rows,
            )
        # Fallback: direct nearest-free-space search over the whole chip.
        work.fallback_used = True
        work.final_window = (0.0, layout.width, 0, layout.num_rows)
        position = self._fallback_position(layout, target)
        if position is None:
            return False, work
        x, bottom = position
        layout.mark_legalized(target, x, float(bottom))
        return True, work

    # ------------------------------------------------------------------
    def _fallback_position(self, layout: Layout, target: Cell) -> Optional[Tuple[float, int]]:
        """Find the nearest completely free slot able to host the target."""
        vertical_factor = self.fop_config.vertical_cost_factor
        best: Optional[Tuple[float, int, float]] = None
        rows = sorted(
            legal_bottom_rows(target.height, layout.num_rows),
            key=lambda r: abs(r - target.gp_y),
        )
        for bottom in rows:
            vertical_cost = abs(bottom - target.gp_y) * vertical_factor
            if best is not None and vertical_cost >= best[2]:
                break
            free: List[Interval] = [Interval(0.0, layout.width)]
            for row in range(bottom, bottom + target.height):
                occupied = [(c.x, c.right) for c in layout.obstacles_in_row(row)]
                row_free = gaps_between(occupied, layout.row_span_interval(row))
                free = intersect_interval_lists(free, row_free)
                if not free:
                    break
            for interval in free:
                if interval.length + 1e-9 < target.width:
                    continue
                lo = math.ceil(interval.lo - 1e-9)
                hi = math.floor(interval.hi - target.width + 1e-9)
                if lo > hi:
                    continue
                x = float(min(max(round(target.gp_x), lo), hi))
                cost = abs(x - target.gp_x) + vertical_cost
                if best is None or cost < best[2]:
                    best = (x, bottom, cost)
        if best is None:
            return None
        return best[0], best[1]
