"""Occupancy-aware planning of the initial search window.

The geometric window of :func:`repro.mgl.local_region.initial_window`
is sized from the target alone (``width_factor`` / ``min_width`` /
``extra_rows``), so on dense designs it routinely lands on fully
fragmented free space and the retry-0 FOP pass finds no feasible
insertion point — every such target pays one or more ``window_expansion``
retries, and shard planning must assume the escaped window, which caps
across-region multiprocess parallelism (the saturation effect of paper
Sec. 5.4).

:func:`plan_initial_window` fixes that deterministically: it consults the
layout's free-space summary (:meth:`repro.geometry.layout.Layout
.row_free_capacity`) and grows the geometric window until it *provably*
contains enough free capacity for the target plus a configurable slack —
both in total area and as a contiguous band of candidate bottom rows
each wide enough for the slackened target.  Growth is monotone (every
step returns a superset window) and shifts asymmetrically off the chip
boundary, so the planner's entire read set is contained in the window it
returns.  That containment is what keeps the multiprocess backends
bit-for-bit: any concurrent commit that could have changed a plan
necessarily intersects the planned window, which the escape / hazard
validation already checks.

The planner is pure Python arithmetic over the shared layout summary, so
every kernel backend computes the identical floats.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.geometry.region import Window
from repro.geometry.row import legal_bottom_rows

#: Default fractional free-capacity slack demanded beyond the target's
#: own footprint (1.0 = plan for 2x the target area / per-row width).
DEFAULT_SLACK = 1.0
#: Default multiplicative growth applied per planning step.
DEFAULT_GROWTH = 1.6
#: Default cap on the number of planning growth steps per target.
DEFAULT_MAX_GROWTHS = 8
#: Growth steps that stay horizontal-only before rows are grown too.
#: Vertical displacement costs ``vertical_cost_factor`` (10x) per row, so
#: extra rows almost never host the winner yet multiply the insertion
#: points FOP must evaluate; growing sideways first keeps the planned
#: regions cheap.  Rows grow earlier only when the window already spans
#: the full chip width.
ROW_GROWTH_DEFER = 3


def window_is_promising(
    layout: Layout, target: Cell, window: Window, slack: float
) -> bool:
    """Free-capacity feasibility estimate for a retry-0 window.

    The window is *promising* when

    * some legal bottom row admits a contiguous band of ``target.height``
      rows, each with at least ``target.width * (1 + slack)`` free sites
      inside the window, and
    * the window's total free capacity covers ``target.area * (1 + slack)``.

    The estimate is necessary-but-cheap rather than exact: it reads only
    the per-row free-space summary (FOP can shift localCells, so row
    capacity — not gap contiguity — is the binding constraint), which
    keeps planning O(rows · log obstacles) per probe.
    """
    need_width = target.width * (1.0 + slack)
    frees = {
        row: layout.row_free_capacity(row, window.x_lo, window.x_hi)
        for row in window.rows()
    }
    band_found = False
    for bottom in legal_bottom_rows(target.height, layout.num_rows):
        if bottom < window.row_lo or bottom + target.height > window.row_hi:
            continue
        if all(frees[row] >= need_width for row in range(bottom, bottom + target.height)):
            band_found = True
            break
    if not band_found:
        return False
    # Left-to-right fold over the insertion-ordered row dict is the
    # reference predicate every backend shares; keep the builtin sum.
    return sum(frees.values()) >= target.area * (1.0 + slack)  # repro: allow[flt-sum]


def grow_window(window: Window, dx: float, drows: int, layout: Layout) -> Window:
    """Grow a window by ``dx`` sites / ``drows`` rows per side, monotonically.

    Unlike :meth:`repro.geometry.region.Window.expanded` (which clips the
    overhang away), growth blocked by a chip edge is redistributed to the
    opposite side, so the planned window *shifts* asymmetrically toward
    the space that exists while always remaining a superset of its input.
    """
    x_lo = window.x_lo - dx
    x_hi = window.x_hi + dx
    if x_lo < 0.0:
        x_hi += -x_lo
        x_lo = 0.0
    if x_hi > layout.width:
        x_lo -= x_hi - layout.width
        x_hi = layout.width
    x_lo = max(0.0, x_lo)
    row_lo = window.row_lo - drows
    row_hi = window.row_hi + drows
    if row_lo < 0:
        row_hi += -row_lo
        row_lo = 0
    if row_hi > layout.num_rows:
        row_lo -= row_hi - layout.num_rows
        row_hi = layout.num_rows
    row_lo = max(0, row_lo)
    return Window(x_lo=x_lo, x_hi=x_hi, row_lo=row_lo, row_hi=row_hi)


def plan_initial_window(
    layout: Layout,
    target: Cell,
    *,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
    slack: Optional[float] = None,
    growth: Optional[float] = None,
    max_growths: Optional[int] = None,
    use_planner: bool = True,
) -> Tuple[Window, int]:
    """Plan the retry-0 search window of a (pre-moved) target cell.

    ``slack`` / ``growth`` / ``max_growths`` default (via ``None``) to
    the module's ``DEFAULT_*`` constants, so callers that do not tune
    them — notably :func:`repro.core.task_assignment.target_window_rect`
    — can never drift from the planner's single source of defaults.

    Opens the geometric window of :func:`~repro.mgl.local_region
    .initial_window` and, when the planner is enabled, grows it until
    :func:`window_is_promising` accepts it (or the growth budget is
    exhausted, or the window covers the whole chip).  Returns the window
    together with the number of growth steps taken — recorded as
    ``planner_growths`` in the target's work counters.

    This is the single source of the planned-window floats: both
    :meth:`repro.mgl.legalizer.MGLLegalizer._legalize_cell` and
    :func:`repro.core.task_assignment.target_window_rect` call it, so
    the shard escape validation can compare planned and recorded windows
    for exact equality.
    """
    from repro.mgl.local_region import initial_window

    slack = DEFAULT_SLACK if slack is None else slack
    growth = DEFAULT_GROWTH if growth is None else growth
    max_growths = DEFAULT_MAX_GROWTHS if max_growths is None else max_growths
    window = initial_window(
        layout,
        target,
        width_factor=width_factor,
        min_width=min_width,
        extra_rows=extra_rows,
    )
    if not use_planner:
        return window, 0
    growths = 0
    while growths < max_growths and not window_is_promising(
        layout, target, window, slack
    ):
        dx = max(target.width, window.width * (growth - 1.0) / 2.0)
        full_width = window.x_lo <= 0.0 and window.x_hi >= layout.width
        grow_rows = full_width or growths >= ROW_GROWTH_DEFER
        drows = (
            max(1, int(round(window.num_rows * (growth - 1.0) / 2.0)))
            if grow_rows
            else 0
        )
        grown = grow_window(window, dx, drows, layout)
        if grown == window:  # already covers the whole chip
            break
        window = grown
        growths += 1
    return window, growths
