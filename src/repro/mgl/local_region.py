"""Step (c) of the MGL flow: define the localRegion of a target cell.

For every row of the target's search window the *longest* continuous run
of unblocked placement sites becomes the row's localSegment; legalized
cells fully contained in those segments become localCells; everything
else (fixed blockages and cells that only partially overlap the window)
is treated as a blockage that clips the segments.

The localRegion's density is also computed here because the FLEX
processing ordering (paper Sec. 3.1.2) consumes it — keeping steps (b)
and (c) both on the CPU avoids transferring the density back from the
FPGA (Sec. 3.1.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval, subtract_intervals
from repro.geometry.layout import Layout
from repro.geometry.region import LocalRegion, LocalSegment, Window


def initial_window(
    layout: Layout,
    target: Cell,
    *,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
) -> Window:
    """Open the initial search window around a (pre-moved) target cell.

    The window is centred on the target's current position; its width is
    ``max(min_width, width_factor * target.width)`` sites and it covers
    the target's rows plus ``extra_rows`` above and below, clipped to the
    chip.  FOP widens the window when no feasible insertion point exists.
    """
    half_width = max(min_width, width_factor * target.width) / 2.0
    centre = target.x + target.width / 2.0
    bottom = int(round(target.y))
    return Window(
        x_lo=max(0.0, centre - half_width),
        x_hi=min(layout.width, centre + half_width),
        row_lo=max(0, bottom - extra_rows),
        row_hi=min(layout.num_rows, bottom + target.height + extra_rows),
    )


def build_local_region(
    layout: Layout, target: Cell, window: Window
) -> Tuple[LocalRegion, int]:
    """Extract the localRegion of ``target`` inside ``window``.

    Returns the region together with the number of obstacle cells scanned
    (the work measure of step (c) consumed by the CPU cost model).
    """
    scanned = 0
    window_x = Interval(window.x_lo, window.x_hi)

    # Gather the obstacle cells touching each window row once.  Obstacles
    # that are not fully contained in the window (or are fixed) always clip
    # the row's free span; fully-contained legalized cells start out as
    # localCell candidates, but any candidate that ends up outside the
    # chosen segments must be demoted to a blockage and the segments
    # recomputed — otherwise it would be invisible to FOP and the target
    # could be placed on top of it.
    row_obstacles: Dict[int, List] = {}
    forced_holes: Dict[int, List[Interval]] = {}
    candidates: Dict[int, object] = {}
    for row in window.rows():
        row_interval = layout.row_span_interval(row).intersect(window_x)
        if row_interval.empty:
            continue
        cells_here = layout.obstacles_in_row_window(row, window.x_lo, window.x_hi)
        scanned += len(cells_here)
        row_obstacles[row] = cells_here
        forced_holes[row] = []
        for cell in cells_here:
            if cell.index == target.index:
                continue
            fully_inside = (
                not cell.fixed
                and window.contains_rect(cell.x, cell.y, cell.width, cell.height)
                and all(r in window.rows() for r in cell.rows_covered())
            )
            if fully_inside:
                candidates[cell.index] = cell
            else:
                forced_holes[row].append(Interval(cell.x, cell.right))

    demoted: set = set()
    segments: Dict[int, LocalSegment] = {}
    for _ in range(1 + len(candidates)):
        # Recompute the per-row longest free run given the current holes.
        segments = {}
        for row, cells_here in row_obstacles.items():
            row_interval = layout.row_span_interval(row).intersect(window_x)
            holes = list(forced_holes[row])
            holes.extend(
                Interval(c.x, c.right)
                for c in cells_here
                if c.index in demoted
            )
            free = subtract_intervals(row_interval, holes)
            if not free:
                continue
            longest = max(free, key=lambda iv: iv.length)
            segments[row] = LocalSegment(row=row, interval=longest)
        # Demote candidates that are not contained in the segments of every
        # row they cover; repeat until stable.
        newly_demoted = False
        for index, cell in candidates.items():
            if index in demoted:
                continue
            contained = True
            for r in cell.rows_covered():
                seg_r = segments.get(r)
                if seg_r is None or not seg_r.interval.contains_interval(
                    Interval(cell.x, cell.right)
                ):
                    contained = False
                    break
            if not contained:
                demoted.add(index)
                newly_demoted = True
        if not newly_demoted:
            break

    region = LocalRegion(window=window, target=target)
    for segment in segments.values():
        region.add_segment(segment)
    for index, cell in candidates.items():
        if index not in demoted:
            region.add_local_cell(cell)

    region.finalize()
    region.density = layout.window_density(window.x_lo, window.x_hi, window.row_lo, window.row_hi)
    return region, scanned


def region_transfer_words(region: LocalRegion) -> int:
    """Estimated number of 32-bit words transferred to the FPGA for a region.

    The FLEX host sends, per localCell, its position, width, height and
    segment membership (LCT + LCPT initial content), plus per-segment
    bounds and the target descriptor.  Used by the CPU–FPGA link model.
    """
    per_cell_words = 4
    per_segment_words = 3
    header_words = 8
    return (
        header_words
        + per_cell_words * len(region.local_cells)
        + per_segment_words * len(region.segments)
        + sum(len(lc.rows) for lc in region.local_cells)  # LSC entries
    )
