"""Step (c) of the MGL flow: define the localRegion of a target cell.

For every row of the target's search window the *longest* continuous run
of unblocked placement sites becomes the row's localSegment; legalized
cells fully contained in those segments become localCells; everything
else (fixed blockages and cells that only partially overlap the window)
is treated as a blockage that clips the segments.

The localRegion's density is also computed here because the FLEX
processing ordering (paper Sec. 3.1.2) consumes it — keeping steps (b)
and (c) both on the CPU avoids transferring the density back from the
FPGA (Sec. 3.1.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval, subtract_intervals
from repro.geometry.layout import Layout
from repro.geometry.region import LocalRegion, LocalSegment, Window


def initial_window(
    layout: Layout,
    target: Cell,
    *,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
) -> Window:
    """Open the initial search window around a (pre-moved) target cell.

    The window is centred on the target's current position; its width is
    ``max(min_width, width_factor * target.width)`` sites and it covers
    the target's rows plus ``extra_rows`` above and below, clipped to the
    chip.  FOP widens the window when no feasible insertion point exists.
    """
    half_width = max(min_width, width_factor * target.width) / 2.0
    centre = target.x + target.width / 2.0
    bottom = int(round(target.y))
    return Window(
        x_lo=max(0.0, centre - half_width),
        x_hi=min(layout.width, centre + half_width),
        row_lo=max(0, bottom - extra_rows),
        row_hi=min(layout.num_rows, bottom + target.height + extra_rows),
    )


class RegionBuilder:
    """Incremental localRegion extraction across one target's retry ladder.

    The expensive part of step (c) is the per-row obstacle scan.  A
    window *retry* strictly grows the window, so the builder caches each
    row's scanned cell list together with the x-extent it covers and, on
    the next build, scans only the newly exposed strips (new rows, and
    the left/right extensions of already-scanned rows).  Classification
    and demotion always rerun on the merged lists — window containment
    changes with the window — so the produced region is identical, cell
    order included, to a from-scratch :func:`build_local_region` call.

    The cache assumes the layout does not change between builds, which
    holds inside one target's retry ladder (nothing commits until the
    target is placed).  Use one builder per target.
    """

    def __init__(self, layout: Layout, target: Cell) -> None:
        self.layout = layout
        self.target = target
        #: row -> (scanned_x_lo, scanned_x_hi, cells sorted by (x, index)).
        self._scans: Dict[int, Tuple[float, float, List[Cell]]] = {}

    # ------------------------------------------------------------------
    def _scan_row(self, row: int, x_lo: float, x_hi: float) -> Tuple[List[Cell], int]:
        """Row scan covering ``[x_lo, x_hi)``, reusing the cached extent.

        Returns the merged cell list plus the number of cells examined by
        the *new* strip scans (the incremental work measure).
        """
        layout = self.layout
        cached = self._scans.get(row)
        if cached is None:
            cells = layout.obstacles_in_row_window(row, x_lo, x_hi)
            self._scans[row] = (x_lo, x_hi, cells)
            return cells, len(cells)
        old_lo, old_hi, cells = cached
        if x_lo >= old_lo and x_hi <= old_hi:
            return cells, 0
        scanned = 0
        merged = {cell.index: cell for cell in cells}
        if x_lo < old_lo:
            # Left strip: keep boundary cells (x == old_lo) so zero-width
            # markers sitting exactly on the old edge are not lost.
            for cell in layout.obstacles_in_row(row):
                if cell.x > old_lo:
                    break
                scanned += 1
                if cell.right > x_lo:
                    merged[cell.index] = cell
        if x_hi > old_hi:
            # Right strip: keep boundary cells (right == old_hi) so
            # zero-width markers sitting exactly on the old edge are not
            # lost (obstacles_in_row_window would drop right == x_lo).
            for cell in layout.obstacles_in_row(row):
                if cell.x >= x_hi:
                    break
                scanned += 1
                if cell.right >= old_hi:
                    merged[cell.index] = cell
        cells = sorted(merged.values(), key=lambda c: (c.x, c.index))
        self._scans[row] = (min(x_lo, old_lo), max(x_hi, old_hi), cells)
        return cells, scanned

    # ------------------------------------------------------------------
    def build(self, window: Window) -> Tuple[LocalRegion, int]:
        """Extract the localRegion of the target inside ``window``.

        Returns the region plus the number of obstacle cells examined by
        this build (only newly exposed strips for incremental rebuilds).
        """
        layout, target = self.layout, self.target
        scanned = 0
        window_x = Interval(window.x_lo, window.x_hi)

        # Gather the obstacle cells touching each window row.  Obstacles
        # that are not fully contained in the window (or are fixed) always
        # clip the row's free span; fully-contained legalized cells start
        # out as localCell candidates, but any candidate that ends up
        # outside the chosen segments must be demoted to a blockage and
        # the segments recomputed — otherwise it would be invisible to FOP
        # and the target could be placed on top of it.
        row_obstacles: Dict[int, List] = {}
        forced_holes: Dict[int, List[Interval]] = {}
        candidates: Dict[int, object] = {}
        for row in window.rows():
            row_interval = layout.row_span_interval(row).intersect(window_x)
            if row_interval.empty:
                continue
            cells_here, row_scanned = self._scan_row(row, window.x_lo, window.x_hi)
            scanned += row_scanned
            row_obstacles[row] = cells_here
            forced_holes[row] = []
            for cell in cells_here:
                if cell.index == target.index:
                    continue
                if cell.right <= window.x_lo or cell.x >= window.x_hi:
                    continue  # cached scan wider than this window
                fully_inside = (
                    not cell.fixed
                    and window.contains_rect(cell.x, cell.y, cell.width, cell.height)
                    and all(r in window.rows() for r in cell.rows_covered())
                )
                if fully_inside:
                    candidates[cell.index] = cell
                else:
                    forced_holes[row].append(Interval(cell.x, cell.right))

        demoted: set = set()
        segments: Dict[int, LocalSegment] = {}
        for _ in range(1 + len(candidates)):
            # Recompute the per-row longest free run given the current holes.
            segments = {}
            for row, cells_here in row_obstacles.items():
                row_interval = layout.row_span_interval(row).intersect(window_x)
                holes = list(forced_holes[row])
                holes.extend(
                    Interval(c.x, c.right)
                    for c in cells_here
                    if c.index in demoted
                )
                free = subtract_intervals(row_interval, holes)
                if not free:
                    continue
                longest = max(free, key=lambda iv: iv.length)
                segments[row] = LocalSegment(row=row, interval=longest)
            # Demote candidates that are not contained in the segments of
            # every row they cover; repeat until stable.
            newly_demoted = False
            for index, cell in candidates.items():
                if index in demoted:
                    continue
                contained = True
                for r in cell.rows_covered():
                    seg_r = segments.get(r)
                    if seg_r is None or not seg_r.interval.contains_interval(
                        Interval(cell.x, cell.right)
                    ):
                        contained = False
                        break
                if not contained:
                    demoted.add(index)
                    newly_demoted = True
            if not newly_demoted:
                break

        region = LocalRegion(window=window, target=target)
        for segment in segments.values():
            region.add_segment(segment)
        for index, cell in candidates.items():
            if index not in demoted:
                region.add_local_cell(cell)

        region.finalize()
        region.density = layout.window_density(
            window.x_lo, window.x_hi, window.row_lo, window.row_hi
        )
        return region, scanned


def build_local_region(
    layout: Layout, target: Cell, window: Window
) -> Tuple[LocalRegion, int]:
    """Extract the localRegion of ``target`` inside ``window``.

    Returns the region together with the number of obstacle cells scanned
    (the work measure of step (c) consumed by the CPU cost model).  One-
    shot convenience over :class:`RegionBuilder`; the legalizer's retry
    ladder holds a builder per target to rescan only the window deltas.
    """
    return RegionBuilder(layout, target).build(window)


def region_transfer_words(region: LocalRegion) -> int:
    """Estimated number of 32-bit words transferred to the FPGA for a region.

    The FLEX host sends, per localCell, its position, width, height and
    segment membership (LCT + LCPT initial content), plus per-segment
    bounds and the target descriptor.  Used by the CPU–FPGA link model.
    """
    per_cell_words = 4
    per_segment_words = 3
    header_words = 8
    return (
        header_words
        + per_cell_words * len(region.local_cells)
        + per_segment_words * len(region.segments)
        + sum(len(lc.rows) for lc in region.local_cells)  # LSC entries
    )
