"""FOP: finding the optimal placement position of a target cell (step d).

FOP is the computational bottleneck of MGL (and the part FLEX offloads to
the FPGA).  For a given localRegion it traverses all candidate insertion
points (paper Fig. 3(e), the triple loop), and for each one runs cell
shifting followed by the displacement-curve pipeline to obtain the best
target position and its cost.  The insertion point with the overall
lowest cost wins.

The work performed per insertion point is recorded into
:class:`~repro.perf.counters.InsertionPointWork` entries so that the
CPU cost models and the FPGA cycle models can replay it.

The numeric inner loops (curve construction, minimization, snapping) are
delegated to a pluggable kernel backend (:mod:`repro.kernels`) selected
through :attr:`FOPConfig.backend`; the reference ``build_curves`` below
is the pure-Python oracle the backends must match bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geometry.cell import Cell
from repro.geometry.region import LocalRegion
from repro.kernels import BackendSpec, KernelBackend, resolve_backend
from repro.mgl.curves import (
    BreakpointPiece,
    left_shift_curve,
    right_shift_curve,
    target_curve,
)
from repro.mgl.insertion import (
    InsertionPoint,
    candidate_bottom_rows,
    enumerate_insertion_points,
)
from repro.mgl.shifting import OriginalShifter, ShiftOutcome
from repro.perf.counters import InsertionPointWork, TargetCellWork

_EPS = 1e-9


@dataclass
class FOPConfig:
    """Configuration of the FOP kernel.

    Attributes
    ----------
    shifter:
        The cell-shifting implementation: :class:`OriginalShifter` (the
        baseline multi-pass algorithm) or
        :class:`repro.core.sacs.SortAheadShifter` (FLEX).
    use_fwd_bwd_pipeline:
        Select the reorganised fwdtraverse/bwdtraverse curve evaluation
        (FLEX) instead of the original five-stage organisation.  Both
        produce identical optima.
    vertical_cost_factor:
        Cost of one row of vertical displacement expressed in site widths
        (rows are several sites tall in physical units), so that FOP
        trades off vertical against horizontal displacement consistently.
    max_points_per_row:
        Optional cap on the number of insertion points enumerated per
        candidate bottom row (used only by approximate baseline models).
    backend:
        Kernel backend evaluating the numeric hot paths (curve
        construction, minimization, snapping): a registered backend name
        (``"python"``, ``"numpy"``), a
        :class:`~repro.kernels.base.KernelBackend` instance, or ``None``
        for the default (``"python"``).  All backends are bit-for-bit
        equivalent; see :mod:`repro.kernels`.
    """

    shifter: object = field(default_factory=OriginalShifter)
    use_fwd_bwd_pipeline: bool = False
    vertical_cost_factor: float = 10.0
    max_points_per_row: Optional[int] = None
    backend: BackendSpec = None


@dataclass
class FOPResult:
    """Best placement found for a target cell inside its localRegion."""

    feasible: bool
    bottom_row: Optional[int] = None
    x: Optional[float] = None
    cost: float = math.inf
    insertion: Optional[InsertionPoint] = None
    outcome: Optional[ShiftOutcome] = None
    n_points_evaluated: int = 0
    n_points_feasible: int = 0


# ----------------------------------------------------------------------
def build_curves(
    region: LocalRegion,
    target: Cell,
    bottom_row: int,
    outcome: ShiftOutcome,
    vertical_cost_factor: float,
) -> Tuple[List[BreakpointPiece], float]:
    """Assemble the displacement curves of one insertion point.

    Returns the elementary breakpoint pieces plus the constant term (the
    target's vertical displacement and the shifted cells' constants).
    Costs are expressed in site widths.
    """
    vertical_cost = abs(bottom_row - target.gp_y) * vertical_cost_factor
    pieces, constant = target_curve(target.gp_x, vertical_cost)
    pieces = list(pieces)
    for idx, threshold in outcome.left_thresholds.items():
        cell = region.local_cells[idx]
        cell_pieces, cell_const = left_shift_curve(threshold, cell.x, cell.gp_x)
        pieces.extend(cell_pieces)
        constant += cell_const
    for idx, threshold in outcome.right_thresholds.items():
        cell = region.local_cells[idx]
        cell_pieces, cell_const = right_shift_curve(threshold, target.width, cell.x, cell.gp_x)
        pieces.extend(cell_pieces)
        constant += cell_const
    return pieces, constant


def _site_candidates(best_x: float, lo: float, hi: float) -> List[int]:
    """Floor/ceiling sites of the continuous optimum inside ``[lo, hi]``.

    Returns an empty list when no site fits in the interval.
    """
    site_lo = math.ceil(lo - _EPS)
    site_hi = math.floor(hi + _EPS)
    if site_lo > site_hi:
        return []
    return sorted({min(max(math.floor(best_x), site_lo), site_hi),
                   min(max(math.ceil(best_x), site_lo), site_hi)})


def _pick_site(
    candidates: Sequence[int], values: Sequence[float]
) -> Tuple[Optional[float], float]:
    """Select the lowest-value site candidate (ties keep the first)."""
    best: Tuple[Optional[float], float] = (None, math.inf)
    for x, value in zip(candidates, values):
        if value < best[1] - _EPS:
            best = (float(x), value)
    return best


def _snap_to_sites(
    backend: KernelBackend,
    curves: object,
    best_x: float,
    lo: float,
    hi: float,
) -> Tuple[Optional[float], float]:
    """Snap the continuous optimum to the site grid inside ``[lo, hi]``.

    Evaluates the summed curve exactly at the floor and ceiling sites of
    the continuous optimum and returns the better one.
    """
    candidates = _site_candidates(best_x, lo, hi)
    if not candidates:
        return None, math.inf
    values = backend.evaluate(curves, [float(x) for x in candidates])
    return _pick_site(candidates, values)


def evaluate_insertion_point(
    region: LocalRegion,
    target: Cell,
    insertion: InsertionPoint,
    config: FOPConfig,
    backend: Optional[KernelBackend] = None,
) -> Tuple[Optional[float], float, ShiftOutcome, InsertionPointWork]:
    """Evaluate one insertion point: shift, build curves, minimize, snap.

    Returns ``(best_x, best_cost, shift_outcome, work_record)`` with
    ``best_x = None`` when the point is infeasible.  ``backend`` lets
    callers pass an already-resolved kernel backend; otherwise
    ``config.backend`` is resolved per call.
    """
    backend = backend or resolve_backend(config.backend)
    outcome = config.shifter.shift(region, target, insertion)
    work = InsertionPointWork(
        n_local_cells=len(region.local_cells),
        n_subcells=region.total_subcells(),
        shift_passes=outcome.passes,
        shift_cell_visits=outcome.cell_visits,
        chain_left=len(outcome.left_thresholds),
        chain_right=len(outcome.right_thresholds),
        sort_size=outcome.sorted_cells,
        multirow_accesses=outcome.multirow_accesses,
        tall_accesses=outcome.tall_accesses,
        feasible=outcome.feasible,
    )
    if not outcome.feasible:
        return None, math.inf, outcome, work

    curves = backend.build_curves(
        region, target, insertion.bottom_row, outcome, config.vertical_cost_factor
    )
    evaluation = backend.minimize(
        curves,
        outcome.xt_lo,
        outcome.xt_hi,
        preferred_x=target.gp_x,
        fwd_bwd=config.use_fwd_bwd_pipeline,
    )
    work.n_breakpoints = evaluation.n_breakpoints
    work.n_merged_breakpoints = evaluation.n_merged
    best_x, best_cost = _snap_to_sites(
        backend, curves, evaluation.best_x, outcome.xt_lo, outcome.xt_hi
    )
    if best_x is None:
        work.feasible = False
        return None, math.inf, outcome, work
    return best_x, best_cost, outcome, work


def find_optimal_position(
    region: LocalRegion,
    target: Cell,
    config: Optional[FOPConfig] = None,
    work: Optional[TargetCellWork] = None,
) -> FOPResult:
    """Run FOP for one target cell inside its localRegion.

    ``work`` (when given) receives one :class:`InsertionPointWork` entry
    per evaluated insertion point; the caller owns the record.
    """
    config = config or FOPConfig()
    backend = resolve_backend(config.backend)
    config.shifter.prepare(region)
    result = FOPResult(feasible=False)

    points: List[InsertionPoint] = []
    for bottom_row in candidate_bottom_rows(region, target):
        points.extend(
            enumerate_insertion_points(
                region, target, bottom_row, max_points=config.max_points_per_row
            )
        )

    if getattr(backend, "supports_point_parallel", False) and backend.should_parallelize_fop(
        region, points
    ):
        # Intra-region parallelism (the paper's FOP-PE axis): the point
        # loop is chunked across worker processes; each chunk runs the
        # exact sequential stages below, and the reduction replays the
        # full per-point sequence in enumeration order, so results and
        # work records are bit-for-bit identical.  Outcomes are not
        # shipped back; the winner's is recomputed locally.
        scored = backend.evaluate_points_parallel(region, target, points, config)
    else:
        scored = evaluate_point_list(region, target, points, config, backend)

    # Reduction to the winning point, in enumeration order.
    for insertion, best_x, cost, outcome, ip_work in scored:
        result.n_points_evaluated += 1
        if work is not None:
            work.add_insertion_point(ip_work)
        if best_x is None:
            continue
        result.n_points_feasible += 1
        better = cost < result.cost - _EPS
        tie = abs(cost - result.cost) <= _EPS and result.x is not None and abs(
            best_x - target.gp_x
        ) < abs(result.x - target.gp_x)
        if better or tie:
            result.feasible = True
            result.cost = cost
            result.x = best_x
            result.bottom_row = insertion.bottom_row
            result.insertion = insertion
            result.outcome = outcome
    if result.feasible and result.outcome is None:
        # Parallel path: re-derive the winning point's shift outcome (the
        # shifting chains are pure functions of the region state).
        result.outcome = config.shifter.shift(region, target, result.insertion)
    return result


def evaluate_point_list(
    region: LocalRegion,
    target: Cell,
    points: Sequence[InsertionPoint],
    config: FOPConfig,
    backend: Optional[KernelBackend] = None,
) -> List[Tuple[InsertionPoint, Optional[float], float, Optional[ShiftOutcome], InsertionPointWork]]:
    """Run the FOP stages over an explicit insertion-point list.

    Returns one ``(insertion, best_x, best_cost, outcome, work)`` entry
    per point, in input order (``best_x`` is ``None`` for infeasible
    points).  This is the unit the multiprocess backend chunks across
    workers; the caller owns the reduction.
    """
    backend = backend or resolve_backend(config.backend)

    # Stage 1 — cell shifting for every candidate insertion point, in
    # enumeration order (the shifter's once-per-region counters and the
    # work records depend on this order).
    staged: List[Tuple[InsertionPoint, ShiftOutcome, InsertionPointWork]] = []
    for insertion in points:
        outcome = config.shifter.shift(region, target, insertion)
        ip_work = InsertionPointWork(
            n_local_cells=len(region.local_cells),
            n_subcells=region.total_subcells(),
            shift_passes=outcome.passes,
            shift_cell_visits=outcome.cell_visits,
            chain_left=len(outcome.left_thresholds),
            chain_right=len(outcome.right_thresholds),
            sort_size=outcome.sorted_cells,
            multirow_accesses=outcome.multirow_accesses,
            tall_accesses=outcome.tall_accesses,
            feasible=outcome.feasible,
        )
        staged.append((insertion, outcome, ip_work))

    # Stage 2 — curve construction and batched minimization over every
    # feasible point (one array pipeline on vectorized backends, a plain
    # loop on the reference).
    feasible = [entry for entry in staged if entry[1].feasible]
    curve_sets = [
        backend.build_curves(
            region, target, insertion.bottom_row, outcome, config.vertical_cost_factor
        )
        for insertion, outcome, _ in feasible
    ]
    evaluations = backend.minimize_batch(
        curve_sets,
        [(outcome.xt_lo, outcome.xt_hi) for _, outcome, _ in feasible],
        preferred_x=target.gp_x,
        fwd_bwd=config.use_fwd_bwd_pipeline,
    )

    # Stage 3 — batched snapping of every continuous optimum to the grid.
    candidate_lists: List[List[int]] = []
    for (_, outcome, ip_work), evaluation in zip(feasible, evaluations):
        ip_work.n_breakpoints = evaluation.n_breakpoints
        ip_work.n_merged_breakpoints = evaluation.n_merged
        candidate_lists.append(
            _site_candidates(evaluation.best_x, outcome.xt_lo, outcome.xt_hi)
        )
    value_lists = backend.evaluate_batch(
        curve_sets, [[float(x) for x in sites] for sites in candidate_lists]
    )

    snapped = iter(zip(candidate_lists, value_lists))
    results = []
    for insertion, outcome, ip_work in staged:
        if not outcome.feasible:
            results.append((insertion, None, math.inf, outcome, ip_work))
            continue
        candidates, values = next(snapped)
        best_x, cost = _pick_site(candidates, values)
        if best_x is None:
            ip_work.feasible = False
        results.append((insertion, best_x, cost, outcome, ip_work))
    return results
