"""Step (e) of the MGL flow: insert & update.

Commits the best position found by FOP: the target cell is placed at the
winning coordinates and every cell the winning insertion point pushes is
moved to its shifted position.  FLEX keeps this step on the CPU to avoid
streaming all updated positions back from the FPGA (paper Sec. 3.1.1).
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.geometry.region import LocalRegion
from repro.mgl.fop import FOPResult
from repro.mgl.shifting import shifted_positions, verify_no_overlap


def commit_placement(
    layout: Layout, region: LocalRegion, target: Cell, result: FOPResult
) -> Optional[int]:
    """Apply an FOP result to the layout.

    Returns the number of localCells whose position changed, or ``None``
    when the result could not be applied safely (the defensive overlap
    verification failed), in which case the caller should retry with a
    larger window.
    """
    if not result.feasible or result.x is None or result.bottom_row is None:
        return None
    assert result.outcome is not None and result.insertion is not None
    moves = shifted_positions(result.outcome, region, result.x, target.width)
    if not verify_no_overlap(region, moves, result.x, target.width, result.insertion):
        return None
    # Move the pushed localCells first, then insert the target.
    for idx, new_x in moves.items():
        layout.move_obstacle(region.local_cells[idx].cell, new_x)
    layout.mark_legalized(target, result.x, float(result.bottom_row))
    return len(moves)
