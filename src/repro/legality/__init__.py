"""Legality checking and placement-quality metrics.

:class:`LegalityChecker` verifies the hard constraints of the
mixed-cell-height legalization problem (paper Section 2.1):

* every cell lies inside the core area;
* every cell is aligned to the site grid and the row grid;
* even-height cells respect the power-rail (P/G) alignment constraint;
* no two cells overlap.

:class:`PlacementMetrics` computes the quality measures used in the
evaluation: per-cell Manhattan displacement (Eq. 1), the height-averaged
average displacement ``S_am`` (Eq. 2), and maximum displacement.
"""

from repro.legality.checker import LegalityChecker, LegalityReport, Violation, ViolationKind
from repro.legality.metrics import DisplacementStats, PlacementMetrics

__all__ = [
    "LegalityChecker",
    "LegalityReport",
    "Violation",
    "ViolationKind",
    "PlacementMetrics",
    "DisplacementStats",
]
