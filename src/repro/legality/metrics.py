"""Placement-quality metrics.

The primary quality measure of the paper (and of the ICCAD-2017 contest)
is the height-averaged average displacement ``S_am`` of Eq. 2:

.. math::

    S_{am} = \\frac{1}{H} \\sum_{h=1}^{H} \\frac{1}{|C_h|}
             \\sum_{c_i \\in C_h} \\delta_i

where ``H`` is the largest cell height, ``C_h`` the set of cells with
height ``h`` and ``\\delta_i`` the Manhattan displacement of cell ``i``
from its global placement position (Eq. 1).  Height classes that contain
no cells are skipped, matching the contest evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout


@dataclass
class DisplacementStats:
    """Aggregate displacement statistics of a legalized design."""

    average_displacement: float
    """Height-averaged average displacement ``S_am`` (Eq. 2), in row heights."""

    mean_displacement: float
    """Plain mean Manhattan displacement over all cells, in row heights."""

    max_displacement: float
    """Largest single-cell Manhattan displacement, in row heights."""

    total_displacement: float
    """Sum of Manhattan displacements, in row heights."""

    per_height: Dict[int, float]
    """Average displacement per cell-height class, in row heights."""

    num_cells: int
    """Number of movable cells included."""

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the scalar statistics (for reports / JSON)."""
        return {
            "average_displacement": self.average_displacement,
            "mean_displacement": self.mean_displacement,
            "max_displacement": self.max_displacement,
            "total_displacement": self.total_displacement,
            "num_cells": float(self.num_cells),
        }


class PlacementMetrics:
    """Computes displacement metrics of a layout.

    Parameters
    ----------
    row_height_units:
        Conversion factor applied to vertical displacements; with the unit
        grid used internally a row is one unit tall, so the default 1.0
        reports displacement in row heights — the unit used by Table 1
        ("AveDis" column, average displacement in row heights).
    site_width_units:
        Conversion factor applied to horizontal displacements, expressed
        in row heights per site.  ICCAD-2017 designs have sites much
        narrower than a row is tall; the benchmark generator records the
        ratio it used so that reported numbers land in the same numeric
        range as the paper's.
    """

    def __init__(self, *, row_height_units: float = 1.0, site_width_units: float = 0.1) -> None:
        if row_height_units <= 0 or site_width_units <= 0:
            raise ValueError("unit conversion factors must be positive")
        self.row_height_units = row_height_units
        self.site_width_units = site_width_units

    # ------------------------------------------------------------------
    def cell_displacement(self, cell: Cell) -> float:
        """Manhattan displacement of one cell (Eq. 1), in row heights."""
        return (
            abs(cell.x - cell.gp_x) * self.site_width_units
            + abs(cell.y - cell.gp_y) * self.row_height_units
        )

    def displacements(self, layout: Layout) -> np.ndarray:
        """Vector of displacements of all movable cells."""
        movable = layout.movable_cells()
        if not movable:
            return np.zeros(0)
        dx = np.array([abs(c.x - c.gp_x) for c in movable]) * self.site_width_units
        dy = np.array([abs(c.y - c.gp_y) for c in movable]) * self.row_height_units
        return dx + dy

    # ------------------------------------------------------------------
    def average_displacement(self, layout: Layout) -> float:
        """The ``S_am`` metric of Eq. 2, in row heights."""
        return self.compute(layout).average_displacement

    def compute(self, layout: Layout) -> DisplacementStats:
        """Compute all displacement statistics of a layout."""
        movable = layout.movable_cells()
        if not movable:
            return DisplacementStats(0.0, 0.0, 0.0, 0.0, {}, 0)
        disp = self.displacements(layout)
        heights = np.array([c.height for c in movable])
        max_height = int(heights.max())
        per_height: Dict[int, float] = {}
        class_means: List[float] = []
        for h in range(1, max_height + 1):
            mask = heights == h
            if not mask.any():
                continue
            mean_h = float(disp[mask].mean())
            per_height[h] = mean_h
            class_means.append(mean_h)
        s_am = float(np.mean(class_means)) if class_means else 0.0
        return DisplacementStats(
            average_displacement=s_am,
            mean_displacement=float(disp.mean()),
            max_displacement=float(disp.max()),
            total_displacement=float(disp.sum()),
            per_height=per_height,
            num_cells=len(movable),
        )

    # ------------------------------------------------------------------
    def compare(self, layouts: Sequence[Layout], labels: Optional[Sequence[str]] = None) -> str:
        """Format a small comparison table of several legalized layouts."""
        labels = list(labels) if labels is not None else [l.name for l in layouts]
        lines = [f"{'design':<24} {'AveDis':>10} {'MaxDis':>10} {'MeanDis':>10}"]
        for label, layout in zip(labels, layouts):
            stats = self.compute(layout)
            lines.append(
                f"{label:<24} {stats.average_displacement:>10.3f} "
                f"{stats.max_displacement:>10.3f} {stats.mean_displacement:>10.3f}"
            )
        return "\n".join(lines)
