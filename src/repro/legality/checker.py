"""Legality checker for mixed-cell-height placements.

The checker validates the constraints listed in paper Section 2.1.  It is
deliberately independent of the legalizers: tests use it as the ground
truth that every legalizer (MGL, FLEX, baselines) must satisfy.

Overlap checking uses a sweep over per-row buckets so that it stays
near-linear in the number of subcells; for the design sizes used in the
test-suite and benchmarks this is more than fast enough.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.geometry.row import pg_compatible


class ViolationKind(enum.Enum):
    """Categories of legality violations."""

    OUT_OF_BOUNDS = "out_of_bounds"
    OFF_SITE = "off_site"
    OFF_ROW = "off_row"
    PG_MISALIGNED = "pg_misaligned"
    OVERLAP = "overlap"
    NOT_LEGALIZED = "not_legalized"


@dataclass(frozen=True)
class Violation:
    """A single legality violation involving one or two cells."""

    kind: ViolationKind
    cell: int
    other: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.other is not None:
            return f"{self.kind.value}: cell {self.cell} vs {self.other} ({self.detail})"
        return f"{self.kind.value}: cell {self.cell} ({self.detail})"


@dataclass
class LegalityReport:
    """Result of a legality check."""

    violations: List[Violation] = field(default_factory=list)
    cells_checked: int = 0

    @property
    def legal(self) -> bool:
        """True when the placement satisfies all constraints."""
        return not self.violations

    def count(self, kind: ViolationKind) -> int:
        """Number of violations of a given kind."""
        return sum(1 for v in self.violations if v.kind is kind)

    def summary(self) -> str:
        """Human-readable one-line summary."""
        if self.legal:
            return f"legal ({self.cells_checked} cells checked)"
        per_kind = {k: self.count(k) for k in ViolationKind if self.count(k)}
        parts = ", ".join(f"{k.value}={n}" for k, n in per_kind.items())
        return f"ILLEGAL: {len(self.violations)} violations ({parts})"


class LegalityChecker:
    """Checks a :class:`~repro.geometry.Layout` for legality.

    Parameters
    ----------
    grid_tol:
        Tolerance when checking site/row alignment (positions are floats).
    require_all_legalized:
        When True (default), movable cells that are not marked legalized
        are reported as :data:`ViolationKind.NOT_LEGALIZED`.
    """

    def __init__(self, *, grid_tol: float = 1e-6, require_all_legalized: bool = True) -> None:
        self.grid_tol = grid_tol
        self.require_all_legalized = require_all_legalized

    # ------------------------------------------------------------------
    def check(self, layout: Layout) -> LegalityReport:
        """Run all checks and return a :class:`LegalityReport`."""
        report = LegalityReport()
        cells = [c for c in layout.cells if c.fixed or c.legalized or self.require_all_legalized]
        report.cells_checked = len(cells)
        for cell in cells:
            if not cell.fixed and not cell.legalized and self.require_all_legalized:
                report.violations.append(
                    Violation(ViolationKind.NOT_LEGALIZED, cell.index, detail="cell never legalized")
                )
                continue
            self._check_single(layout, cell, report)
        self._check_overlaps(layout, cells, report)
        return report

    # ------------------------------------------------------------------
    def _check_single(self, layout: Layout, cell: Cell, report: LegalityReport) -> None:
        if cell.x < -self.grid_tol or cell.right > layout.width + self.grid_tol:
            report.violations.append(
                Violation(
                    ViolationKind.OUT_OF_BOUNDS,
                    cell.index,
                    detail=f"x span [{cell.x:g},{cell.right:g}] outside [0,{layout.width:g}]",
                )
            )
        if cell.y < -self.grid_tol or cell.top > layout.height + self.grid_tol:
            report.violations.append(
                Violation(
                    ViolationKind.OUT_OF_BOUNDS,
                    cell.index,
                    detail=f"y span [{cell.y:g},{cell.top:g}] outside [0,{layout.height:g}]",
                )
            )
        if cell.fixed:
            # Fixed cells may be off-grid macros; only bounds are enforced.
            return
        if abs(cell.x - round(cell.x)) > self.grid_tol:
            report.violations.append(
                Violation(ViolationKind.OFF_SITE, cell.index, detail=f"x={cell.x!r} not on site grid")
            )
        if abs(cell.y - round(cell.y)) > self.grid_tol:
            report.violations.append(
                Violation(ViolationKind.OFF_ROW, cell.index, detail=f"y={cell.y!r} not on row grid")
            )
        else:
            row = int(round(cell.y))
            if not pg_compatible(cell.height, row):
                report.violations.append(
                    Violation(
                        ViolationKind.PG_MISALIGNED,
                        cell.index,
                        detail=f"height-{cell.height} cell anchored on row {row}",
                    )
                )

    # ------------------------------------------------------------------
    def _check_overlaps(self, layout: Layout, cells: Sequence[Cell], report: LegalityReport) -> None:
        # Bucket subcells per row, then sweep each row by x.  A pair is
        # reported at most once even when it overlaps in several rows.
        buckets: Dict[int, List[Cell]] = {}
        for cell in cells:
            if not (cell.fixed or cell.legalized):
                continue
            bottom = int(round(cell.y)) if not cell.fixed else int(cell.y // 1)
            top = bottom + cell.height if not cell.fixed else int(-(-cell.top // 1))
            for row in range(max(0, bottom), min(layout.num_rows, top)):
                buckets.setdefault(row, []).append(cell)
        reported: set[Tuple[int, int]] = set()
        for row, row_cells in buckets.items():
            # Zero-width cells occupy no sites and cannot overlap anything.
            row_cells = [c for c in row_cells if c.width > self.grid_tol]
            row_cells.sort(key=lambda c: c.x)
            for left, right in zip(row_cells, row_cells[1:]):
                if right.x < left.right - self.grid_tol:
                    key = (min(left.index, right.index), max(left.index, right.index))
                    if key in reported:
                        continue
                    reported.add(key)
                    report.violations.append(
                        Violation(
                            ViolationKind.OVERLAP,
                            key[0],
                            other=key[1],
                            detail=f"row {row}: overlap width {left.right - right.x:.3f}",
                        )
                    )

    # ------------------------------------------------------------------
    def total_overlap_area(self, layout: Layout) -> float:
        """Sum of pairwise overlap areas among obstacle cells.

        Useful as a progress metric during legalization: a finished run
        must report exactly zero.
        """
        total = 0.0
        seen: set[Tuple[int, int]] = set()
        for row in range(layout.num_rows):
            row_cells = layout.obstacles_in_row(row)
            for i, left in enumerate(row_cells):
                for right in row_cells[i + 1 :]:
                    if right.x >= left.right:
                        break
                    key = (min(left.index, right.index), max(left.index, right.index))
                    if key in seen:
                        continue
                    seen.add(key)
                    total += left.overlap_area(right)
        return total
