"""Structured spans: wall-clock telemetry as a JSONL event log.

The profiling story of :mod:`repro.perf` is hardware-independent work
counters; this module is its wall-clock complement.  A *span* times one
named phase (``with span("mgl.legalize"): ...``) and, when telemetry is
enabled, appends one JSON line to the event log when the phase ends.
``repro trace`` (and :func:`repro.perf.report.span_timeline`) fold a log
back into a per-phase timeline table.

Near-zero overhead is the design constraint: the spans are threaded
through hot paths (per ECO batch, per pool dispatch), so the *disabled*
path must cost one module-global load and one call — :func:`span`
returns a shared no-op span object and allocates nothing.  The guard
test in ``tests/test_obs.py`` holds the disabled path under 2% of the
dense-bench wall time.

Event-log schema (one JSON object per line)::

    {"ts": 1722.03,            # event wall-clock time (time.time())
     "ev": "span" | "event",   # timed phase vs point-in-time record
     "name": "eco.batch",      # dotted phase name
     "pid": 4242,              # emitting process (pool workers fork)
     "dur_s": 0.0123,          # spans only: phase duration
     "run": "f3a9...",         # correlation ids bound with context()
     "session": "s1",          # (only the ids actually bound appear)
     "batch": 7,
     "attrs": {...}}           # free-form per-event attributes

Correlation ids live in a :mod:`contextvars` variable, so they follow
the logical flow of control across threads started with a copied
context and into forked pool workers, and nest naturally: a service
session binds ``session``/``batch`` around ``engine.apply`` and every
span emitted below — engine, legalizer, kernel backend — carries them.

Telemetry must never change results or take a run down: emission
failures are swallowed, and nothing here is consulted by any placement
decision.  Enable programmatically with :func:`enable`, or for CLI /
bench runs via the ``REPRO_TRACE`` environment variable (a JSONL path),
read once at import time.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

#: Environment variable naming the JSONL span-log path.
ENV_VAR = "REPRO_TRACE"

#: Correlation ids of the current logical context, as a tuple of pairs
#: (tuples keep the ContextVar default immutable and copies cheap).
_ids: contextvars.ContextVar = contextvars.ContextVar("repro_obs_ids", default=())


class _Sink:
    """Where event lines go: an append-mode file or a writable stream.

    File sinks write through an ``O_APPEND`` descriptor with one
    ``os.write`` per event, so lines from forked pool workers interleave
    without tearing; stream sinks (tests) serialize under a lock.
    """

    def __init__(self, path: Optional[str] = None, stream: Any = None) -> None:
        if (path is None) == (stream is None):
            raise ValueError("sink needs exactly one of path or stream")
        self.path = os.fspath(path) if path is not None else None
        self._stream = stream
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        if self.path is not None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        if self._fd is not None:
            os.write(self._fd, line.encode("utf-8"))
        else:
            with self._lock:
                self._stream.write(line)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - double close
                pass
            self._fd = None


_sink: Optional[_Sink] = None


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------
def enable(path: Optional[str] = None, *, stream: Any = None) -> None:
    """Start emitting events to ``path`` (JSONL, appended) or ``stream``."""
    global _sink
    previous, _sink = _sink, _Sink(path, stream)
    if previous is not None:
        previous.close()


def disable() -> None:
    """Stop emitting; :func:`span` reverts to the shared no-op span."""
    global _sink
    previous, _sink = _sink, None
    if previous is not None:
        previous.close()


def enabled() -> bool:
    return _sink is not None


def _enable_from_env() -> None:
    path = os.environ.get(ENV_VAR)
    if path:
        try:
            enable(path)
        except OSError:  # unwritable path: run untraced rather than die
            pass


# ----------------------------------------------------------------------
# Correlation-id context
# ----------------------------------------------------------------------
def new_run_id() -> str:
    """A fresh short correlation id for one run/stream/session batch."""
    return uuid.uuid4().hex[:12]


class context:
    """Bind correlation ids (``run=``, ``session=``, ``batch=`` ...) for a scope.

    Reentrant and nestable; inner bindings shadow outer ones for their
    duration.  ``None`` values are skipped so call sites can pass
    optional ids unconditionally.
    """

    __slots__ = ("_ids", "_token")

    def __init__(self, **ids: Any) -> None:
        self._ids = ids
        self._token = None

    def __enter__(self) -> "context":
        merged = dict(_ids.get())
        for key, value in self._ids.items():
            if value is not None:
                merged[key] = value
        self._token = _ids.set(tuple(merged.items()))
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        _ids.reset(self._token)
        return False


def current_ids() -> Dict[str, Any]:
    """The correlation ids bound in the current logical context."""
    return dict(_ids.get())


# ----------------------------------------------------------------------
# Spans and events
# ----------------------------------------------------------------------
class _NullSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes discovered while the span runs."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        dur = time.perf_counter() - self._t0
        error = exc_type.__name__ if exc_type is not None else None
        _emit("span", self.name, dur_s=dur, attrs=self.attrs, error=error)
        return False


def span(name: str, **attrs: Any):
    """A context manager timing one named phase (no-op when disabled)."""
    if _sink is None:
        return _NULL_SPAN
    return _Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit one point-in-time record (no-op when disabled)."""
    if _sink is None:
        return
    _emit("event", name, attrs=attrs)


def _emit(
    kind: str,
    name: str,
    *,
    dur_s: Optional[float] = None,
    attrs: Optional[Dict[str, Any]] = None,
    error: Optional[str] = None,
) -> None:
    sink = _sink
    if sink is None:
        return
    record: Dict[str, Any] = {
        "ts": time.time(),
        "ev": kind,
        "name": name,
        "pid": os.getpid(),
    }
    record.update(_ids.get())
    if dur_s is not None:
        record["dur_s"] = dur_s
    if error is not None:
        record["error"] = error
    if attrs:
        record["attrs"] = attrs
    try:
        sink.write(record)
    except (OSError, ValueError, TypeError):
        pass  # telemetry never takes the run down


# ----------------------------------------------------------------------
# Reading a log back
# ----------------------------------------------------------------------
def read_events(path: str) -> Iterator[Dict[str, Any]]:
    """Iterate the events of a JSONL span log, skipping torn lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn concurrent append; drop it
            if isinstance(record, dict):
                yield record


def load_events(path: str) -> List[Dict[str, Any]]:
    return list(read_events(path))


_enable_from_env()
