"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` (:data:`REGISTRY`) aggregates operational
metrics across the whole process — the service daemon's handler
threads, the incremental engines behind its sessions, and the kernel
backends below them all write to it.  Three instrument kinds:

* **counters** — monotonically increasing totals
  (``inc("repro_requests_total", op="apply_deltas")``);
* **gauges** — last-written point-in-time values
  (``set_gauge("repro_inflight", 3)``);
* **histograms** — fixed-bucket latency distributions
  (``observe("repro_op_latency_seconds", 0.012, op="stats")``), with
  cumulative-bucket Prometheus semantics.

Every operation takes labels as keyword arguments; a metric series is
keyed by ``(name, sorted labels)``.  All mutation happens under one
lock, so the registry is safe under the daemon's thread-per-connection
model.

Fork model
----------
The multiprocess kernel backend forks persistent pool workers.  Each
worker inherits a *copy* of the registry at fork time, so workers call
:meth:`MetricsRegistry.reset` on startup and thereafter
:meth:`MetricsRegistry.drain` after each task: the drained delta rides
the existing result pipe back to the parent, which folds it in with
:meth:`MetricsRegistry.merge`.  Counters and histograms add; gauges
last-write-win.  Snapshots are plain JSON-safe dicts, so the same
merge path serves the service daemon's ``metrics`` op verbatim.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Tuple

#: Default latency buckets in seconds (upper bounds; +Inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe counters, gauges and fixed-bucket histograms."""

    #: Lock-discipline contract, enforced statically by ``repro lint``.
    _GUARDED_BY = {
        "_counters": "_lock",
        "_gauges": "_lock",
        "_hists": "_lock",
        "_hist_bounds": "_lock",
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        #: key -> [bucket counts (len(bounds) + 1 with +Inf), sum, count]
        self._hists: Dict[_Key, List[Any]] = {}
        self._hist_bounds: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def clear_gauge(self, name: str) -> None:
        """Drop every series of a gauge (e.g. per-session depths on close)."""
        with self._lock:
            for key in [k for k in self._gauges if k[0] == name]:
                del self._gauges[key]

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        key = _key(name, labels)
        with self._lock:
            bounds = self._hist_bounds.setdefault(name, buckets or DEFAULT_BUCKETS)
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = [[0] * (len(bounds) + 1), 0.0, 0]
            hist[0][bisect.bisect_left(bounds, value)] += 1
            hist[1] += value
            hist[2] += 1

    # ------------------------------------------------------------------
    # Snapshot / merge / drain (the fork and wire format)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy: lists of ``{name, labels, ...}`` series."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            hists = [
                {
                    "name": name,
                    "labels": dict(labels),
                    "bounds": list(self._hist_bounds[name]),
                    "buckets": list(hist[0]),
                    "sum": hist[1],
                    "count": hist[2],
                }
                for (name, labels), hist in sorted(self._hists.items())
            ]
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        if not snapshot:
            return
        with self._lock:
            for series in snapshot.get("counters", []):
                key = _key(series["name"], series["labels"])
                self._counters[key] = self._counters.get(key, 0.0) + series["value"]
            for series in snapshot.get("gauges", []):
                self._gauges[_key(series["name"], series["labels"])] = series["value"]
            for series in snapshot.get("histograms", []):
                name = series["name"]
                bounds = tuple(series["bounds"])
                key = _key(name, series["labels"])
                self._hist_bounds.setdefault(name, bounds)
                hist = self._hists.get(key)
                if hist is None:
                    hist = self._hists[key] = [[0] * (len(bounds) + 1), 0.0, 0]
                for i, count in enumerate(series["buckets"]):
                    hist[0][i] += count
                hist[1] += series["sum"]
                hist[2] += series["count"]

    def drain(self) -> Optional[Dict[str, Any]]:
        """Snapshot-and-reset; ``None`` when there is nothing to ship."""
        with self._lock:
            empty = not (self._counters or self._gauges or self._hists)
        if empty:
            return None
        snapshot = self.snapshot()
        self.reset()
        return snapshot

    def reset(self) -> None:
        """Forget everything (fork-time hygiene in pool workers)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._hist_bounds.clear()


#: The process-wide registry every instrumented layer writes to.
REGISTRY = MetricsRegistry()

# Module-level conveniences bound to the process registry.
inc = REGISTRY.inc
set_gauge = REGISTRY.set_gauge
clear_gauge = REGISTRY.clear_gauge
observe = REGISTRY.observe


# ----------------------------------------------------------------------
# Snapshot consumers
# ----------------------------------------------------------------------
def find_series(
    snapshot: Dict[str, Any], kind: str, name: str, /, **labels: Any
) -> Optional[Dict[str, Any]]:
    """The first ``kind`` series of ``name`` whose labels include ``labels``."""
    wanted = {k: str(v) for k, v in labels.items()}
    for series in snapshot.get(kind, []):
        if series["name"] != name:
            continue
        if all(series["labels"].get(k) == v for k, v in wanted.items()):
            return series
    return None


def histogram_quantile(series: Dict[str, Any], q: float) -> float:
    """Estimate a quantile from a snapshot histogram series.

    Linear interpolation inside the selected bucket, like Prometheus's
    ``histogram_quantile``; the +Inf bucket reports its lower bound.
    """
    count = series["count"]
    if count <= 0:
        return 0.0
    bounds = series["bounds"]
    rank = q * count
    seen = 0
    for i, bucket_count in enumerate(series["buckets"]):
        if bucket_count == 0:
            continue
        if seen + bucket_count >= rank:
            if i >= len(bounds):
                return float(bounds[-1]) if bounds else 0.0
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            return lo + (hi - lo) * max(0.0, rank - seen) / bucket_count
        seen += bucket_count
    return float(bounds[-1]) if bounds else 0.0


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    def label_str(labels: Dict[str, str], extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    for series in snapshot.get("counters", []):
        type_line(series["name"], "counter")
        lines.append(
            f"{series['name']}{label_str(series['labels'])} {series['value']:g}"
        )
    for series in snapshot.get("gauges", []):
        type_line(series["name"], "gauge")
        lines.append(
            f"{series['name']}{label_str(series['labels'])} {series['value']:g}"
        )
    for series in snapshot.get("histograms", []):
        name = series["name"]
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(series["bounds"], series["buckets"]):
            cumulative += count
            le = label_str(series["labels"], f'le="{bound:g}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        le = label_str(series["labels"], 'le="+Inf"')
        lines.append(f"{name}_bucket{le} {series['count']}")
        lines.append(f"{name}_sum{label_str(series['labels'])} {series['sum']:g}")
        lines.append(f"{name}_count{label_str(series['labels'])} {series['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
