"""Observability: structured wall-clock spans + a live metrics registry.

Two complementary instruments, both safe to leave in hot paths:

* :mod:`repro.obs.spans` — ``span("eco.batch")`` context managers that
  append JSONL events (with run/session/batch correlation ids) to a
  trace log when enabled, and collapse to a shared no-op object when
  not.  ``repro trace`` renders a log into a per-phase timeline.
* :mod:`repro.obs.metrics` — a process-wide, thread-safe registry of
  counters / gauges / fixed-bucket histograms with fork-merge semantics
  for the multiprocess worker pool and Prometheus text exposition.  The
  service daemon serves it live through the ``metrics`` op
  (``repro top``).

Telemetry is strictly observational: nothing in this package feeds back
into a placement decision, so every backend stays bit-for-bit identical
with telemetry on or off.
"""

from repro.obs import metrics
from repro.obs.spans import (
    ENV_VAR,
    context,
    current_ids,
    disable,
    enable,
    enabled,
    event,
    load_events,
    new_run_id,
    read_events,
    span,
)

__all__ = [
    "ENV_VAR",
    "context",
    "current_ids",
    "disable",
    "enable",
    "enabled",
    "event",
    "load_events",
    "metrics",
    "new_run_id",
    "read_events",
    "span",
]
