"""FOP processing-element cycle composition.

A FOP PE evaluates one insertion point at a time: it runs the cell-shift
engine (SACS PE or the original multi-pass engine), the breakpoint
sorter, and the traversal units (FWDT/BWDT PEs in Fig. 4).  This module
computes the cycles one PE spends on one insertion point under each
pipeline organisation; :mod:`repro.fpga.pipeline_sim` aggregates PEs,
regions and whole runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.pipeline import PipelineOrganization
from repro.fpga.sacs_dataflow import SacsCycleModel
from repro.fpga.sorter import StreamingBreakpointSorter
from repro.perf.counters import InsertionPointWork


@dataclass(frozen=True)
class FopPeParameters:
    """Cycle constants of one FOP PE."""

    # Original (multi-pass) cell shifting mapped on the FPGA.
    orig_shift_cycles_per_visit: float = 3.0
    """Cycles per subcell visit of the original engine: the data-dependent
    control flow and RAM accesses prevent an initiation interval of 1."""

    orig_multirow_penalty: float = 1.0
    orig_tall_penalty: float = 2.0
    orig_fixed_cycles: float = 16.0

    # Breakpoint stages.
    merge_fixed_cycles: float = 4.0
    slope_fixed_cycles: float = 4.0
    value_fixed_cycles: float = 6.0

    # Pipeline plumbing.
    memory_roundtrip_per_item: float = 1.0
    """Extra cycles per intermediate element written to and read back from
    RAM between operations of the normal / SACS-only organisations."""

    operation_start_overhead: float = 4.0
    """Control cycles to launch each of the six operations sequentially."""

    stream_fill_cycles: float = 20.0
    """Fill/flush latency of the fine-grained streaming chain."""

    per_ip_control_cycles: float = 40.0
    """Per-insertion-point control: reading the insertion-point RAM,
    feasibility checks, result collection and comparison."""


@dataclass
class FopPeModel:
    """Per-insertion-point cycle model of one FOP PE."""

    organisation: PipelineOrganization = PipelineOrganization.MULTI_GRANULARITY
    use_sacs: bool = True
    sacs_model: SacsCycleModel = field(default_factory=SacsCycleModel)
    bp_sorter: StreamingBreakpointSorter = field(default_factory=StreamingBreakpointSorter)
    params: FopPeParameters = field(default_factory=FopPeParameters)
    trace_used_sacs: bool = True
    """Whether the work counters were recorded by a SACS run; needed to
    translate visit counts when modeling the *other* shifting engine."""

    # ------------------------------------------------------------------
    def _estimated_original_visits(self, work: InsertionPointWork) -> float:
        """Original-engine subcell visits, estimated when the trace is SACS."""
        if not self.trace_used_sacs:
            return float(work.shift_cell_visits)
        # The original engine traverses every subcell once per pass per
        # phase; multi-row coupling adds extra passes roughly in proportion
        # to the multi-row share of the region.
        subcells = max(work.n_subcells, work.n_local_cells, 1)
        multirow_share = work.multirow_accesses / max(1, work.shift_cell_visits)
        passes_per_phase = 1.0 + min(1.0, 1.5 * multirow_share)
        return 2.0 * passes_per_phase * subcells

    def _sacs_work(self, work: InsertionPointWork) -> InsertionPointWork:
        """SACS-engine work record, derived when the trace used the original."""
        if self.trace_used_sacs:
            return work
        cells = max(1, work.n_local_cells)
        scale = (2.0 * cells) / max(1, work.shift_cell_visits)
        return InsertionPointWork(
            n_local_cells=work.n_local_cells,
            n_subcells=work.n_subcells,
            shift_passes=2,
            shift_cell_visits=2 * cells,
            chain_left=work.chain_left,
            chain_right=work.chain_right,
            n_breakpoints=work.n_breakpoints,
            n_merged_breakpoints=work.n_merged_breakpoints,
            sort_size=work.sort_size,
            multirow_accesses=int(round(work.multirow_accesses * scale)),
            tall_accesses=int(round(work.tall_accesses * scale)),
            feasible=work.feasible,
        )

    # ------------------------------------------------------------------
    def shift_cycles(self, work: InsertionPointWork) -> float:
        """Cycles of the cell-shift stage for one insertion point."""
        p = self.params
        if self.use_sacs:
            return self.sacs_model.shift_cycles(self._sacs_work(work))
        visits = self._estimated_original_visits(work)
        return (
            visits * p.orig_shift_cycles_per_visit
            + work.multirow_accesses * p.orig_multirow_penalty
            + work.tall_accesses * p.orig_tall_penalty
            + p.orig_fixed_cycles
        )

    def stage_cycles(self, work: InsertionPointWork) -> Dict[str, float]:
        """Cycles per FOP operation assuming sequential execution."""
        p = self.params
        n_bp = max(1, work.n_breakpoints)
        n_m = max(1, work.n_merged_breakpoints)
        return {
            "cell_shift": self.shift_cycles(work),
            "sort_bp": self.bp_sorter.cycles(n_bp),
            "merge_bp": n_bp + p.merge_fixed_cycles,
            "sum_slopesR": n_m + p.slope_fixed_cycles,
            "sum_slopesL": n_m + p.slope_fixed_cycles,
            "calculate_value": n_m + p.value_fixed_cycles,
        }

    # ------------------------------------------------------------------
    def insertion_point_cycles(self, work: InsertionPointWork) -> float:
        """Total PE cycles for one insertion point under the organisation."""
        p = self.params
        stages = self.stage_cycles(work)
        n_bp = max(1, work.n_breakpoints)
        n_m = max(1, work.n_merged_breakpoints)
        if self.organisation in (PipelineOrganization.NORMAL, PipelineOrganization.SACS_ONLY):
            roundtrip = p.memory_roundtrip_per_item * (2 * n_bp + 3 * n_m)
            return (
                sum(stages.values())
                + roundtrip
                + 6 * p.operation_start_overhead
                + p.per_ip_control_cycles
            )
        # Multi-granularity: cell shift, sort and fwdtraverse stream into
        # each other (fine-grained); bwdtraverse runs after the forward
        # sweep has seen every breakpoint (coarse-grained).
        fwd_chain = p.stream_fill_cycles + max(stages["cell_shift"], float(n_bp)) + 0.5 * n_bp
        bwd_chain = n_m + p.value_fixed_cycles + p.slope_fixed_cycles
        return fwd_chain + bwd_chain + p.per_ip_control_cycles
