"""Cycle-approximate behavioral model of the FLEX FPGA datapath.

The paper implements FLEX on an AMD Alveo U50 running at 285 MHz.  This
package substitutes that hardware with a behavioral model that consumes
the per-insertion-point work records produced by the legalizer and
returns cycle counts, organised exactly like the real datapath (Fig. 4):

* :mod:`repro.fpga.clock` — clock domains (the SACS tables run at twice
  the PE frequency when the bandwidth optimisation is on);
* :mod:`repro.fpga.bram` — BRAM banks, odd/even splitting, ping-pong
  buffers and the bank-count estimation used by the resource model;
* :mod:`repro.fpga.sorter` — the insertion + merge pre-sorter of SACS
  and the streaming breakpoint sorter;
* :mod:`repro.fpga.sacs_dataflow` — the SACS PE dataflow of Fig. 7 and
  its bandwidth optimisations (Fig. 9);
* :mod:`repro.fpga.pe` — FOP PE cycle composition per insertion point;
* :mod:`repro.fpga.pipeline_sim` — whole-run cycle estimation under the
  normal / SACS / multi-granularity organisations and PE parallelism
  (Fig. 8);
* :mod:`repro.fpga.link` — the host↔card transfer model;
* :mod:`repro.fpga.resources` — LUT/FF/BRAM/DSP estimation (Table 2).
"""

from repro.fpga.clock import ClockDomain
from repro.fpga.bram import BramBank, OddEvenRam, PingPongRam
from repro.fpga.sorter import InsertionSorter, MergeSorter, SacsPreSorter, StreamingBreakpointSorter
from repro.fpga.sacs_dataflow import SacsCycleModel, SacsCycleParameters
from repro.fpga.pe import FopPeModel
from repro.fpga.pipeline_sim import FpgaCycleParameters, FpgaEstimate, FpgaPipelineModel
from repro.fpga.link import HostLink
from repro.fpga.resources import ResourceEstimator, ResourceReport, ALVEO_U50

__all__ = [
    "ClockDomain",
    "BramBank",
    "OddEvenRam",
    "PingPongRam",
    "InsertionSorter",
    "MergeSorter",
    "SacsPreSorter",
    "StreamingBreakpointSorter",
    "SacsCycleModel",
    "SacsCycleParameters",
    "FopPeModel",
    "FpgaCycleParameters",
    "FpgaEstimate",
    "FpgaPipelineModel",
    "HostLink",
    "ResourceEstimator",
    "ResourceReport",
    "ALVEO_U50",
]
