"""Cycle model of the SACS PE dataflow (paper Fig. 7) and its optimisations.

For every processed localCell the SACS PE executes the stage sequence of
Fig. 7(b): fetch the next sorted cell (Cs→LCT), load its features
(LCT→PE), query the per-segment cursors (PE→CST), fetch the adjacent
cells (CST→LSC, LSC→LCT, LCT→PE), compute the new positions and write
them back (Cal pos, WB pos).  With pipelining the steady-state cost is a
couple of cycles per cell, *except* when a multi-row cell needs several
CST/LSC/LCT accesses in the same step — that is where BRAM bandwidth
becomes the bottleneck and where the odd/even split, the LCT duplication
and the doubled memory clock pay off (Fig. 9).

The model exposes three switches matching the Fig. 9 series:

* ``architecture_opt`` ("SACS-Ar"): the dedicated table dataflow with
  pipelining, instead of a straightforward sequential mapping;
* ``bandwidth_opt`` ("SACS-ImpBW"): odd/even RAM + LCT duplication +
  doubled memory clock;
* ``parallel_moves`` ("SACS-Paral"): left-move and right-move phases
  executed by two engine halves concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.counters import InsertionPointWork


@dataclass(frozen=True)
class SacsCycleParameters:
    """Cycle constants of the SACS PE."""

    base_cycles_per_cell: float = 3.0
    """Steady-state cycles per processed localCell for the plain mapping
    (sequential table accesses, no dedicated dataflow)."""

    arch_cycles_per_cell: float = 2.0
    """Steady-state cycles per cell with the dedicated dataflow of
    Fig. 7(c) (SACS-Ar)."""

    multirow_penalty: float = 0.3
    """Extra cycles per access to a cell spanning more than one row: with
    two read ports per bank, two or three adjacent rows are served in at
    most two cycles, so the penalty is small with or without the
    bandwidth optimisation."""

    tall_penalty: float = 2.2
    """Additional extra cycles per access to a cell taller than three rows
    without the bandwidth optimisation (more adjacent-row reads than the
    bank ports can serve per cycle)."""

    multirow_penalty_optimised: float = 0.3
    """Multi-row penalty with odd/even RAM, LCT duplication and the
    doubled memory clock (unchanged: it was not port-bound)."""

    tall_penalty_optimised: float = 0.45
    """Tall-cell penalty with the bandwidth optimisation — the Fig. 9
    benefit that scales with the proportion of >3-row cells."""

    parallel_move_speedup: float = 1.85
    """Effective speedup from running left-move and right-move in
    parallel (slightly below 2 because of the shared result collector)."""

    phase_fixed_cycles: float = 10.0
    """Pipeline fill/flush cycles per shifting phase."""


@dataclass(frozen=True)
class SacsCycleModel:
    """Computes SACS cell-shift cycles for one insertion point."""

    architecture_opt: bool = True
    bandwidth_opt: bool = True
    parallel_moves: bool = True
    params: SacsCycleParameters = SacsCycleParameters()

    # ------------------------------------------------------------------
    def shift_cycles(self, work: InsertionPointWork) -> float:
        """Cycles spent in the cell-shift stage for one insertion point.

        ``work`` must come from a SACS run (one visit per cell per phase);
        the pre-sort cycles are accounted separately per region by
        :class:`repro.fpga.pipeline_sim.FpgaPipelineModel`.
        """
        p = self.params
        per_cell = p.arch_cycles_per_cell if self.architecture_opt else p.base_cycles_per_cell
        if self.bandwidth_opt:
            multirow_pen = p.multirow_penalty_optimised
            tall_pen = p.tall_penalty_optimised
        else:
            multirow_pen = p.multirow_penalty
            tall_pen = p.tall_penalty
        visits = max(work.shift_cell_visits, work.n_local_cells)
        cycles = (
            visits * per_cell
            + work.multirow_accesses * multirow_pen
            + work.tall_accesses * tall_pen
            + 2 * p.phase_fixed_cycles
        )
        if self.parallel_moves:
            cycles = cycles / p.parallel_move_speedup
        return cycles

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Label matching the Fig. 9 series names."""
        if self.parallel_moves:
            return "SACS-Paral"
        if self.bandwidth_opt:
            return "SACS-ImpBW"
        if self.architecture_opt:
            return "SACS-Ar"
        return "SACS"

    @staticmethod
    def figure9_series() -> tuple:
        """The four cumulative configurations of Fig. 9, in order."""
        return (
            SacsCycleModel(architecture_opt=False, bandwidth_opt=False, parallel_moves=False),
            SacsCycleModel(architecture_opt=True, bandwidth_opt=False, parallel_moves=False),
            SacsCycleModel(architecture_opt=True, bandwidth_opt=True, parallel_moves=False),
            SacsCycleModel(architecture_opt=True, bandwidth_opt=True, parallel_moves=True),
        )
