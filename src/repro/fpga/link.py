"""Host <-> FPGA card transfer model.

FLEX streams each target's localRegion descriptor to the card and reads
back a small result record.  With ping-pong preloading the transfers of
all but the first region overlap compute; the timeline model decides
which transfers are visible — this module only converts word counts into
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostLink:
    """A PCIe-like host link.

    Attributes
    ----------
    bandwidth_gbps:
        Effective payload bandwidth in Gbit/s.
    latency_us:
        Per-transfer latency (descriptor setup, doorbell, completion).
    word_bytes:
        Size of one descriptor word.
    """

    bandwidth_gbps: float = 12.0
    latency_us: float = 5.0
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    def transfer_seconds(self, words: int) -> float:
        """Time to move ``words`` descriptor words across the link."""
        if words <= 0:
            return 0.0
        payload_bits = words * self.word_bytes * 8
        return self.latency_us * 1e-6 + payload_bits / (self.bandwidth_gbps * 1e9)

    def batched_transfer_seconds(self, words: int, batch_words: int = 1024) -> float:
        """Time when the words are moved in fixed-size batches."""
        if words <= 0:
            return 0.0
        batches = max(1, -(-words // batch_words))
        payload_bits = words * self.word_bytes * 8
        return batches * self.latency_us * 1e-6 + payload_bits / (self.bandwidth_gbps * 1e9)
