"""Clock domains of the FLEX design.

The PE logic runs at the kernel clock (285 MHz on the Alveo U50); when
the SACS bandwidth optimisation is enabled the LCT/LCPT/CST/LSC tables
live in a domain running at twice that frequency, with split/merge
registers crossing between the domains (paper Sec. 4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockDomain:
    """A clock domain characterised by its frequency."""

    name: str
    frequency_mhz: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to seconds."""
        return cycles / (self.frequency_mhz * 1e6)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to cycles of this domain."""
        return seconds * self.frequency_mhz * 1e6

    def convert_cycles_to(self, cycles: float, other: "ClockDomain") -> float:
        """Express a cycle count of this domain in cycles of another domain."""
        return cycles * other.frequency_mhz / self.frequency_mhz


def pe_clock(frequency_mhz: float = 285.0) -> ClockDomain:
    """The PE (kernel) clock domain."""
    return ClockDomain("pe", frequency_mhz)


def memory_clock(frequency_mhz: float = 285.0, multiplier: float = 2.0) -> ClockDomain:
    """The table clock domain (2x the PE clock with the bandwidth optimisation)."""
    return ClockDomain("mem", frequency_mhz * multiplier)
