"""On-chip memory models: BRAM banks, odd/even splitting, ping-pong buffers.

The SACS dataflow keeps all its tables (LCT, LCPT, CST, LSC, Cs) in BRAM.
Accessing a multi-row cell touches one entry per covered row in CST/LSC,
which can exceed the ports of a single bank and stall the PE — the
bottleneck the bandwidth optimisations of Sec. 4.3.2 attack:

* **odd/even splitting** puts odd and even rows in separate banks,
  doubling the entries reachable per cycle;
* **ping-pong buffering** initialises the tables of the next region while
  the current one is processed, hiding initialisation latency;
* **a doubled memory clock** lets the tables serve two PE-cycle's worth
  of requests per PE cycle;
* **LCT duplication** doubles LCT read bandwidth outright (its content is
  not row-dependent).

These classes provide both the cycle arithmetic used by
:mod:`repro.fpga.sacs_dataflow` and the BRAM36 bank counting used by
:mod:`repro.fpga.resources`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Capacity of one BRAM36 block in bits (36 Kib).
BRAM36_BITS = 36 * 1024


@dataclass(frozen=True)
class BramBank:
    """A logical memory implemented in BRAM.

    Attributes
    ----------
    name:
        Table name (LCT, LCPT, CST, LSC, ...).
    depth:
        Number of entries.
    width_bits:
        Bits per entry.
    read_ports / write_ports:
        Simultaneous accesses per cycle (BRAM36 is true dual-port; the
        design typically configures one read and one write port or two
        read ports).
    """

    name: str
    depth: int
    width_bits: int
    read_ports: int = 2
    write_ports: int = 1

    def bram36_count(self) -> int:
        """Number of physical BRAM36 blocks needed for this logical memory."""
        if self.depth <= 0 or self.width_bits <= 0:
            return 0
        # BRAM36 can be configured as 1Kx36, 2Kx18, 4Kx9 ...; approximate by
        # capacity with a width-granularity penalty.
        width_blocks = math.ceil(self.width_bits / 36)
        depth_blocks = math.ceil(self.depth / 1024)
        capacity_blocks = math.ceil(self.depth * self.width_bits / BRAM36_BITS)
        return max(capacity_blocks, width_blocks, min(width_blocks * depth_blocks, 4 * capacity_blocks))

    def access_cycles(self, n_parallel_reads: int) -> int:
        """Cycles to serve ``n_parallel_reads`` simultaneous read requests."""
        if n_parallel_reads <= 0:
            return 0
        return math.ceil(n_parallel_reads / self.read_ports)


@dataclass(frozen=True)
class OddEvenRam:
    """A table split into odd-row and even-row banks (Sec. 4.3.2).

    Requests to adjacent rows hit different banks, so up to
    ``2 * read_ports`` adjacent-row entries are served per cycle.
    """

    inner: BramBank

    def bram36_count(self) -> int:
        """Both halves together need roughly the same capacity plus padding."""
        half = BramBank(
            name=self.inner.name,
            depth=math.ceil(self.inner.depth / 2),
            width_bits=self.inner.width_bits,
            read_ports=self.inner.read_ports,
            write_ports=self.inner.write_ports,
        )
        return 2 * half.bram36_count()

    def access_cycles(self, n_adjacent_rows: int) -> int:
        """Cycles to read entries of ``n_adjacent_rows`` consecutive rows."""
        if n_adjacent_rows <= 0:
            return 0
        return math.ceil(n_adjacent_rows / (2 * self.inner.read_ports))


@dataclass(frozen=True)
class PingPongRam:
    """Two alternating copies of a table so that the next localRegion can be
    loaded while the current one is processed (Fig. 4 Ping/Pong RAM)."""

    inner: BramBank

    def bram36_count(self) -> int:
        return 2 * self.inner.bram36_count()

    def initialisation_hidden(self) -> bool:
        """Initialisation of the inactive copy never stalls the PE."""
        return True

    def access_cycles(self, n_parallel_reads: int) -> int:
        return self.inner.access_cycles(n_parallel_reads)


# ----------------------------------------------------------------------
# Default table sizing of one FOP PE (used by the resource estimator)
# ----------------------------------------------------------------------
def default_sacs_tables(max_local_cells: int = 512, max_rows: int = 64) -> dict:
    """Nominal table configuration of one SACS PE.

    ``max_local_cells`` bounds the number of localCells a region may hold
    on the card; ``max_rows`` bounds the number of rows of a window.
    """
    return {
        "LCT": BramBank("LCT", depth=max_local_cells, width_bits=96),
        "LCPT": PingPongRam(BramBank("LCPT", depth=max_local_cells, width_bits=32)),
        "CST": PingPongRam(BramBank("CST", depth=max_rows, width_bits=32)),
        "LSC": OddEvenRam(BramBank("LSC", depth=max_local_cells * 2, width_bits=16)),
        "Cs": BramBank("Cs", depth=max_local_cells, width_bits=16),
        "InsertionPointRAM": BramBank("InsertionPointRAM", depth=2048, width_bits=64),
    }
