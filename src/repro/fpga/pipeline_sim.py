"""Whole-run FPGA cycle estimation.

:class:`FpgaPipelineModel` aggregates the per-insertion-point cycle model
of :class:`~repro.fpga.pe.FopPeModel` over a recorded
:class:`~repro.perf.counters.LegalizationTrace`:

* insertion points of one localRegion are distributed over the configured
  number of FOP PEs (two PEs process two insertion points of the *same*
  region concurrently and synchronise with a few-cycle comparison, which
  is why FLEX scales without the heavy region-level synchronisation of
  the GPU baseline — paper Sec. 5.4);
* the SACS Ahead Sorter runs once per region and overlaps the first
  insertion point's evaluation only partially, so its cycles are added
  per region;
* region loading into the ping-pong BRAMs is hidden behind the previous
  region's compute and therefore does not appear here (it is part of the
  host/transfer timeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import FlexConfig
from repro.core.pipeline import PipelineOrganization
from repro.fpga.clock import ClockDomain, pe_clock
from repro.fpga.pe import FopPeModel, FopPeParameters
from repro.fpga.sacs_dataflow import SacsCycleModel
from repro.fpga.sorter import SacsPreSorter
from repro.perf.counters import LegalizationTrace, TargetCellWork


@dataclass(frozen=True)
class FpgaCycleParameters:
    """Run-level cycle constants (beyond the per-PE constants)."""

    pe_sync_cycles: float = 5.0
    """Cycles to compare the displacement results of the parallel FOP PEs
    and keep the smaller one (paper Sec. 5.4: "several clock cycles")."""

    pe_load_imbalance: float = 0.06
    """Fractional cycle overhead from uneven insertion-point splitting
    across PEs."""

    region_setup_cycles: float = 40.0
    """Per-region control: target descriptor decode, table pointer swap
    (ping/pong), result writeback to the host-visible buffer."""

    presort_overlap_fraction: float = 0.35
    """Fraction of the Ahead Sorter's cycles hidden under the first
    insertion points of the region (the sorter streams its output)."""


@dataclass
class FpgaEstimate:
    """FPGA cycle estimate of a whole legalization run."""

    total_cycles: float = 0.0
    per_target_cycles: Dict[int, float] = field(default_factory=dict)
    stage_cycles: Dict[str, float] = field(default_factory=dict)
    presort_cycles: float = 0.0
    sync_cycles: float = 0.0
    clock: ClockDomain = field(default_factory=pe_clock)

    @property
    def total_seconds(self) -> float:
        """FPGA busy time in seconds."""
        return self.clock.cycles_to_seconds(self.total_cycles)

    def per_target_seconds(self) -> Dict[int, float]:
        return {k: self.clock.cycles_to_seconds(v) for k, v in self.per_target_cycles.items()}

    def stage_fraction(self, stage: str) -> float:
        total = sum(self.stage_cycles.values())
        if total <= 0:
            return 0.0
        return self.stage_cycles.get(stage, 0.0) / total


class FpgaPipelineModel:
    """Estimates FPGA cycles of a legalization run under a configuration."""

    def __init__(
        self,
        config: Optional[FlexConfig] = None,
        *,
        params: Optional[FpgaCycleParameters] = None,
        pe_params: Optional[FopPeParameters] = None,
        trace_used_sacs: bool = True,
    ) -> None:
        self.config = config or FlexConfig()
        self.params = params or FpgaCycleParameters()
        self.pe_params = pe_params or FopPeParameters()
        self.trace_used_sacs = trace_used_sacs
        self.presorter = SacsPreSorter()
        self._pe_model = FopPeModel(
            organisation=self.config.pipeline,
            use_sacs=self.config.use_sacs,
            sacs_model=SacsCycleModel(
                architecture_opt=self.config.sacs_architecture_opt,
                bandwidth_opt=self.config.sacs_bandwidth_opt,
                parallel_moves=self.config.sacs_parallel_moves,
            ),
            params=self.pe_params,
            trace_used_sacs=trace_used_sacs,
        )

    # ------------------------------------------------------------------
    def target_cycles(self, work: TargetCellWork) -> Dict[str, float]:
        """Cycle breakdown of one target cell's FOP execution."""
        p = self.params
        ip_cycles = [self._pe_model.insertion_point_cycles(ip) for ip in work.insertion_points]
        compute = sum(ip_cycles)
        parallelism = max(1, self.config.fop_pe_parallelism)
        if parallelism > 1 and ip_cycles:
            compute = compute / parallelism * (1.0 + p.pe_load_imbalance)
        sync = p.pe_sync_cycles * math.ceil(len(ip_cycles) / parallelism) if parallelism > 1 else 0.0

        presort = 0.0
        if self.config.use_sacs:
            sort_items = sum(ip.sort_size for ip in work.insertion_points)
            if sort_items == 0 and work.insertion_points:
                sort_items = work.n_local_cells
            presort = self.presorter.cycles(sort_items) * (1.0 - p.presort_overlap_fraction)

        total = compute + sync + presort + p.region_setup_cycles * (1 + work.window_retries)
        return {"compute": compute, "sync": sync, "presort": presort, "total": total}

    # ------------------------------------------------------------------
    def estimate(self, trace: LegalizationTrace) -> FpgaEstimate:
        """Estimate the FPGA cycles of a whole run."""
        estimate = FpgaEstimate(clock=pe_clock(self.config.fpga_clock_mhz))
        stage_totals: Dict[str, float] = {}
        for work in trace.targets:
            breakdown = self.target_cycles(work)
            estimate.per_target_cycles[work.cell_index] = breakdown["total"]
            estimate.total_cycles += breakdown["total"]
            estimate.presort_cycles += breakdown["presort"]
            estimate.sync_cycles += breakdown["sync"]
            for ip in work.insertion_points:
                for stage, cycles in self._pe_model.stage_cycles(ip).items():
                    stage_totals[stage] = stage_totals.get(stage, 0.0) + cycles
        if estimate.presort_cycles:
            stage_totals["presort"] = estimate.presort_cycles
        estimate.stage_cycles = stage_totals
        return estimate

    # ------------------------------------------------------------------
    def speedup_ladder(self, trace: LegalizationTrace) -> Dict[str, float]:
        """Normalized speedups of the Fig. 8 optimisation ladder.

        Returns cycles normalised to the normal-pipeline configuration for:
        ``normal`` → ``sacs`` → ``multi-granularity`` → ``2 FOP PEs``.
        """
        ladder = {
            "normal-pipeline": self.config.with_updates(
                pipeline=PipelineOrganization.NORMAL,
                use_sacs=False,
                fop_pe_parallelism=1,
            ),
            "sacs": self.config.with_updates(
                pipeline=PipelineOrganization.SACS_ONLY,
                use_sacs=True,
                fop_pe_parallelism=1,
            ),
            "multi-granularity": self.config.with_updates(
                pipeline=PipelineOrganization.MULTI_GRANULARITY,
                use_sacs=True,
                fop_pe_parallelism=1,
            ),
            "2-parallel-fop-pe": self.config.with_updates(
                pipeline=PipelineOrganization.MULTI_GRANULARITY,
                use_sacs=True,
                fop_pe_parallelism=2,
            ),
        }
        cycles = {}
        for label, cfg in ladder.items():
            model = FpgaPipelineModel(
                cfg,
                params=self.params,
                pe_params=self.pe_params,
                trace_used_sacs=self.trace_used_sacs,
            )
            cycles[label] = model.estimate(trace).total_cycles
        base = cycles["normal-pipeline"]
        return {label: base / c if c > 0 else float("inf") for label, c in cycles.items()}
