"""FPGA resource estimation (paper Table 2).

The estimator composes per-module resource figures into the totals of a
FLEX configuration.  The module-level numbers are calibrated so that the
1-PE and 2-PE totals match the published Table 2 utilisation on the
Alveo U50; what the model adds over simply quoting the table is the
compositional structure (shared infrastructure vs. per-PE cost, the
non-duplicated region sorter) and the ability to extrapolate to higher
PE counts for the scalability discussion of Sec. 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import FlexConfig


@dataclass(frozen=True)
class ResourceVector:
    """LUT / FF / BRAM / DSP quadruple."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def scaled(self, factor: int) -> "ResourceVector":
        return ResourceVector(
            self.luts * factor, self.ffs * factor, self.brams * factor, self.dsps * factor
        )

    def utilisation(self, available: "ResourceVector") -> Dict[str, float]:
        return {
            "luts": self.luts / available.luts if available.luts else 0.0,
            "ffs": self.ffs / available.ffs if available.ffs else 0.0,
            "brams": self.brams / available.brams if available.brams else 0.0,
            "dsps": self.dsps / available.dsps if available.dsps else 0.0,
        }

    def fits(self, available: "ResourceVector") -> bool:
        return (
            self.luts <= available.luts
            and self.ffs <= available.ffs
            and self.brams <= available.brams
            and self.dsps <= available.dsps
        )


#: Available resources of the AMD Alveo U50 (Table 2, "Available" row).
ALVEO_U50 = ResourceVector(luts=871_680, ffs=1_743_360, brams=1_344, dsps=5_952)


#: Shared infrastructure: controller, host interface, collector,
#: synchronisation module and the region pre-sorter (not duplicated when
#: the PE count grows — paper Sec. 5.4).
SHARED_MODULES: Dict[str, ResourceVector] = {
    "controller": ResourceVector(luts=6_400, ffs=9_800, brams=6, dsps=0),
    "host_interface": ResourceVector(luts=11_200, ffs=16_400, brams=18, dsps=0),
    "region_presorter": ResourceVector(luts=8_642, ffs=9_049, brams=8, dsps=0),
    "synchronisation_module": ResourceVector(luts=2_300, ffs=3_100, brams=2, dsps=0),
    "result_collector": ResourceVector(luts=4_500, ffs=4_700, brams=10, dsps=4),
}

#: Per-FOP-PE modules (duplicated with the PE count).
PER_PE_MODULES: Dict[str, ResourceVector] = {
    "sacs_pe": ResourceVector(luts=9_800, ffs=8_400, brams=0, dsps=2),
    "sacs_tables": ResourceVector(luts=1_600, ffs=2_100, brams=228, dsps=0),
    "insertion_point_module": ResourceVector(luts=3_195, ffs=2_877, brams=64, dsps=0),
    "breakpoint_sorter": ResourceVector(luts=2_400, ffs=3_200, brams=12, dsps=0),
    "fwdt_pe": ResourceVector(luts=4_600, ffs=3_800, brams=20, dsps=1),
    "bwdt_pe": ResourceVector(luts=5_200, ffs=3_900, brams=23, dsps=1),
}


@dataclass
class ResourceReport:
    """Resource totals of a configuration plus the published reference."""

    config_label: str
    totals: ResourceVector
    available: ResourceVector = ALVEO_U50
    per_module: Dict[str, ResourceVector] = field(default_factory=dict)

    def utilisation(self) -> Dict[str, float]:
        return self.totals.utilisation(self.available)

    def fits(self) -> bool:
        return self.totals.fits(self.available)

    def as_row(self) -> List[object]:
        return [self.config_label, self.totals.luts, self.totals.ffs, self.totals.brams, self.totals.dsps]


class ResourceEstimator:
    """Estimates the FPGA resources of a FLEX configuration."""

    def __init__(
        self,
        shared: Optional[Dict[str, ResourceVector]] = None,
        per_pe: Optional[Dict[str, ResourceVector]] = None,
        available: ResourceVector = ALVEO_U50,
    ) -> None:
        self.shared = dict(shared or SHARED_MODULES)
        self.per_pe = dict(per_pe or PER_PE_MODULES)
        self.available = available

    # ------------------------------------------------------------------
    def estimate(self, config: FlexConfig) -> ResourceReport:
        """Resource totals of the given configuration."""
        per_module: Dict[str, ResourceVector] = {}
        total = ResourceVector()
        for name, vec in self.shared.items():
            per_module[name] = vec
            total = total + vec
        pe_total = ResourceVector()
        for name, vec in self.per_pe.items():
            pe_total = pe_total + vec
        if not config.sacs_bandwidth_opt:
            # Without odd/even splitting and LCT duplication the tables need
            # fewer BRAM banks (but the PE stalls more often).
            reduced = ResourceVector(
                self.per_pe["sacs_tables"].luts,
                self.per_pe["sacs_tables"].ffs,
                int(self.per_pe["sacs_tables"].brams * 0.6),
                self.per_pe["sacs_tables"].dsps,
            )
            pe_total = pe_total + reduced + self.per_pe["sacs_tables"].scaled(-1)
        per_module["fop_pe_cluster"] = pe_total.scaled(config.fop_pe_parallelism)
        total = total + per_module["fop_pe_cluster"]
        return ResourceReport(
            config_label=f"{config.fop_pe_parallelism} parallelism of FOP PE",
            totals=total,
            available=self.available,
            per_module=per_module,
        )

    # ------------------------------------------------------------------
    def table2(self, base_config: Optional[FlexConfig] = None) -> List[ResourceReport]:
        """Rows of paper Table 2: no parallelism and 2-parallelism of FOP PE."""
        base = base_config or FlexConfig()
        return [
            self.estimate(base.with_updates(fop_pe_parallelism=1)),
            self.estimate(base.with_updates(fop_pe_parallelism=2)),
        ]

    def max_pe_count(self, base_config: Optional[FlexConfig] = None) -> int:
        """Largest PE count that still fits on the device (Sec. 5.4)."""
        base = base_config or FlexConfig()
        count = 1
        while count < 64:
            report = self.estimate(base.with_updates(fop_pe_parallelism=count + 1))
            if not report.fits():
                break
            count += 1
        return count
