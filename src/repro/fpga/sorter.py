"""Hardware sorter models.

FLEX uses two kinds of sorters (paper Sec. 4.3.1, citing the Vitis
database library primitives):

* the **Ahead Sorter** pre-sorts a region's localCells by x before SACS
  runs; it combines streaming insertion sorters (cheap, O(n) cycles for
  nearly-sorted short blocks) with a merge-sorter tree that merges the
  sorted blocks, and runs once per localRegion (~10 % of FOP runtime,
  Fig. 6(g));
* the **streaming breakpoint sorter** inside the FOP PE sorts the
  breakpoint pieces emitted by cell shifting with an initiation interval
  of one element per cycle, enabling the fine-grained pipeline into
  ``fwdtraverse``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InsertionSorter:
    """A streaming insertion sorter of bounded capacity.

    Accepts one element per cycle and emits the sorted block after a
    small flush latency; ideal for short, nearly-sorted sequences.
    """

    capacity: int = 64
    flush_cycles: int = 4

    def cycles(self, n: int) -> float:
        """Cycles to sort ``n`` elements (capacity-bounded blocks)."""
        if n <= 0:
            return 0.0
        blocks = math.ceil(n / self.capacity)
        return float(n + blocks * self.flush_cycles)

    def lut_cost(self) -> int:
        """Approximate LUT usage (compare-and-shift network)."""
        return 28 * self.capacity

    def ff_cost(self) -> int:
        return 40 * self.capacity


@dataclass(frozen=True)
class MergeSorter:
    """A k-way merge sorter tree merging pre-sorted blocks."""

    ways: int = 4
    per_element_cycles: float = 1.0
    setup_cycles: int = 8

    def cycles(self, n: int, blocks: int) -> float:
        """Cycles to merge ``blocks`` sorted blocks totalling ``n`` elements."""
        if n <= 0 or blocks <= 1:
            return 0.0
        levels = math.ceil(math.log(max(2, blocks), self.ways))
        return float(levels * (n * self.per_element_cycles + self.setup_cycles))

    def lut_cost(self) -> int:
        return 450 * self.ways

    def ff_cost(self) -> int:
        return 520 * self.ways


@dataclass(frozen=True)
class SacsPreSorter:
    """The Ahead Sorter: insertion sorters feeding a merge-sorter tree."""

    insertion: InsertionSorter = InsertionSorter()
    merge: MergeSorter = MergeSorter()

    def cycles(self, n: int) -> float:
        """Cycles to pre-sort ``n`` localCells by x."""
        if n <= 0:
            return 0.0
        blocks = math.ceil(n / self.insertion.capacity)
        return self.insertion.cycles(n) + self.merge.cycles(n, blocks)

    def lut_cost(self) -> int:
        return self.insertion.lut_cost() + self.merge.lut_cost()

    def ff_cost(self) -> int:
        return self.insertion.ff_cost() + self.merge.ff_cost()


@dataclass(frozen=True)
class StreamingBreakpointSorter:
    """The in-PE breakpoint sorter with an initiation interval of 1."""

    initiation_interval: float = 1.0
    fixed_cycles: int = 6

    def cycles(self, n: int) -> float:
        """Cycles to stream-sort ``n`` breakpoints."""
        if n <= 0:
            return 0.0
        return n * self.initiation_interval + self.fixed_cycles

    def lut_cost(self) -> int:
        return 1800

    def ff_cost(self) -> int:
        return 2600
