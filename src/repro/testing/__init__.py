"""Importable test helpers shared by ``tests/`` and ``benchmarks/``.

Historically these lived in ``tests/conftest.py`` and test modules did
``from conftest import ...`` — which breaks as soon as more than one
``conftest.py`` is importable (Python resolves the bare module name to
whichever directory pytest put on ``sys.path`` first, e.g.
``benchmarks/conftest.py``).  Keeping the helpers inside the package
makes them importable from anywhere with a plain absolute import and
lets the two suites be collected together.

The pytest *fixtures* stay in the respective ``conftest.py`` files; only
plain helper functions live here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.benchgen import DesignSpec, generate_design
from repro.geometry import Cell, Layout, Window
from repro.mgl.local_region import build_local_region

__all__ = ["make_layout", "add_target", "region_for", "small_design"]


def make_layout(
    num_rows: int = 8,
    num_sites: int = 60,
    cells: Sequence[Tuple[float, float, float, int]] = (),
    *,
    legalized: bool = True,
    name: str = "test",
) -> Layout:
    """Build a layout from ``(x, y, width, height)`` tuples.

    All cells are created with their global-placement position equal to
    the given position and (by default) already legalized, so they act as
    obstacles for localRegion extraction.
    """
    layout = Layout(num_rows, num_sites, name=name)
    for i, (x, y, w, h) in enumerate(cells):
        cell = Cell(index=i, width=w, height=h, gp_x=x, gp_y=y, x=x, y=y, legalized=legalized)
        layout.add_cell(cell)
    layout.rebuild_index()
    return layout


def add_target(layout: Layout, x: float, y: float, w: float, h: int) -> Cell:
    """Append an unlegalized target cell to a layout."""
    cell = Cell(index=len(layout.cells), width=w, height=h, gp_x=x, gp_y=y, x=x, y=y)
    layout.add_cell(cell)
    return cell


def region_for(layout: Layout, target: Cell, window: Optional[Window] = None):
    """Build the localRegion of a target over the whole chip by default."""
    window = window or Window(0.0, layout.width, 0, layout.num_rows)
    region, _ = build_local_region(layout, target, window)
    return region


def small_design(num_cells: int = 80, density: float = 0.55, seed: int = 1,
                 height_mix: Optional[Dict[int, float]] = None) -> Layout:
    """Generate a small synthetic design for end-to-end tests."""
    spec = DesignSpec(
        name=f"tiny{seed}",
        num_cells=num_cells,
        density=density,
        seed=seed,
        height_mix=height_mix or {1: 0.7, 2: 0.18, 3: 0.08, 4: 0.04},
    )
    return generate_design(spec)
