"""Shared configuration of the benchmark harness (``benchmarks/``).

Lives inside the package (rather than in ``benchmarks/conftest.py``)
so that benchmark modules can import it with an absolute import and the
``tests``/``benchmarks`` trees can be collected in one pytest run
without conftest-module shadowing.

The benchmark scale can be adjusted through the ``REPRO_BENCH_SCALE``
environment variable (default 0.002 — about 60–260 cells per design).
"""

from __future__ import annotations

import os

#: Cell-count scale of the benchmark designs relative to the published sizes.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))
#: Seed used for benchmark design generation (deterministic).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2017"))
#: Benchmarks used by the figure regenerations (Table 1 uses all 16).
FIGURE_NAMES = [
    "des_perf_1",
    "des_perf_b_md1",
    "edit_dist_a_md3",
    "fft_a_md2",
    "pci_b_a_md2",
    "pci_b_b_md3",
]

__all__ = ["BENCH_SCALE", "BENCH_SEED", "FIGURE_NAMES", "run_once"]


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
