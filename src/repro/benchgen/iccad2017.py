"""ICCAD-2017-contest-like benchmark suite (Table 1 of the paper).

For every design evaluated in the paper we record its published cell
count and density (Table 1, columns "Cell #" and "Den.(%)") plus a
mixed-cell-height profile chosen to match the qualitative facts the paper
states about each design family:

* ``*_md2`` / ``*_md3`` variants contain progressively more multi-row
  cells than ``*_md1`` variants;
* ``des_perf_1``, ``des_perf_a_md1`` and ``des_perf_b_md1`` contain no
  cells taller than three rows (Fig. 9 discussion);
* ``pci_b_a_md2`` has a high proportion of cells taller than three rows,
  which is why the SACS bandwidth optimisation pays off most there.

:func:`iccad2017_design` instantiates one benchmark at an arbitrary
``scale``; :func:`iccad2017_suite` yields the whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.benchgen.generator import DesignSpec, generate_design
from repro.geometry.layout import Layout


@dataclass(frozen=True)
class BenchmarkInfo:
    """Published characteristics of one ICCAD-2017 benchmark (Table 1)."""

    name: str
    cell_count: int
    density_percent: float
    height_mix: Tuple[Tuple[int, float], ...]
    """Cell-height distribution used by the synthetic generator."""

    @property
    def density(self) -> float:
        return self.density_percent / 100.0

    def height_mix_dict(self) -> Dict[int, float]:
        return {h: f for h, f in self.height_mix}

    def tall_fraction(self) -> float:
        """Fraction of cells taller than three rows in the synthetic mix."""
        total = sum(f for _, f in self.height_mix)
        return sum(f for h, f in self.height_mix if h > 3) / total


# Height-mix archetypes ------------------------------------------------
# md1: mostly single/double-row cells, no cell taller than 3 rows.
_MIX_MD1 = ((1, 0.82), (2, 0.13), (3, 0.05))
# md2: more multi-row cells, a small share of 4-row cells.
_MIX_MD2 = ((1, 0.72), (2, 0.17), (3, 0.07), (4, 0.04))
# md3: the heaviest multi-deck mix.
_MIX_MD3 = ((1, 0.64), (2, 0.20), (3, 0.09), (4, 0.07))
# pci_b_a_md2 has the highest share of >3-row cells in the suite (Fig. 9).
_MIX_TALL = ((1, 0.66), (2, 0.16), (3, 0.08), (4, 0.07), (5, 0.03))
# des_perf_1 is the densest design; only 1/2/3-row cells.
_MIX_DENSE = ((1, 0.84), (2, 0.12), (3, 0.04))


#: Table 1 designs in paper order.
ICCAD2017_BENCHMARKS: List[BenchmarkInfo] = [
    BenchmarkInfo("des_perf_1", 112_644, 90.6, _MIX_DENSE),
    BenchmarkInfo("des_perf_a_md1", 108_288, 55.1, _MIX_MD1),
    BenchmarkInfo("des_perf_a_md2", 108_288, 55.9, _MIX_MD2),
    BenchmarkInfo("des_perf_b_md1", 112_644, 55.0, _MIX_MD1),
    BenchmarkInfo("des_perf_b_md2", 112_644, 64.7, _MIX_MD2),
    BenchmarkInfo("edit_dist_1_md1", 130_661, 67.4, _MIX_MD1),
    BenchmarkInfo("edit_dist_a_md2", 127_413, 59.4, _MIX_MD2),
    BenchmarkInfo("edit_dist_a_md3", 127_413, 57.2, _MIX_MD3),
    BenchmarkInfo("fft_2_md2", 32_281, 82.7, _MIX_MD2),
    BenchmarkInfo("fft_a_md2", 30_625, 32.3, _MIX_MD2),
    BenchmarkInfo("fft_a_md3", 30_625, 31.2, _MIX_MD3),
    BenchmarkInfo("pci_b_a_md1", 29_517, 49.5, _MIX_MD1),
    BenchmarkInfo("pci_b_a_md2", 29_517, 57.7, _MIX_TALL),
    BenchmarkInfo("pci_b_b_md1", 28_914, 26.6, _MIX_MD1),
    BenchmarkInfo("pci_b_b_md2", 28_914, 18.3, _MIX_MD2),
    BenchmarkInfo("pci_b_b_md3", 28_914, 22.2, _MIX_MD3),
]

_BY_NAME: Dict[str, BenchmarkInfo] = {b.name: b for b in ICCAD2017_BENCHMARKS}


def benchmark_names() -> List[str]:
    """Names of the 16 Table 1 benchmarks, in paper order."""
    return [b.name for b in ICCAD2017_BENCHMARKS]


def get_benchmark(name: str) -> BenchmarkInfo:
    """Look up the published characteristics of a benchmark by name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(f"unknown ICCAD-2017 benchmark {name!r}; known: {benchmark_names()}") from exc


def iccad2017_spec(name: str, *, scale: float = 0.01, seed: Optional[int] = None) -> DesignSpec:
    """Build the :class:`DesignSpec` of one benchmark at the given scale.

    ``scale`` multiplies the published cell count (default 1 %, which
    keeps pure-Python legalization runs in the seconds range); the
    density and the height mix are preserved exactly.
    """
    info = get_benchmark(name)
    # Cap the packing density used by the generator slightly below the
    # published value for the densest designs: the synthetic packer needs
    # a little slack to converge, and legalization difficulty is already
    # dominated by the >80% regime.
    density = min(info.density, 0.93)
    if seed is None:
        seed = abs(hash(name)) % (2**31)
    spec = DesignSpec(
        name=name,
        num_cells=max(32, int(round(info.cell_count * scale))),
        density=density,
        height_mix=info.height_mix_dict(),
        seed=seed,
    )
    return spec


def iccad2017_design(name: str, *, scale: float = 0.01, seed: Optional[int] = None) -> Layout:
    """Generate the synthetic stand-in of one ICCAD-2017 benchmark."""
    return generate_design(iccad2017_spec(name, scale=scale, seed=seed))


def iccad2017_suite(
    *, scale: float = 0.01, names: Optional[List[str]] = None, seed: Optional[int] = None
) -> Iterator[Tuple[BenchmarkInfo, Layout]]:
    """Generate the full (or a named subset of the) Table 1 suite.

    Yields ``(info, layout)`` pairs in paper order.
    """
    selected = names if names is not None else benchmark_names()
    for name in selected:
        info = get_benchmark(name)
        yield info, iccad2017_design(name, scale=scale, seed=seed)
