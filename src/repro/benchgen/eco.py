"""Seeded ECO delta-stream generation at configurable churn rates.

The incremental engine's workload is a *delta stream*: batches of small
edits against an already-legal design.  This module generates realistic
streams deterministically from a seed, so the equivalence suites, the
churn-sweep experiment and the ``repro eco --generate`` CLI all draw the
same traffic:

* most deltas are **moves** — a cell's desired position drifts by a
  Gaussian step, the dominant ECO after timing fixes re-place logic;
* some are **resizes** (gate up/down-sizing changes a cell's width);
* a few **inserts** (buffer insertion) and **deletes** (logic removal);
* optionally a **fixed-macro move** per batch, the nastiest ECO kind —
  its new footprint evicts whatever committed placements it overlaps.

The per-batch *churn* is the fraction of live movable cells touched
directly; the dirty set the engine computes can be slightly larger
(macro footprints dirty their neighbourhoods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geometry.layout import Layout
from repro.incremental.deltas import (
    DeltaBatch,
    DeleteCell,
    InsertCell,
    MoveCell,
    ResizeCell,
)
from repro.incremental.engine import apply_deltas

#: Height distribution of inserted cells (buffers are mostly short).
_INSERT_HEIGHTS = (1, 1, 1, 1, 2, 2, 3)


@dataclass
class EcoSpec:
    """Specification of one ECO delta stream.

    Attributes
    ----------
    churn:
        Fraction of live movable cells directly touched per batch.
    batches:
        Number of delta batches in the stream.
    seed:
        RNG seed; generation is fully deterministic given the spec and
        the base layout.
    move_fraction / resize_fraction / insert_fraction / delete_fraction:
        Relative mix of delta kinds (normalised automatically).
    move_sigma_x / move_sigma_y:
        Standard deviation of a move's Gaussian drift, in sites / rows.
    macro_move_probability:
        Probability that a batch additionally moves one fixed macro by a
        small step (only when the design has fixed macros).
    """

    churn: float = 0.02
    batches: int = 1
    seed: int = 0
    move_fraction: float = 0.70
    resize_fraction: float = 0.12
    insert_fraction: float = 0.10
    delete_fraction: float = 0.08
    move_sigma_x: float = 4.0
    move_sigma_y: float = 1.0
    macro_move_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.churn <= 1.0:
            raise ValueError(f"churn must be in (0, 1], got {self.churn}")
        if self.batches < 1:
            raise ValueError(f"batches must be >= 1, got {self.batches}")
        total = (self.move_fraction + self.resize_fraction
                 + self.insert_fraction + self.delete_fraction)
        if total <= 0:
            raise ValueError("delta-kind fractions must sum to a positive value")


def generate_eco_batch(
    layout: Layout, spec: EcoSpec, rng: Optional[np.random.Generator] = None
) -> DeltaBatch:
    """Generate one delta batch against the *current* state of ``layout``.

    The batch references live cell indexes, so it must be applied before
    the next batch is generated (use :func:`generate_eco_stream` for a
    whole pre-generated stream).
    """
    rng = np.random.default_rng(spec.seed) if rng is None else rng
    movable = [c for c in layout.cells if not c.fixed and c.width > 0]
    if not movable:
        return []
    k = max(1, int(round(spec.churn * len(movable))))
    k = min(k, len(movable))
    victims = rng.choice(len(movable), size=k, replace=False)

    total = (spec.move_fraction + spec.resize_fraction
             + spec.insert_fraction + spec.delete_fraction)
    p_move = spec.move_fraction / total
    p_resize = p_move + spec.resize_fraction / total
    p_insert = p_resize + spec.insert_fraction / total

    batch: DeltaBatch = []
    for pick in victims:
        cell = movable[int(pick)]
        kind = float(rng.random())
        if kind < p_move:
            batch.append(
                MoveCell(
                    cell.index,
                    float(cell.gp_x + rng.normal(0.0, spec.move_sigma_x)),
                    float(cell.gp_y + rng.normal(0.0, spec.move_sigma_y)),
                )
            )
        elif kind < p_resize:
            step = 1.0 if rng.random() < 0.5 else -1.0
            batch.append(
                ResizeCell(cell.index, width=float(max(1.0, cell.width + step)))
            )
        elif kind < p_insert:
            width = float(rng.integers(1, 5))
            height = int(_INSERT_HEIGHTS[int(rng.integers(0, len(_INSERT_HEIGHTS)))])
            batch.append(
                InsertCell(
                    width=width,
                    height=height,
                    gp_x=float(rng.uniform(0.0, max(1.0, layout.width - width))),
                    gp_y=float(rng.uniform(0.0, max(1.0, layout.num_rows - height))),
                )
            )
        else:
            batch.append(DeleteCell(cell.index))

    if spec.macro_move_probability > 0.0:
        macros = [
            c for c in layout.cells if c.fixed and not layout.is_retired(c)
        ]
        if macros and float(rng.random()) < spec.macro_move_probability:
            macro = macros[int(rng.integers(0, len(macros)))]
            batch.append(
                MoveCell(
                    macro.index,
                    float(macro.x + rng.normal(0.0, spec.move_sigma_x)),
                    float(macro.y + rng.normal(0.0, spec.move_sigma_y)),
                )
            )
    return batch


def generate_eco_stream(layout: Layout, spec: EcoSpec) -> List[DeltaBatch]:
    """Generate ``spec.batches`` consecutive delta batches.

    Later batches reference cells inserted by earlier ones, so the
    stream is evolved against a scratch copy of the layout (the caller's
    layout is untouched).  The result can be serialized with
    :func:`repro.incremental.deltas.save_delta_stream` and replayed
    against any copy of the base design.
    """
    rng = np.random.default_rng(spec.seed)
    scratch = layout.copy()
    scratch.rebuild_index()
    stream: List[DeltaBatch] = []
    for _ in range(spec.batches):
        batch = generate_eco_batch(scratch, spec, rng)
        apply_deltas(scratch, batch)
        # The scratch's dirty cells are left floating — they are only
        # there to keep indexes/footprints evolving; position realism of
        # later batches does not require re-legalizing the scratch.
        stream.append(batch)
    return stream
