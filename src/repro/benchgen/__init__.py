"""Synthetic mixed-cell-height benchmark generation.

The paper evaluates on the ICCAD-2017 multi-deck standard-cell
legalization contest benchmarks.  Those designs (and the authors'
global-placement dumps) are not redistributable, so this package builds
synthetic equivalents that preserve the properties that drive
legalization difficulty and runtime:

* design density (cell area over free area),
* the mixed-cell-height distribution (fractions of 1/2/3/4-row cells),
* the proportion of cells taller than three rows (which governs the
  benefit of FLEX's bandwidth optimisations, Fig. 9),
* a realistic global-placement input: a nearly-legal placement whose
  cells have been perturbed, producing local overlaps that legalization
  must resolve with small displacement.

A ``scale`` parameter shrinks cell counts so that pure-Python experiments
finish quickly; density and height mix are preserved under scaling.
"""

from repro.benchgen.eco import EcoSpec, generate_eco_batch, generate_eco_stream
from repro.benchgen.generator import DesignSpec, generate_design
from repro.benchgen.iccad2017 import (
    ICCAD2017_BENCHMARKS,
    BenchmarkInfo,
    iccad2017_design,
    iccad2017_suite,
)

__all__ = [
    "DesignSpec",
    "generate_design",
    "EcoSpec",
    "generate_eco_batch",
    "generate_eco_stream",
    "BenchmarkInfo",
    "ICCAD2017_BENCHMARKS",
    "iccad2017_design",
    "iccad2017_suite",
]
