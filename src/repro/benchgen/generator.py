"""Parametric mixed-cell-height design generator.

The generator produces a :class:`~repro.geometry.Layout` whose
global-placement input resembles the output of an analytical global
placer: cells are first packed into a *legal* seed placement that matches
the requested density, then perturbed with Gaussian noise.  The resulting
input has many small overlaps — exactly what a legalizer must clean up —
and the achievable average displacement is on the order of the
perturbation magnitude (a fraction of a row height), the same regime the
paper reports for the ICCAD-2017 designs.

The packing uses a per-row skyline (first-fit with randomized gaps), so
multi-row cells never overlap in the seed and the realized density equals
the requested density up to the discreteness of cell widths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.geometry.row import legal_bottom_rows


#: Default mixed-cell-height distribution (fractions per height in rows).
DEFAULT_HEIGHT_MIX: Dict[int, float] = {1: 0.78, 2: 0.14, 3: 0.05, 4: 0.03}


@dataclass
class DesignSpec:
    """Specification of a synthetic design.

    Attributes
    ----------
    name:
        Design name.
    num_cells:
        Number of movable cells to generate.
    density:
        Target design density (movable cell area / free core area),
        matching the "Den.(%)" column of Table 1 when multiplied by 100.
    height_mix:
        Mapping from cell height (rows) to the fraction of cells of that
        height.  Fractions are normalised automatically.
    mean_width:
        Mean cell width in sites; widths are sampled from a shifted
        geometric-like distribution in ``[1, 4 * mean_width]``.
    rows_to_sites_aspect:
        Ratio of the number of sites per row to the number of rows;
        row-based chips are much wider (in sites) than tall (in rows).
    perturbation_x / perturbation_y:
        Standard deviation of the global-placement noise, in sites and in
        rows respectively.
    fixed_blockage_fraction:
        Fraction of the core area covered by randomly placed fixed
        blockages (exercises segment clipping; default 0).
    seed:
        RNG seed; generation is fully deterministic given the spec.
    site_rows_ratio:
        Height of a row expressed in site widths; used only to convert
        horizontal displacements into row-height units for metrics
        (ICCAD-2017 rows are several sites tall).
    """

    name: str
    num_cells: int
    density: float
    height_mix: Dict[int, float] = field(default_factory=lambda: dict(DEFAULT_HEIGHT_MIX))
    mean_width: float = 3.0
    rows_to_sites_aspect: float = 8.0
    perturbation_x: float = 4.0
    perturbation_y: float = 0.9
    fixed_blockage_fraction: float = 0.0
    seed: int = 0
    site_rows_ratio: float = 10.0

    def __post_init__(self) -> None:
        if self.num_cells <= 0:
            raise ValueError("num_cells must be positive")
        if not 0.0 < self.density < 0.98:
            raise ValueError(f"density must be in (0, 0.98), got {self.density}")
        total = sum(self.height_mix.values())
        if total <= 0:
            raise ValueError("height_mix must contain positive fractions")
        self.height_mix = {int(h): f / total for h, f in self.height_mix.items() if f > 0}

    def scaled(self, scale: float, *, suffix: Optional[str] = None) -> "DesignSpec":
        """Return a copy with the cell count multiplied by ``scale``.

        Density, height mix and perturbation magnitudes are preserved, so
        the scaled design exercises the same legalization behaviour at a
        fraction of the runtime.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return DesignSpec(
            name=self.name if suffix is None else f"{self.name}{suffix}",
            num_cells=max(8, int(round(self.num_cells * scale))),
            density=self.density,
            height_mix=dict(self.height_mix),
            mean_width=self.mean_width,
            rows_to_sites_aspect=self.rows_to_sites_aspect,
            perturbation_x=self.perturbation_x,
            perturbation_y=self.perturbation_y,
            fixed_blockage_fraction=self.fixed_blockage_fraction,
            seed=self.seed,
            site_rows_ratio=self.site_rows_ratio,
        )


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------
def _sample_heights(spec: DesignSpec, rng: np.random.Generator) -> np.ndarray:
    heights = np.array(sorted(spec.height_mix.keys()), dtype=np.int64)
    probs = np.array([spec.height_mix[int(h)] for h in heights])
    return rng.choice(heights, size=spec.num_cells, p=probs)


def _sample_widths(spec: DesignSpec, heights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    # Taller cells tend to be somewhat narrower in multi-deck libraries;
    # keep every width at least one site.
    base = rng.geometric(p=min(0.9, 1.0 / spec.mean_width), size=spec.num_cells)
    base = np.clip(base, 1, int(4 * spec.mean_width))
    shrink = np.maximum(1.0, heights.astype(float) * 0.5)
    widths = np.maximum(1, np.round(base / shrink)).astype(np.int64)
    return widths


def _chip_dimensions(spec: DesignSpec, total_area: float) -> Tuple[int, int]:
    """Choose (num_rows, num_sites) matching the target density and aspect."""
    core_area = total_area / spec.density
    # core_area = rows * sites, sites = aspect * rows  =>  rows = sqrt(area/aspect)
    rows = max(8, int(math.ceil(math.sqrt(core_area / spec.rows_to_sites_aspect))))
    # Even row count keeps the P/G pattern symmetric and guarantees even-height
    # cells always have candidate rows.
    if rows % 2:
        rows += 1
    sites = max(16, int(math.ceil(core_area / rows)))
    return rows, sites


# ----------------------------------------------------------------------
# Legal seed packing
# ----------------------------------------------------------------------
def _pack_seed(
    spec: DesignSpec,
    heights: np.ndarray,
    widths: np.ndarray,
    num_rows: int,
    num_sites: int,
    rng: np.random.Generator,
) -> List[Tuple[float, int]]:
    """Pack cells legally (no overlaps) and return seed (x, bottom_row) per cell.

    Uses a per-row skyline: for each cell a legal bottom row is chosen at
    random among those with enough remaining width; the cell is placed at
    the maximum cursor of the rows it spans plus a randomized gap so that
    free space is spread across the row rather than accumulating at the
    right edge.
    """
    cursors = np.zeros(num_rows)
    # Expected slack per cell used to size the random gaps.
    total_width_per_row = float(np.sum(widths * heights)) / num_rows
    slack_per_row = max(0.0, num_sites - total_width_per_row)
    cells_per_row = max(1.0, float(np.sum(heights)) / num_rows)
    mean_gap = slack_per_row / cells_per_row

    order = rng.permutation(spec.num_cells)
    positions: List[Optional[Tuple[float, int]]] = [None] * spec.num_cells
    for idx in order:
        h = int(heights[idx])
        w = float(widths[idx])
        candidates = list(legal_bottom_rows(h, num_rows))
        rng.shuffle(candidates)
        placed = False
        best_row = candidates[0] if candidates else 0
        best_x = float("inf")
        for attempt, bottom in enumerate(candidates):
            span = cursors[bottom : bottom + h]
            x0 = float(span.max())
            if x0 + w <= num_sites:
                gap = float(rng.exponential(mean_gap)) if mean_gap > 0 else 0.0
                x = min(x0 + gap, num_sites - w)
                x = float(int(x))
                positions[idx] = (x, bottom)
                cursors[bottom : bottom + h] = x + w
                placed = True
                break
            if x0 < best_x:
                best_x, best_row = x0, bottom
            if attempt >= 24 and best_x + w <= num_sites * 1.02:
                break
        if not placed:
            # Dense designs: fall back to the least-full candidate without a gap.
            x = float(int(min(best_x, max(0.0, num_sites - w))))
            positions[idx] = (x, best_row)
            cursors[best_row : best_row + h] = max(cursors[best_row : best_row + h].max(), x + w)
    return [p for p in positions if p is not None]


def _add_blockages(
    layout_cells: List[Cell], spec: DesignSpec, num_rows: int, num_sites: int, rng: np.random.Generator
) -> None:
    """Append fixed blockages covering roughly ``fixed_blockage_fraction`` of the core."""
    if spec.fixed_blockage_fraction <= 0:
        return
    target_area = spec.fixed_blockage_fraction * num_rows * num_sites
    area = 0.0
    while area < target_area:
        h = int(rng.integers(2, max(3, num_rows // 6)))
        w = int(rng.integers(4, max(6, num_sites // 8)))
        x = float(rng.integers(0, max(1, num_sites - w)))
        y = float(rng.integers(0, max(1, num_rows - h)))
        layout_cells.append(
            Cell(
                index=len(layout_cells),
                width=w,
                height=h,
                gp_x=x,
                gp_y=y,
                x=x,
                y=y,
                fixed=True,
                name=f"blk{len(layout_cells)}",
            )
        )
        area += w * h


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def generate_design(spec: DesignSpec) -> Layout:
    """Generate a synthetic design from a :class:`DesignSpec`.

    The returned layout's cells carry a *global placement* position (the
    perturbed seed) as both their ``gp`` and current coordinates; no cell
    is marked legalized.  Run a legalizer to obtain a legal placement.
    """
    rng = np.random.default_rng(spec.seed)
    heights = _sample_heights(spec, rng)
    widths = _sample_widths(spec, heights, rng)
    total_area = float(np.sum(widths * heights))
    num_rows, num_sites = _chip_dimensions(spec, total_area)

    seed_positions = _pack_seed(spec, heights, widths, num_rows, num_sites, rng)

    cells: List[Cell] = []
    noise_x = rng.normal(0.0, spec.perturbation_x, size=spec.num_cells)
    noise_y = rng.normal(0.0, spec.perturbation_y, size=spec.num_cells)
    for i, (x_seed, bottom) in enumerate(seed_positions):
        w = float(widths[i])
        h = int(heights[i])
        gp_x = float(np.clip(x_seed + noise_x[i], 0.0, num_sites - w))
        gp_y = float(np.clip(bottom + noise_y[i], 0.0, num_rows - h))
        cells.append(
            Cell(index=i, width=w, height=h, gp_x=gp_x, gp_y=gp_y, x=gp_x, y=gp_y, name=f"c{i}")
        )
    _add_blockages(cells, spec, num_rows, num_sites, rng)

    layout = Layout(
        num_rows,
        num_sites,
        cells,
        name=spec.name,
        site_width=1.0 / spec.site_rows_ratio,
        row_height=1.0,
    )
    return layout


def describe_design(layout: Layout) -> Dict[str, float]:
    """Return scalar descriptors of a generated design (for reports)."""
    hist = layout.height_histogram()
    movable = len(layout.movable_cells())
    return {
        "num_cells": float(movable),
        "num_rows": float(layout.num_rows),
        "num_sites": float(layout.num_sites),
        "density": layout.density(),
        "multi_row_fraction": sum(n for h, n in hist.items() if h > 1) / max(1, movable),
        "tall_cell_fraction": layout.tall_cell_fraction(3),
        "max_height": float(layout.max_cell_height()),
    }
