"""repro — a full Python reproduction of FLEX (ICPP 2025).

FLEX: Leveraging FPGA-CPU Synergy for Mixed-Cell-Height Legalization
Acceleration.

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.geometry``
    Layout data model: cells, rows, windows, local regions, intervals.
``repro.legality``
    Legality checking (overlap / boundary / site / power-rail alignment)
    and placement-quality metrics (average displacement, Eq. 2).
``repro.benchgen``
    Synthetic mixed-cell-height benchmark generation, including an
    ICCAD-2017-contest-like suite matching Table 1 of the paper.
``repro.designio``
    Simple text / JSON serialization of designs and results.
``repro.mgl``
    The Multi-row Global Legalization (MGL) algorithm substrate:
    pre-move, localRegion extraction, insertion-point enumeration,
    displacement-curve math and the FOP (find-optimal-position) kernel.
``repro.kernels``
    Pluggable kernel backends for the numeric hot paths (curve
    construction/minimization, SACS chains): the pure-Python reference
    oracle and a bit-for-bit NumPy-vectorized backend, selected via
    ``FlexConfig.kernel_backend`` / ``MGLLegalizer(backend=...)``.
``repro.testing``
    Importable helpers shared by the ``tests/`` and ``benchmarks/``
    suites (layout builders, benchmark constants).
``repro.core``
    The FLEX contributions: Sort-Ahead Cell Shifting (SACS), sliding
    window processing ordering, CPU/FPGA task assignment, the
    multi-granularity pipeline schedule, and the end-to-end
    :class:`~repro.core.flex_legalizer.FlexLegalizer`.
``repro.fpga``
    Cycle-approximate behavioral model of the FLEX FPGA datapath
    (BRAM banks, sorters, PEs, pipelines, CPU<->FPGA link, resources).
``repro.perf``
    Operation counters, CPU/GPU cost models and co-execution timelines
    used to derive modeled hardware runtimes from measured work.
``repro.baselines``
    Reimplementations / runtime models of the comparison points:
    multi-threaded-CPU MGL (TCAD'22), CPU-GPU legalizer (DATE'22),
    analytical legalizer (ISPD'25 stand-in), Abacus and greedy.
``repro.experiments``
    One module per paper table / figure regenerating its rows or series.
"""

from repro.geometry import Cell, Layout, Row, Window
from repro.legality import LegalityChecker, PlacementMetrics
from repro.benchgen import DesignSpec, generate_design, iccad2017_suite
from repro.mgl import MGLLegalizer
from repro.core import FlexConfig, FlexLegalizer

__all__ = [
    "Cell",
    "Layout",
    "Row",
    "Window",
    "LegalityChecker",
    "PlacementMetrics",
    "DesignSpec",
    "generate_design",
    "iccad2017_suite",
    "MGLLegalizer",
    "FlexConfig",
    "FlexLegalizer",
]

__version__ = "1.0.0"
