"""1-D interval utilities used by segment extraction and insertion points.

Intervals are half-open in spirit but stored as closed ``[lo, hi]`` pairs
of floats; an interval with ``hi <= lo`` is considered empty.  All
functions are pure and operate on small Python lists — segment extraction
touches at most a handful of intervals per row so there is no need for a
vectorised representation here (the hot loops of the legalizer live in
:mod:`repro.mgl.shifting` and :mod:`repro.mgl.curves`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Interval:
    """A closed 1-D interval ``[lo, hi]``.

    Attributes
    ----------
    lo:
        Left endpoint.
    hi:
        Right endpoint.  ``hi <= lo`` denotes an empty interval.
    """

    lo: float
    hi: float

    @property
    def length(self) -> float:
        """Length of the interval (0 when empty)."""
        return max(0.0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        """True when the interval contains no positive-length span."""
        return self.hi <= self.lo

    def contains(self, x: float, *, tol: float = 0.0) -> bool:
        """Return True when ``x`` lies inside the interval (within tol)."""
        return self.lo - tol <= x <= self.hi + tol

    def contains_interval(self, other: "Interval", *, tol: float = 1e-9) -> bool:
        """Return True when ``other`` is fully contained in this interval."""
        return self.lo - tol <= other.lo and other.hi <= self.hi + tol

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the open interiors of the two intervals overlap."""
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection (possibly empty) of two intervals."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def clamp(self, x: float) -> float:
        """Clamp a scalar into the interval.

        Raises
        ------
        ValueError
            If the interval is empty.
        """
        if self.empty:
            raise ValueError(f"cannot clamp into empty interval {self}")
        return min(max(x, self.lo), self.hi)

    def shifted(self, dx: float) -> "Interval":
        """Return a copy translated by ``dx``."""
        return Interval(self.lo + dx, self.hi + dx)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g}, {self.hi:g}]"


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping or touching intervals into a disjoint sorted list.

    Empty intervals are dropped.  The result is sorted by ``lo``.
    """
    items = sorted((iv for iv in intervals if not iv.empty), key=lambda iv: iv.lo)
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.lo <= merged[-1].hi:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return merged


def subtract_intervals(base: Interval, holes: Sequence[Interval]) -> List[Interval]:
    """Subtract a set of hole intervals from ``base``.

    Returns the list of maximal free sub-intervals of ``base`` that do not
    intersect any hole.  Used to carve placement-row segments around fixed
    blockages and partially-covered cells.
    """
    if base.empty:
        return []
    free: List[Interval] = []
    cursor = base.lo
    for hole in merge_intervals(holes):
        clipped = hole.intersect(base)
        if clipped.empty:
            continue
        if clipped.lo > cursor:
            free.append(Interval(cursor, clipped.lo))
        cursor = max(cursor, clipped.hi)
    if cursor < base.hi:
        free.append(Interval(cursor, base.hi))
    return [iv for iv in free if not iv.empty]


def intersect_many(intervals: Sequence[Interval]) -> Optional[Interval]:
    """Intersect a non-empty sequence of intervals.

    Returns ``None`` when the intersection is empty or the input sequence
    is empty.
    """
    if not intervals:
        return None
    lo = max(iv.lo for iv in intervals)
    hi = min(iv.hi for iv in intervals)
    if hi <= lo:
        return None
    return Interval(lo, hi)


def longest_interval(intervals: Sequence[Interval]) -> Optional[Interval]:
    """Return the longest interval of a sequence (ties broken by position)."""
    best: Optional[Interval] = None
    for iv in intervals:
        if iv.empty:
            continue
        if best is None or iv.length > best.length:
            best = iv
    return best


def total_length(intervals: Iterable[Interval]) -> float:
    """Total length of a set of intervals after merging overlaps."""
    return sum(iv.length for iv in merge_intervals(intervals))


def intersect_interval_lists(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersect two disjoint sorted interval lists (the free-space AND).

    Both inputs must be sorted by ``lo`` and pairwise disjoint (the output
    of :func:`merge_intervals`, :func:`subtract_intervals` or
    :func:`gaps_between`).  Runs in linear time with a two-pointer sweep.
    """
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i].lo, b[j].lo)
        hi = min(a[i].hi, b[j].hi)
        if hi > lo:
            out.append(Interval(lo, hi))
        if a[i].hi <= b[j].hi:
            i += 1
        else:
            j += 1
    return out


def gaps_between(sorted_occupied: Sequence[Tuple[float, float]], bounds: Interval) -> List[Interval]:
    """Compute the free gaps inside ``bounds`` given sorted occupied spans.

    ``sorted_occupied`` must be a list of ``(lo, hi)`` spans sorted by
    ``lo`` and pairwise non-overlapping (the typical state of a legal row).
    The returned gaps include the two end gaps when non-empty.
    """
    gaps: List[Interval] = []
    cursor = bounds.lo
    for lo, hi in sorted_occupied:
        if lo > cursor:
            gaps.append(Interval(cursor, min(lo, bounds.hi)))
        cursor = max(cursor, hi)
        if cursor >= bounds.hi:
            break
    if cursor < bounds.hi:
        gaps.append(Interval(cursor, bounds.hi))
    return [g for g in gaps if not g.empty]
