"""Cell model for mixed-cell-height designs.

A :class:`Cell` records both its **global placement** position (the
optimiser output that legalization must preserve as closely as possible)
and its **current** position (updated by pre-move, insertion and cell
shifting).  Displacement metrics are always measured against the global
placement position, following the MGL convention of accumulating
displacement from the original location rather than from the most recent
one (paper Section 6, Related Works).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class Cell:
    """A standard cell (or fixed blockage) in a row-based layout.

    Attributes
    ----------
    index:
        Integer identifier, unique within a :class:`~repro.geometry.Layout`.
    name:
        Human-readable name (``c123`` by default).
    width:
        Width in placement sites (positive integer for standard cells;
        fixed blockages may have arbitrary positive width).
    height:
        Height in row units (1 for single-row cells, >= 2 for multi-row
        "multi-deck" cells).
    gp_x, gp_y:
        Global placement coordinates of the bottom-left corner, in site /
        row units.  These never change during legalization.
    x, y:
        Current coordinates of the bottom-left corner.  ``y`` is a row
        index once the cell has been pre-moved / legalized.  When omitted
        (``None``) the cell starts at its global placement position;
        an explicit value — including ``0.0`` — is kept exactly, so
        copies and deserialized cells sitting at the origin survive.
    fixed:
        True for blockages and macros that legalization must not move.
    legalized:
        True once the cell has been assigned its final legal position.
    """

    index: int
    width: float
    height: int
    gp_x: float
    gp_y: float
    x: Optional[float] = None
    y: Optional[float] = None
    fixed: bool = False
    legalized: bool = False
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.width < 0 or (self.width == 0 and not self.fixed):
            # Fixed markers (zero-footprint blockage pins) may have zero
            # width; movable cells must occupy at least part of a site.
            raise ValueError(f"cell {self.index}: width must be positive, got {self.width}")
        if self.height < 1 or int(self.height) != self.height:
            raise ValueError(f"cell {self.index}: height must be a positive integer, got {self.height}")
        self.height = int(self.height)
        if not self.name:
            self.name = f"c{self.index}"
        # A cell starts at its global placement location unless an
        # explicit position was given.  (An explicit (0, 0) is a real
        # position — the old "(0, 0) means unset" heuristic corrupted
        # copies of cells legalized at the chip origin.)
        self.x = self.gp_x if self.x is None else float(self.x)
        self.y = self.gp_y if self.y is None else float(self.y)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def right(self) -> float:
        """Current right edge (x + width)."""
        return self.x + self.width

    @property
    def top(self) -> float:
        """Current top edge in row units (y + height)."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Cell area in site*row units."""
        return self.width * self.height

    @property
    def row_span(self) -> Tuple[int, int]:
        """Rows currently covered, as ``(bottom_row, top_row_exclusive)``.

        Only meaningful after the cell has been snapped to a row grid.
        """
        bottom = int(round(self.y))
        return bottom, bottom + self.height

    def rows_covered(self) -> range:
        """Iterate over the row indexes currently covered by the cell."""
        bottom, top = self.row_span
        return range(bottom, top)

    def overlaps(self, other: "Cell") -> bool:
        """Axis-aligned rectangle overlap test on current positions."""
        return (
            self.x < other.x + other.width
            and other.x < self.x + self.width
            and self.y < other.y + other.height
            and other.y < self.y + self.height
        )

    def overlap_area(self, other: "Cell") -> float:
        """Area of the overlap rectangle between two cells (0 if disjoint)."""
        dx = min(self.right, other.right) - max(self.x, other.x)
        dy = min(self.top, other.top) - max(self.y, other.y)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy

    # ------------------------------------------------------------------
    # Displacement
    # ------------------------------------------------------------------
    def displacement(self, row_height: float = 1.0, site_width: float = 1.0) -> float:
        """Manhattan displacement from the global placement position (Eq. 1).

        ``row_height`` and ``site_width`` convert the internal row/site
        units into a common physical unit; with the default unit grid the
        displacement is simply ``|dx| + |dy|`` in site/row units.
        """
        return abs(self.x - self.gp_x) * site_width + abs(self.y - self.gp_y) * row_height

    def displacement_x(self) -> float:
        """Horizontal component of the displacement, in site units."""
        return abs(self.x - self.gp_x)

    def displacement_y(self) -> float:
        """Vertical component of the displacement, in row units."""
        return abs(self.y - self.gp_y)

    # ------------------------------------------------------------------
    # Mutation helpers
    # ------------------------------------------------------------------
    def move_to(self, x: float, y: float) -> None:
        """Move the cell's bottom-left corner to ``(x, y)``.

        Raises
        ------
        ValueError
            If the cell is fixed.
        """
        if self.fixed:
            raise ValueError(f"cell {self.name} is fixed and cannot be moved")
        self.x = float(x)
        self.y = float(y)

    def copy(self) -> "Cell":
        """Return an independent copy of the cell."""
        return Cell(
            index=self.index,
            width=self.width,
            height=self.height,
            gp_x=self.gp_x,
            gp_y=self.gp_y,
            x=self.x,
            y=self.y,
            fixed=self.fixed,
            legalized=self.legalized,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "F" if self.fixed else ("L" if self.legalized else "U")
        return (
            f"Cell({self.name}, w={self.width:g}, h={self.height}, "
            f"at=({self.x:g},{self.y:g}), gp=({self.gp_x:g},{self.gp_y:g}), {tag})"
        )
