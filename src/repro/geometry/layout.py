"""The chip layout: rows, sites, cells and spatial indexes.

:class:`Layout` is the central mutable object passed between the
legalization stages.  It maintains a per-row index of the cells that are
*obstacles* for insertion (fixed blockages plus already-legalized cells),
which is what localRegion extraction and cell shifting operate on.

Design notes
------------
* The index maps each row to the sorted-by-x list of obstacle cell
  indexes covering that row.  Multi-row cells appear in every row they
  span (these per-row appearances are the "subcells" of the paper).
* Unlegalized movable cells are *not* obstacles: the MGL flow treats them
  as still-floating and will legalize them later in processing order.
* Coordinates use a unit site width and unit row height internally.  The
  physical dimensions only matter for reporting, where
  :class:`~repro.legality.metrics.PlacementMetrics` can apply scale
  factors.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval
from repro.geometry.row import Row


class Layout:
    """A row-based chip layout holding the design's cells.

    Parameters
    ----------
    num_rows:
        Number of placement rows.
    num_sites:
        Number of placement sites per row (uniform rows).
    cells:
        Optional initial cells; more can be added with :meth:`add_cell`.
    site_width, row_height:
        Physical dimensions of one site / one row, used only for metric
        scaling (the internal grid is always the unit grid).
    name:
        Design name (e.g. ``des_perf_1``).
    """

    def __init__(
        self,
        num_rows: int,
        num_sites: int,
        cells: Optional[Iterable[Cell]] = None,
        *,
        site_width: float = 1.0,
        row_height: float = 1.0,
        name: str = "design",
    ) -> None:
        if num_rows <= 0 or num_sites <= 0:
            raise ValueError("layout must have positive numbers of rows and sites")
        self.num_rows = int(num_rows)
        self.num_sites = int(num_sites)
        self.site_width = float(site_width)
        self.row_height = float(row_height)
        self.name = name
        self.rows: List[Row] = [
            Row(index=i, x_lo=0.0, x_hi=float(num_sites), bottom_rail=Row.default_rail(i))
            for i in range(self.num_rows)
        ]
        self.cells: List[Cell] = []
        # Per-row sorted obstacle index: row -> list of (x, cell_index).
        self._row_index: List[List[Tuple[float, int]]] = [[] for _ in range(self.num_rows)]
        self._index_dirty = False
        # Free-space summary: per-row (prefix sums of obstacle widths,
        # max obstacle width), aligned with the row's index entries.
        # Rebuilt lazily per row (an entry is invalidated whenever the
        # row's obstacles change), so occupancy queries stay O(log n)
        # between placements without a full-summary rebuild per commit.
        self._row_prefix: List[Optional[Tuple[List[float], float]]] = (
            [None] * self.num_rows
        )
        if cells is not None:
            for cell in cells:
                self.add_cell(cell)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cell(self, cell: Cell) -> None:
        """Add a cell to the layout.

        The cell's ``index`` must equal its position in the cell list so
        that indexes can be used interchangeably with references.
        """
        if cell.index != len(self.cells):
            raise ValueError(
                f"cell index {cell.index} does not match insertion position {len(self.cells)}"
            )
        self.cells.append(cell)
        if cell.fixed or cell.legalized:
            self._insert_into_index(cell)

    @property
    def width(self) -> float:
        """Chip width in site units."""
        return float(self.num_sites)

    @property
    def height(self) -> float:
        """Chip height in row units."""
        return float(self.num_rows)

    @property
    def core_area(self) -> float:
        """Total placeable area in site*row units."""
        return self.width * self.height

    # ------------------------------------------------------------------
    # Cell queries
    # ------------------------------------------------------------------
    def movable_cells(self) -> List[Cell]:
        """All non-fixed cells."""
        return [c for c in self.cells if not c.fixed]

    def fixed_cells(self) -> List[Cell]:
        """All fixed blockages / macros."""
        return [c for c in self.cells if c.fixed]

    def unlegalized_cells(self) -> List[Cell]:
        """Movable cells that still need to be legalized."""
        return [c for c in self.cells if not c.fixed and not c.legalized]

    def legalized_cells(self) -> List[Cell]:
        """Movable cells whose final position has been committed."""
        return [c for c in self.cells if not c.fixed and c.legalized]

    def total_cell_area(self, movable_only: bool = False) -> float:
        """Sum of cell areas (optionally restricted to movable cells)."""
        return sum(c.area for c in self.cells if not (movable_only and c.fixed))

    def density(self) -> float:
        """Design density: total cell area / free core area (paper Table 1)."""
        fixed_area = sum(c.area for c in self.fixed_cells())
        free = self.core_area - fixed_area
        if free <= 0:
            return float("inf")
        return sum(c.area for c in self.movable_cells()) / free

    def height_histogram(self) -> Dict[int, int]:
        """Number of movable cells per cell height."""
        hist: Dict[int, int] = {}
        for cell in self.movable_cells():
            hist[cell.height] = hist.get(cell.height, 0) + 1
        return hist

    def max_cell_height(self) -> int:
        """Largest movable-cell height (the ``H`` of Eq. 2)."""
        heights = [c.height for c in self.movable_cells()]
        return max(heights) if heights else 1

    def tall_cell_fraction(self, taller_than: int = 3) -> float:
        """Fraction of movable cells strictly taller than ``taller_than`` rows.

        Reproduces the grey line of Fig. 9 (proportion of cells taller than
        three-row height), which governs how much the SACS bandwidth
        optimisations help.
        """
        movable = self.movable_cells()
        if not movable:
            return 0.0
        return sum(1 for c in movable if c.height > taller_than) / len(movable)

    # ------------------------------------------------------------------
    # Obstacle index (fixed + legalized cells, per row, sorted by x)
    # ------------------------------------------------------------------
    def _insert_into_index(self, cell: Cell) -> None:
        bottom, top = cell.row_span
        for row in range(max(0, bottom), min(self.num_rows, top)):
            bisect.insort(self._row_index[row], (cell.x, cell.index))
            self._row_prefix[row] = None

    def _remove_from_index(self, cell: Cell) -> None:
        bottom, top = cell.row_span
        for row in range(max(0, bottom), min(self.num_rows, top)):
            self._row_prefix[row] = None
            entries = self._row_index[row]
            key = (cell.x, cell.index)
            pos = bisect.bisect_left(entries, key)
            if pos < len(entries) and entries[pos] == key:
                entries.pop(pos)
            else:  # pragma: no cover - defensive fallback
                self._row_index[row] = [e for e in entries if e[1] != cell.index]

    def rebuild_index(self) -> None:
        """Rebuild the per-row obstacle index from scratch.

        Call after bulk position changes (e.g. pre-move) that bypass
        :meth:`move_obstacle` / :meth:`mark_legalized`.
        """
        self._row_index = [[] for _ in range(self.num_rows)]
        self._row_prefix = [None] * self.num_rows
        for cell in self.cells:
            if cell.fixed or cell.legalized:
                self._insert_into_index(cell)

    def mark_legalized(self, cell: Cell, x: float, y: float) -> None:
        """Commit a cell to its legal position and add it to the obstacle index."""
        if cell.legalized or cell.fixed:
            self._remove_from_index(cell)
        cell.move_to(x, y)
        cell.legalized = True
        self._insert_into_index(cell)

    def unmark_legalized(self, cell: Cell, x: float, y: float, was_legalized: bool = False) -> None:
        """Revert a :meth:`mark_legalized` call.

        Restores the cell to position ``(x, y)`` and its previous
        legalization state, keeping the obstacle index consistent.  Used
        by speculative evaluation (the multiprocess backend's workers
        undo uncommitted placements before processing the next target).
        """
        self._remove_from_index(cell)
        cell.x = float(x)
        cell.y = float(y)
        cell.legalized = bool(was_legalized)
        if was_legalized:
            self._insert_into_index(cell)

    def move_obstacle(self, cell: Cell, new_x: float) -> None:
        """Horizontally move an already-legalized obstacle cell.

        Used by the insert & update step when committing the shifts chosen
        by FOP.  Vertical moves are never needed because MGL restricts
        shifting to the horizontal direction.
        """
        if not (cell.legalized or cell.fixed):
            raise ValueError(f"cell {cell.name} is not an obstacle; use mark_legalized")
        if cell.fixed:
            raise ValueError(f"cell {cell.name} is fixed and cannot be shifted")
        self._remove_from_index(cell)
        cell.x = float(new_x)
        self._insert_into_index(cell)

    # ------------------------------------------------------------------
    # Incremental (ECO) mutation hooks
    # ------------------------------------------------------------------
    # These maintain the per-row obstacle index and invalidate the
    # free-space summary only for the rows a change actually touches, so
    # an incremental legalization pass never pays a whole-index /
    # whole-summary rebuild (:mod:`repro.incremental` is the consumer).
    def unlegalize_cell(self, cell: Cell) -> None:
        """Mark a legalized cell as floating again (ECO re-legalization).

        Removes the cell from the obstacle index; its position is left
        untouched (pre-move will snap it when it is re-legalized).
        """
        if cell.fixed:
            raise ValueError(f"cell {cell.name} is fixed; use set_cell_fixed first")
        if cell.legalized:
            self._remove_from_index(cell)
            cell.legalized = False

    def resize_cell(self, cell: Cell, width: Optional[float] = None,
                    height: Optional[int] = None) -> None:
        """Change a cell's dimensions, keeping the obstacle index consistent."""
        width = cell.width if width is None else float(width)
        height = cell.height if height is None else int(height)
        if width < 0 or (width == 0 and not cell.fixed):
            raise ValueError(f"cell {cell.name}: width must be positive, got {width}")
        if height < 1:
            raise ValueError(f"cell {cell.name}: height must be >= 1, got {height}")
        in_index = cell.fixed or cell.legalized
        if in_index:
            self._remove_from_index(cell)
        cell.width = width
        cell.height = height
        if in_index:
            self._insert_into_index(cell)

    def relocate_fixed(self, cell: Cell, x: float, y: float) -> None:
        """Move a fixed blockage (an ECO macro change).

        Unlike :meth:`move_obstacle` this is 2-D and only legal for fixed
        cells; legalized movable cells must instead be unlegalized and
        re-placed by the legalizer.
        """
        if not cell.fixed:
            raise ValueError(f"cell {cell.name} is not fixed; use unlegalize_cell")
        self._remove_from_index(cell)
        cell.x = float(x)
        cell.y = float(y)
        self._insert_into_index(cell)

    def set_cell_fixed(self, cell: Cell, fixed: bool) -> None:
        """Toggle a cell's fixed flag, keeping the obstacle index consistent.

        Freezing (``fixed=True``) keeps the cell at its current position
        as a blockage; freeing (``fixed=False``) leaves the cell
        unlegalized — the caller is expected to re-legalize it.
        """
        if cell.fixed == fixed:
            return
        if not fixed and cell.width == 0.0:
            # A zero-width fixed marker is a tombstone (retire_cell) or a
            # blockage pin; freeing it would mint an invalid zero-width
            # movable cell that breaks Layout.copy() and Cell invariants.
            raise ValueError(
                f"cell {cell.name} has zero width and cannot become movable"
            )
        if cell.fixed or cell.legalized:
            self._remove_from_index(cell)
        cell.fixed = fixed
        cell.legalized = False
        if fixed:
            self._insert_into_index(cell)

    def retire_cell(self, cell: Cell) -> None:
        """Delete a cell from play by tombstoning it (ECO cell removal).

        Cell indexes must stay stable (delta streams and the obstacle
        index address cells by index), so deletion keeps the entry in
        the cell list but turns it into a zero-width fixed marker — the
        same degenerate shape already tolerated everywhere (zero
        occupancy, skipped by the legality overlap sweep, zero area in
        every metric).
        """
        if cell.fixed or cell.legalized:
            self._remove_from_index(cell)
        cell.width = 0.0
        cell.fixed = True
        cell.legalized = False
        self._insert_into_index(cell)

    def is_retired(self, cell: Cell) -> bool:
        """True for cells deleted via :meth:`retire_cell` (tombstones)."""
        return cell.fixed and cell.width == 0.0

    def invalidate_summary_rows(self, row_lo: int, row_hi: int) -> None:
        """Invalidate the free-space summary of rows ``[row_lo, row_hi)``.

        The per-cell mutators above already invalidate the rows they
        touch; this hook is for callers that edit row contents directly
        (bulk loaders, tests) and would otherwise have to pay
        :meth:`rebuild_index` just to refresh the summary.
        """
        for row in range(max(0, row_lo), min(self.num_rows, row_hi)):
            self._row_prefix[row] = None

    def obstacles_in_row(self, row: int) -> List[Cell]:
        """Obstacle cells covering ``row``, sorted by current x."""
        return [self.cells[idx] for _, idx in self._row_index[row]]

    def obstacles_in_row_window(self, row: int, x_lo: float, x_hi: float) -> List[Cell]:
        """Obstacle cells covering ``row`` that intersect ``[x_lo, x_hi)``."""
        result: List[Cell] = []
        for x, idx in self._row_index[row]:
            cell = self.cells[idx]
            if cell.x >= x_hi:
                break
            if cell.right > x_lo:
                result.append(cell)
        return result

    # ------------------------------------------------------------------
    # Free-space summary (consumed by the occupancy-aware window planner)
    # ------------------------------------------------------------------
    def _row_summary(self, row: int) -> Tuple[List[float], float]:
        """``(prefix width sums, max obstacle width)`` of a row's index
        entries (lazily rebuilt when the row's obstacles changed)."""
        summary = self._row_prefix[row]
        if summary is None:
            prefix = [0.0]
            max_width = 0.0
            for _, idx in self._row_index[row]:
                width = self.cells[idx].width
                prefix.append(prefix[-1] + width)
                if width > max_width:
                    max_width = width
            summary = self._row_prefix[row] = (prefix, max_width)
        return summary

    def row_occupied_width(self, row: int, x_lo: float, x_hi: float) -> float:
        """Total obstacle width covering ``[x_lo, x_hi)`` of ``row``.

        Obstacles crossing the span boundary count only their overlap.
        Uses the per-row prefix sums, so the query is O(log n) in the
        row's obstacle count.  In a legal layout the result is exact;
        with overlapping obstacles (malformed fixed blockages) it never
        underestimates — cells starting inside the span contribute their
        full width even where they overlap — so the window planner can
        only be conservative, never optimistic.
        """
        if x_hi <= x_lo:
            return 0.0
        entries = self._row_index[row]
        if not entries:
            return 0.0
        prefix, max_width = self._row_summary(row)
        # Entries starting inside [x_lo, x_hi) form the run [i, j); sum
        # their widths via the prefix array, clipping only the last one
        # at x_hi (in a legal row no earlier run member can reach past
        # the last one's right edge; with overlaps this overestimates).
        j = bisect.bisect_left(entries, (x_hi,))
        i = bisect.bisect_left(entries, (x_lo,))
        occupied = 0.0
        if i < j:
            occupied = prefix[j] - prefix[i]
            occupied -= max(0.0, self.cells[entries[j - 1][1]].right - x_hi)
        # Boundary crossers start before x_lo; any of them satisfies
        # ``x > x_lo - max_width`` (their width bounds their reach), so
        # walking that bounded strip finds every one even when obstacles
        # overlap and rights are not monotone.  Each contributes its
        # exact clipped overlap.
        k = i
        while k > 0 and entries[k - 1][0] > x_lo - max_width:
            k -= 1
            cell = self.cells[entries[k][1]]
            lo = max(cell.x, x_lo)
            hi = min(cell.right, x_hi)
            if hi > lo:
                occupied += hi - lo
        return max(0.0, occupied)

    def row_free_capacity(self, row: int, x_lo: float, x_hi: float) -> float:
        """Free site capacity of ``row`` inside ``[x_lo, x_hi)``.

        The span is clipped to the row extent; the result is the clipped
        width minus the obstacle occupancy from the free-space summary.
        """
        span = self.rows[row].span
        x_lo = max(x_lo, span.lo)
        x_hi = min(x_hi, span.hi)
        if x_hi <= x_lo:
            return 0.0
        return max(0.0, (x_hi - x_lo) - self.row_occupied_width(row, x_lo, x_hi))

    def window_free_capacity(
        self, x_lo: float, x_hi: float, row_lo: int, row_hi: int
    ) -> float:
        """Total free site capacity of a window (``row_hi`` exclusive)."""
        row_lo = max(0, row_lo)
        row_hi = min(self.num_rows, row_hi)
        return sum(
            self.row_free_capacity(row, x_lo, x_hi) for row in range(row_lo, row_hi)
        )

    def mean_movable_width(self) -> float:
        """Mean width of the live movable cells (1.0 for an empty design)."""
        widths = [c.width for c in self.cells if not c.fixed and c.width > 0]
        if not widths:
            return 1.0
        return sum(widths) / len(widths)

    def free_space_fragmentation(self, min_gap: Optional[float] = None) -> float:
        """Fraction of free row capacity trapped in gaps below ``min_gap``.

        A long ECO stream chops the free space into slivers: the total
        free capacity stays roughly constant while the *usable* capacity
        (gaps wide enough to host a typical cell) erodes, which is what
        makes later insertions drift far from their desired positions.
        This metric quantifies that erosion — 0.0 means every free site
        sits in a gap at least ``min_gap`` wide, 1.0 means all free space
        is unusable slivers.  ``min_gap`` defaults to the mean live
        movable-cell width.  A design with no free space reports 0.0.

        Walks each row's obstacle index once, so it is O(total obstacle
        entries) — cheap enough to evaluate once per ECO batch.
        """
        if min_gap is None:
            min_gap = self.mean_movable_width()
        total_free = 0.0
        usable_free = 0.0
        for row in range(self.num_rows):
            span = self.rows[row].span
            cursor = span.lo
            for cell in self.obstacles_in_row(row):
                if cell.width <= 0:
                    # Tombstones and zero-width fixed markers occupy
                    # nothing; counting them would split a contiguous
                    # gap into phantom slivers.
                    continue
                gap = min(cell.x, span.hi) - cursor
                if gap > 0:
                    total_free += gap
                    if gap >= min_gap:
                        usable_free += gap
                cursor = max(cursor, min(cell.right, span.hi))
            gap = span.hi - cursor
            if gap > 0:
                total_free += gap
                if gap >= min_gap:
                    usable_free += gap
        if total_free <= 0:
            return 0.0
        return 1.0 - usable_free / total_free

    def iter_obstacle_pairs(self) -> Iterator[Tuple[Cell, Cell]]:
        """Yield pairs of horizontally adjacent obstacles in each row.

        Useful for invariant checks: in a legal layout no adjacent pair
        overlaps.
        """
        for row in range(self.num_rows):
            cells = self.obstacles_in_row(row)
            for left, right in zip(cells, cells[1:]):
                yield left, right

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def cells_intersecting(
        self, x_lo: float, x_hi: float, row_lo: int, row_hi: int, *, include_unlegalized: bool = True
    ) -> List[Cell]:
        """All cells whose rectangle intersects the given window.

        ``row_hi`` is exclusive.  This scans the full cell list and is only
        used for density estimation and reporting; the hot path uses the
        per-row obstacle index instead.
        """
        out = []
        for cell in self.cells:
            if not include_unlegalized and not (cell.fixed or cell.legalized):
                continue
            if cell.x < x_hi and cell.right > x_lo and cell.y < row_hi and cell.top > row_lo:
                out.append(cell)
        return out

    def window_density(self, x_lo: float, x_hi: float, row_lo: int, row_hi: int) -> float:
        """Cell-area density of a window, counting *all* cells.

        Used by the sliding-window processing ordering (paper Sec. 3.1.2):
        the density of a target cell's localRegion determines its priority
        among the cells of the sliding window.
        """
        x_lo = max(0.0, x_lo)
        x_hi = min(self.width, x_hi)
        row_lo = max(0, row_lo)
        row_hi = min(self.num_rows, row_hi)
        area = (x_hi - x_lo) * (row_hi - row_lo)
        if area <= 0:
            return 0.0
        occupied = 0.0
        for cell in self.cells_intersecting(x_lo, x_hi, row_lo, row_hi):
            dx = min(cell.right, x_hi) - max(cell.x, x_lo)
            dy = min(cell.top, float(row_hi)) - max(cell.y, float(row_lo))
            if dx > 0 and dy > 0:
                occupied += dx * dy
        return occupied / area

    def row_span_interval(self, row: int) -> Interval:
        """Horizontal extent of a row as an interval."""
        return self.rows[row].span

    # ------------------------------------------------------------------
    # Array-view export / writeback (multiprocess shared-memory sync)
    # ------------------------------------------------------------------
    def export_cell_arrays(self, columns: Dict[str, object]) -> int:
        """Stage every cell's numeric state into ``columns`` (writeback out).

        ``columns`` maps the field names of
        :data:`repro.kernels.shm.CELL_FIELDS` to writable array views of
        length ``len(self.cells)`` (typically slices of a shared-memory
        block).  The staging itself is vectorized in the numpy backend
        (:func:`repro.kernels.numpy_backend.stage_cell_arrays`) so it
        shares the dtype conventions of the ``minimize_batch`` /
        ``evaluate_batch`` pipelines.  Returns the number of cells
        staged.
        """
        from repro.kernels.numpy_backend import stage_cell_arrays

        stage_cell_arrays(self.cells, columns)
        return len(self.cells)

    def apply_cell_arrays(
        self,
        columns: Dict[str, object],
        n_cells: int,
        new_names: Sequence[str] = (),
    ) -> None:
        """Overwrite cell state from exported columns (writeback in).

        The inverse of :meth:`export_cell_arrays`: updates every
        existing cell's position, global-placement anchor, dimensions
        and fixed/legalized flags from the first ``n_cells`` entries of
        ``columns``, appends :class:`Cell` objects for entries beyond
        the current cell list (``new_names`` supplies their names, in
        order; missing names fall back to the ``c<index>`` default), and
        rebuilds the obstacle index.  Accepts numpy array views or plain
        lists; float64 columns round-trip python floats exactly, so an
        applied layout is bit-for-bit the exported one.
        """
        from repro.kernels.shm import FLAG_FIXED, FLAG_LEGALIZED

        def as_list(column) -> List[float]:
            values = column.tolist() if hasattr(column, "tolist") else list(column)
            if len(values) < n_cells:
                raise ValueError(
                    f"cell column holds {len(values)} entries, need {n_cells}"
                )
            return values

        if len(self.cells) > n_cells:
            raise ValueError(
                f"cannot shrink layout from {len(self.cells)} to {n_cells} cells"
            )
        xs = as_list(columns["x"])
        ys = as_list(columns["y"])
        gp_xs = as_list(columns["gp_x"])
        gp_ys = as_list(columns["gp_y"])
        widths = as_list(columns["width"])
        heights = as_list(columns["height"])
        flags = as_list(columns["flags"])
        for i, cell in enumerate(self.cells):
            bits = int(flags[i])
            cell.x = xs[i]
            cell.y = ys[i]
            cell.gp_x = gp_xs[i]
            cell.gp_y = gp_ys[i]
            cell.width = widths[i]
            cell.height = int(heights[i])
            cell.fixed = bool(bits & FLAG_FIXED)
            cell.legalized = bool(bits & FLAG_LEGALIZED)
        base = len(self.cells)
        for i in range(base, n_cells):
            bits = int(flags[i])
            self.cells.append(
                Cell(
                    index=i,
                    width=widths[i],
                    height=int(heights[i]),
                    gp_x=gp_xs[i],
                    gp_y=gp_ys[i],
                    x=xs[i],
                    y=ys[i],
                    fixed=bool(bits & FLAG_FIXED),
                    legalized=bool(bits & FLAG_LEGALIZED),
                    name=new_names[i - base] if i - base < len(new_names) else "",
                )
            )
        self.rebuild_index()

    # ------------------------------------------------------------------
    # Convenience / debug
    # ------------------------------------------------------------------
    def copy(self) -> "Layout":
        """Deep copy of the layout (cells are copied, indexes rebuilt)."""
        clone = Layout(
            self.num_rows,
            self.num_sites,
            (c.copy() for c in self.cells),
            site_width=self.site_width,
            row_height=self.row_height,
            name=self.name,
        )
        return clone

    def reset_positions(self) -> None:
        """Reset every movable cell back to its global placement position."""
        for cell in self.cells:
            if cell.fixed:
                continue
            cell.x = cell.gp_x
            cell.y = cell.gp_y
            cell.legalized = False
        self.rebuild_index()

    def summary(self) -> str:
        """One-line human readable summary of the design."""
        hist = self.height_histogram()
        hist_text = ", ".join(f"h{h}:{n}" for h, n in sorted(hist.items()))
        return (
            f"{self.name}: {len(self.movable_cells())} movable cells "
            f"({hist_text}), {len(self.fixed_cells())} fixed, "
            f"{self.num_rows} rows x {self.num_sites} sites, "
            f"density {self.density() * 100:.1f}%"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout({self.summary()})"
