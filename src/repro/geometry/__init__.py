"""Layout data model for mixed-cell-height legalization.

Coordinates follow the convention used throughout the MGL literature and
the FLEX paper:

* the horizontal axis is measured in **placement-site widths** — a legal
  cell must have an integer ``x`` coordinate;
* the vertical axis is measured in **standard row heights** — a legal
  cell must sit on an integer row index ``y`` and spans ``height`` rows;
* a cell's ``height`` is an integer number of rows (mixed-cell-height
  designs contain cells with height 1, 2, 3, 4, ...).

The central classes are:

:class:`Cell`
    A movable (or fixed) rectangular cell with a global-placement
    position and a current position.
:class:`Row`
    A placement row with a power-rail parity used for P/G alignment.
:class:`Layout`
    The chip: rows, sites, the cell list and spatial indexes.
:class:`Window` / :class:`LocalSegment` / :class:`LocalCell` /
:class:`LocalRegion`
    The MGL localisation terms of paper Section 2.2.
"""

from repro.geometry.interval import (
    Interval,
    intersect_interval_lists,
    intersect_many,
    merge_intervals,
    subtract_intervals,
)
from repro.geometry.cell import Cell
from repro.geometry.row import Row, PowerRail, pg_compatible
from repro.geometry.layout import Layout
from repro.geometry.region import LocalCell, LocalRegion, LocalSegment, Window

__all__ = [
    "Interval",
    "intersect_interval_lists",
    "intersect_many",
    "merge_intervals",
    "subtract_intervals",
    "Cell",
    "Row",
    "PowerRail",
    "pg_compatible",
    "Layout",
    "Window",
    "LocalSegment",
    "LocalCell",
    "LocalRegion",
]
