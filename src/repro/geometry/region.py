"""MGL localisation terms: window, localSegment, localCell, localRegion.

These classes mirror the terminology of paper Section 2.2 (and Fig. 3):

* a rectangular :class:`Window` is opened around the target cell;
* each row of the window contributes one :class:`LocalSegment` — the
  longest continuous run of unblocked placement sites in that row;
* every already-legalized cell that lies entirely inside the segments is
  a :class:`LocalCell`; a multi-row localCell consists of one *subcell*
  per row it covers;
* segments plus localCells form the :class:`LocalRegion`, the unit of
  work handed to FOP (on the FPGA in FLEX).

A :class:`LocalRegion` snapshots the obstacle cells' current positions so
that FOP can evaluate many candidate insertion points without mutating
the layout; the winning positions are committed afterwards by the
insert & update step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval


@dataclass(frozen=True)
class Window:
    """A rectangular search window around a target cell.

    ``row_hi`` is exclusive: the window covers rows ``row_lo .. row_hi-1``.
    """

    x_lo: float
    x_hi: float
    row_lo: int
    row_hi: int

    @property
    def width(self) -> float:
        """Horizontal extent in site units."""
        return max(0.0, self.x_hi - self.x_lo)

    @property
    def num_rows(self) -> int:
        """Number of rows covered by the window."""
        return max(0, self.row_hi - self.row_lo)

    @property
    def area(self) -> float:
        """Window area in site*row units."""
        return self.width * self.num_rows

    def rows(self) -> range:
        """Iterate over the covered row indexes."""
        return range(self.row_lo, self.row_hi)

    def expanded(self, dx: float, drows: int, layout_width: float, layout_rows: int) -> "Window":
        """Return a window grown by ``dx`` sites and ``drows`` rows per side,
        clipped to the chip boundary."""
        return Window(
            x_lo=max(0.0, self.x_lo - dx),
            x_hi=min(layout_width, self.x_hi + dx),
            row_lo=max(0, self.row_lo - drows),
            row_hi=min(layout_rows, self.row_hi + drows),
        )

    def contains_rect(self, x: float, y: float, w: float, h: float) -> bool:
        """True when the rectangle ``[x, x+w) x [y, y+h)`` fits inside the window."""
        return (
            x >= self.x_lo - 1e-9
            and x + w <= self.x_hi + 1e-9
            and y >= self.row_lo - 1e-9
            and y + h <= self.row_hi + 1e-9
        )


@dataclass(frozen=True)
class LocalSegment:
    """The longest continuous unblocked span of a row inside the window."""

    row: int
    interval: Interval

    @property
    def x_lo(self) -> float:
        return self.interval.lo

    @property
    def x_hi(self) -> float:
        return self.interval.hi

    @property
    def length(self) -> float:
        return self.interval.length


@dataclass
class LocalCell:
    """A legalized cell fully contained in the localRegion's segments.

    Attributes
    ----------
    local_index:
        Index of this localCell inside its :class:`LocalRegion`.
    cell:
        Reference to the underlying layout :class:`Cell` (its current
        position is *not* read during FOP; the snapshot fields below are).
    x:
        Snapshot of the cell's x position when the region was built.  FOP
        works on this snapshot; insert & update writes results back.
    rows:
        Row indexes covered by the cell (one subcell per entry).
    """

    local_index: int
    cell: Cell
    x: float
    rows: Tuple[int, ...]

    @property
    def width(self) -> float:
        return self.cell.width

    @property
    def height(self) -> int:
        return self.cell.height

    @property
    def right(self) -> float:
        """Right edge of the snapshot position."""
        return self.x + self.cell.width

    @property
    def gp_x(self) -> float:
        return self.cell.gp_x

    @property
    def num_subcells(self) -> int:
        """Number of subcells (equals the cell height in row units)."""
        return len(self.rows)


@dataclass
class LocalRegion:
    """The localised legalization problem for one target cell.

    The region is a *snapshot*: FOP never mutates the layout, it works on
    the ``x`` coordinates stored in the localCells and returns proposed
    positions that the insert & update step commits.
    """

    window: Window
    target: Cell
    segments: Dict[int, LocalSegment] = field(default_factory=dict)
    local_cells: List[LocalCell] = field(default_factory=list)
    density: float = 0.0
    # Per-row localCell ordering: row -> list of local_index sorted by x.
    row_cells: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_segment(self, segment: LocalSegment) -> None:
        """Register the segment of one row."""
        self.segments[segment.row] = segment
        self.row_cells.setdefault(segment.row, [])

    def add_local_cell(self, cell: Cell) -> LocalCell:
        """Snapshot a legalized cell into the region and index its subcells."""
        rows = tuple(r for r in cell.rows_covered() if r in self.segments)
        local = LocalCell(local_index=len(self.local_cells), cell=cell, x=cell.x, rows=rows)
        self.local_cells.append(local)
        for row in rows:
            self.row_cells.setdefault(row, []).append(local.local_index)
        return local

    def finalize(self) -> None:
        """Sort per-row subcell lists by x.  Call once after construction."""
        for row, indices in self.row_cells.items():
            indices.sort(key=lambda i: (self.local_cells[i].x, i))

    # ------------------------------------------------------------------
    # Queries used by FOP / shifting
    # ------------------------------------------------------------------
    def rows(self) -> List[int]:
        """Sorted list of rows that have a segment."""
        return sorted(self.segments.keys())

    def segment(self, row: int) -> LocalSegment:
        """Segment of ``row``; raises ``KeyError`` when the row has none."""
        return self.segments[row]

    def cells_in_row(self, row: int) -> List[LocalCell]:
        """LocalCells with a subcell in ``row``, sorted by x."""
        return [self.local_cells[i] for i in self.row_cells.get(row, [])]

    def cell_indices_in_row(self, row: int) -> List[int]:
        """Local indices of the cells with a subcell in ``row``, sorted by x."""
        return list(self.row_cells.get(row, []))

    def sorted_by_x(self, *, descending: bool = False) -> List[LocalCell]:
        """All localCells sorted by their snapshot x (the SACS pre-sort)."""
        return sorted(self.local_cells, key=lambda lc: (lc.x, lc.local_index), reverse=descending)

    def free_area(self) -> float:
        """Total free segment area minus the localCells' area."""
        seg_area = sum(seg.length for seg in self.segments.values())
        cell_area = sum(lc.width * len(lc.rows) for lc in self.local_cells)
        return seg_area - cell_area

    def occupied_fraction(self) -> float:
        """LocalCell area (plus the target) over total segment area."""
        seg_area = sum(seg.length for seg in self.segments.values())
        if seg_area <= 0:
            return float("inf")
        cell_area = sum(lc.width * len(lc.rows) for lc in self.local_cells)
        return (cell_area + self.target.area) / seg_area

    def total_subcells(self) -> int:
        """Total number of subcells in the region (Fig. 6 traversal unit)."""
        return sum(len(v) for v in self.row_cells.values())

    def overlaps_window(self, other: "LocalRegion") -> bool:
        """True when the two regions' windows intersect.

        Used by the FLEX ordering / ping-pong preloading logic: the next
        target's region can be preloaded only when it does not overlap the
        currently processed one (paper Sec. 3.1.2).
        """
        a, b = self.window, other.window
        return a.x_lo < b.x_hi and b.x_lo < a.x_hi and a.row_lo < b.row_hi and b.row_lo < a.row_hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalRegion(target={self.target.name}, rows={len(self.segments)}, "
            f"localCells={len(self.local_cells)}, density={self.density:.2f})"
        )
