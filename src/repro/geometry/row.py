"""Placement rows and power/ground (P/G) rail alignment rules.

Row-based standard-cell designs alternate VDD and VSS rails between rows.
Single-row (odd-height) cells can always be flipped to match the rail of
their row, but even-height cells have identical rails at their top and
bottom edge, so their bottom row must have a specific rail parity (the
"P/G alignment constraint" of Fig. 1 in the paper).  The helper
:func:`pg_compatible` encodes this rule and is used by pre-move, by
insertion-point enumeration and by the legality checker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry.interval import Interval


class PowerRail(enum.Enum):
    """Rail type at the bottom edge of a row."""

    VDD = "VDD"
    VSS = "VSS"

    def flipped(self) -> "PowerRail":
        """Return the opposite rail."""
        return PowerRail.VSS if self is PowerRail.VDD else PowerRail.VDD


@dataclass(frozen=True)
class Row:
    """A placement row.

    Attributes
    ----------
    index:
        Row index; the row occupies ``[index, index + 1)`` in row units.
    x_lo, x_hi:
        Horizontal extent of the row in site units.
    bottom_rail:
        The power rail at the bottom edge of the row.  Rows alternate
        rails: row ``i`` has VSS at its bottom when ``i`` is even (the
        ICCAD-2017 convention) and VDD otherwise.
    """

    index: int
    x_lo: float
    x_hi: float
    bottom_rail: PowerRail

    @property
    def y(self) -> float:
        """Bottom y coordinate of the row in row units."""
        return float(self.index)

    @property
    def num_sites(self) -> int:
        """Number of placement sites in the row."""
        return int(round(self.x_hi - self.x_lo))

    @property
    def span(self) -> Interval:
        """Horizontal extent of the row as an :class:`Interval`."""
        return Interval(self.x_lo, self.x_hi)

    @staticmethod
    def default_rail(index: int) -> PowerRail:
        """Rail at the bottom of row ``index`` under the alternating scheme."""
        return PowerRail.VSS if index % 2 == 0 else PowerRail.VDD


def pg_compatible(cell_height: int, bottom_row_index: int) -> bool:
    """Return True when a cell of the given height may start on a row.

    Odd-height cells have different rails at their top and bottom edges,
    so they can always be flipped to match whichever rail their bottom row
    provides: any row is acceptable.  Even-height cells have the same rail
    at both edges and therefore must be anchored on rows of a fixed
    parity; following the ICCAD-2017 convention we require even-height
    cells to start on even rows (VSS-bottom rows).
    """
    if cell_height % 2 == 1:
        return True
    return bottom_row_index % 2 == 0


def legal_bottom_rows(cell_height: int, num_rows: int) -> range:
    """Iterate the bottom-row indexes on which a cell of a height may start.

    The cell must fit vertically (``bottom + height <= num_rows``) and
    satisfy the P/G alignment rule.  For odd heights this is simply
    ``range(0, num_rows - height + 1)``; even heights step by 2.
    """
    last = num_rows - cell_height
    if last < 0:
        return range(0)
    if cell_height % 2 == 1:
        return range(0, last + 1)
    return range(0, last + 1, 2)


def nearest_legal_row(y: float, cell_height: int, num_rows: int) -> int:
    """Snap a continuous y coordinate to the nearest legal bottom row.

    Used by the pre-move step (paper Fig. 3(e), step a): cells are
    temporarily positioned in the nearest designated row, tolerating
    overlaps, before the main legalization loop runs.

    Raises
    ------
    ValueError
        If the cell cannot fit vertically anywhere on the chip.
    """
    candidates = legal_bottom_rows(cell_height, num_rows)
    if len(candidates) == 0:
        raise ValueError(
            f"cell of height {cell_height} does not fit in a chip with {num_rows} rows"
        )
    target = int(round(y))
    lo, hi = candidates[0], candidates[-1]
    step = 2 if cell_height % 2 == 0 else 1
    clamped = min(max(target, lo), hi)
    if step == 1:
        return clamped
    # Even-height cell: choose the closer even row to the original y.
    below = clamped - (clamped - lo) % step
    above = below + step
    if above > hi:
        return below
    return below if abs(below - y) <= abs(above - y) else above
