"""CPU + FPGA co-execution timeline of FLEX.

FLEX overlaps host and device work: while the FPGA runs FOP for target
``i``, the CPU commits the update of target ``i-1`` and builds (and, when
the regions do not overlap, preloads into the free ping-pong RAM) the
region of target ``i+1``.  The visible communication cost therefore
reduces to the transfer of the *first* region (paper Sec. 5.3).

:class:`CoExecutionTimeline` replays this schedule from per-target CPU
times, per-target FPGA times and per-target transfer times, producing the
total wall-clock time and its breakdown.  The same machinery also models
the Fig. 10 alternative where insert & update runs on the FPGA (the
update time moves to the device and its results must be shipped back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class TimelineEntry:
    """Per-target work items fed to the co-execution schedule (seconds)."""

    cell_index: int
    cpu_prep: float
    """Host time to build (and serialise) the target's localRegion."""
    transfer_in: float
    """Host-to-device transfer time of the region data."""
    fpga_compute: float
    """Device time of the work assigned to the FPGA for this target."""
    transfer_out: float
    """Device-to-host transfer time of the results."""
    cpu_post: float
    """Host time to commit the results (insert & update, when on the CPU)."""
    preloadable: bool = True
    """Whether the region could be preloaded while the previous target ran."""


@dataclass
class TimelineResult:
    """Outcome of the co-execution schedule (seconds)."""

    total: float
    serial_front: float
    fpga_busy: float
    cpu_busy: float
    visible_transfer: float
    fpga_idle: float
    cpu_idle: float
    per_target_finish: List[float] = field(default_factory=list)

    @property
    def fpga_utilisation(self) -> float:
        span = self.total - self.serial_front
        if span <= 0:
            return 1.0
        return min(1.0, self.fpga_busy / span)


class CoExecutionTimeline:
    """Replays the FLEX host/device schedule.

    Parameters
    ----------
    serial_front_seconds:
        Time spent before the pipelined phase starts: pre-move and the
        initial processing-order computation.
    prep_depends_on_results:
        When False (FLEX's partition: insert & update on the host) the CPU
        builds the next target's region *while* the FPGA processes the
        current one, so host work overlaps device work.  When True (the
        Fig. 10 alternative with insert & update on the device) the host
        must receive the device's position updates before it can build the
        next region, which serialises the two sides — the "interference
        with steps b) and c)" the paper describes.
    """

    def __init__(
        self,
        *,
        serial_front_seconds: float = 0.0,
        prep_depends_on_results: bool = False,
    ) -> None:
        self.serial_front_seconds = serial_front_seconds
        self.prep_depends_on_results = prep_depends_on_results

    # ------------------------------------------------------------------
    def run(self, entries: Sequence[TimelineEntry]) -> TimelineResult:
        """Compute the pipelined makespan of the per-target entries.

        The schedule enforces, for target ``i``:

        * the FPGA can start once the device is free, the region data is on
          the card, and the host has finished building that region;
        * when the region was preloaded (``preloadable`` and not the first
          target) its transfer overlapped the previous FPGA run and does
          not delay the device;
        * the host commits the results after the FPGA finishes and the
          (small) result transfer completes; commits never block the device
          unless ``prep_depends_on_results`` is set.
        """
        front = self.serial_front_seconds
        fpga_free = front
        prep_free = front  # host cursor for region building (prioritised)
        results_ready = front  # when the previous target's results reached the host
        fpga_busy = 0.0
        cpu_busy = 0.0
        visible_transfer = 0.0
        post_backlog = 0.0
        finishes: List[float] = []

        for i, entry in enumerate(entries):
            # Host builds the region (step c); with update on the device the
            # build must additionally wait for the previous results.
            prep_start = prep_free
            if self.prep_depends_on_results:
                prep_start = max(prep_start, results_ready)
            prep_done = prep_start + entry.cpu_prep
            prep_free = prep_done
            cpu_busy += entry.cpu_prep

            # Region transfer: hidden by ping-pong preloading except for the
            # first region or when the next region overlaps the current one.
            if i == 0 or not entry.preloadable:
                data_ready = prep_done + entry.transfer_in
                visible_transfer += entry.transfer_in
            else:
                data_ready = prep_done

            start = max(fpga_free, data_ready)
            fpga_free = start + entry.fpga_compute
            fpga_busy += entry.fpga_compute

            # Result transfer + host-side commit (step e).  Commits are
            # absorbed into the host's idle time while the device runs, so
            # they only extend the makespan through the total host load.
            # Result transfers overlap the next region's compute and are
            # therefore not counted as visible communication.
            results_ready = fpga_free + entry.transfer_out
            cpu_busy += entry.cpu_post
            post_backlog += entry.cpu_post
            finishes.append(results_ready + entry.cpu_post)

        cpu_total = front + cpu_busy
        device_total = fpga_free
        if entries:
            # The last target's results must still be committed.
            device_total = results_ready + entries[-1].cpu_post
        total = max(device_total, cpu_total)
        span = max(0.0, total - front)
        return TimelineResult(
            total=total,
            serial_front=front,
            fpga_busy=fpga_busy,
            cpu_busy=cpu_busy,
            visible_transfer=visible_transfer,
            fpga_idle=max(0.0, span - fpga_busy),
            cpu_idle=max(0.0, span - cpu_busy),
            per_target_finish=finishes,
        )

    # ------------------------------------------------------------------
    def run_serialized(self, entries: Sequence[TimelineEntry]) -> TimelineResult:
        """Makespan without any host/device overlap (for ablations)."""
        total = self.serial_front_seconds
        fpga_busy = cpu_busy = transfer = 0.0
        finishes = []
        for entry in entries:
            total += (
                entry.cpu_prep
                + entry.transfer_in
                + entry.fpga_compute
                + entry.transfer_out
                + entry.cpu_post
            )
            fpga_busy += entry.fpga_compute
            cpu_busy += entry.cpu_prep + entry.cpu_post
            transfer += entry.transfer_in + entry.transfer_out
            finishes.append(total)
        span = max(0.0, total - self.serial_front_seconds)
        return TimelineResult(
            total=total,
            serial_front=self.serial_front_seconds,
            fpga_busy=fpga_busy,
            cpu_busy=cpu_busy,
            visible_transfer=transfer,
            fpga_idle=max(0.0, span - fpga_busy),
            cpu_idle=max(0.0, span - cpu_busy),
            per_target_finish=finishes,
        )
