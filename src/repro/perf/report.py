"""Reporting helpers: speedup summaries and ASCII tables.

The experiment harness prints its results as plain-text tables shaped
like the paper's tables and figure series so that paper-vs-measured
comparisons are easy to eyeball (and to paste into EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
    min_width: int = 6,
) -> str:
    """Format a list of rows as an aligned ASCII table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in rendered:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


@dataclass
class SpeedupReport:
    """Per-design runtime and quality comparison against baselines.

    ``runtimes`` maps a configuration label to modeled seconds;
    ``qualities`` maps it to the measured average displacement.  The FLEX
    entry is identified by ``ours_label``.
    """

    design: str
    runtimes: Dict[str, float] = field(default_factory=dict)
    qualities: Dict[str, float] = field(default_factory=dict)
    ours_label: str = "flex"

    def add(self, label: str, runtime_s: float, quality: Optional[float] = None) -> None:
        self.runtimes[label] = runtime_s
        if quality is not None:
            self.qualities[label] = quality

    def speedup_over(self, label: str) -> float:
        """Speedup of the FLEX configuration over ``label``."""
        ours = self.runtimes.get(self.ours_label)
        other = self.runtimes.get(label)
        if ours is None or other is None or ours <= 0:
            return float("nan")
        return other / ours

    def quality_ratio_over(self, label: str) -> float:
        """Quality ratio (other / ours); > 1 means FLEX has lower AveDis."""
        ours = self.qualities.get(self.ours_label)
        other = self.qualities.get(label)
        if ours is None or other is None or ours <= 0:
            return float("nan")
        return other / ours

    def row(self, baseline_labels: Sequence[str]) -> List[object]:
        """One Table-1-style row: qualities, runtimes and speedups."""
        row: List[object] = [self.design]
        for label in list(baseline_labels) + [self.ours_label]:
            row.append(self.qualities.get(label, float("nan")))
            row.append(self.runtimes.get(label, float("nan")))
        for label in baseline_labels:
            row.append(self.speedup_over(label))
        return row


def shard_summary(trace) -> str:
    """One-line host-parallelism summary of a legalization trace.

    Sequential backends report ``workers=1``; the ``multiprocess``
    backend additionally reports its partition statistics (shard layout,
    speculation rejects, whether the deterministic sequential re-run was
    taken) so that worker-count sweeps can be read off run reports.
    """
    stats = trace.shard_stats
    if not stats:
        return f"backend={trace.kernel_backend} workers={trace.worker_count}"
    parts = [
        f"backend={trace.kernel_backend}",
        f"workers={stats.get('workers', trace.worker_count)}",
        f"inner={stats.get('inner_backend', '?')}",
        f"mode={stats.get('mode', '?')}",
    ]
    if "n_components" in stats:
        parts.append(f"components={stats['n_components']}")
        shard_targets = stats.get("shard_targets") or []
        parts.append(
            "shards=" + "/".join(str(s) for s in shard_targets if s)
            if any(shard_targets)
            else "shards=-"
        )
    if stats.get("mode") == "wavefront":
        parts.append(
            f"rejects={stats.get('speculation_rejects', 0)}/{stats.get('commits', 0)}"
        )
    if stats.get("escaped_targets"):
        parts.append(f"escaped={stats['escaped_targets']}")
    if stats.get("sequential_rerun"):
        parts.append("sequential-rerun")
    return " ".join(parts)


def feasibility_summary(trace) -> str:
    """One-line window-planning feasibility summary of a trace.

    Reports the retry-0 feasibility rate (targets whose planned window
    admitted them without any expansion retry), the total expansion
    retries paid, the planner growth steps spent buying that rate, and
    the whole-chip fallbacks — the counters the occupancy-aware window
    planner is meant to move.
    """
    n = len(trace.targets)
    return (
        f"targets={n} "
        f"retry0_feasible={trace.retry0_feasible_targets}"
        f" ({trace.retry0_feasibility_rate * 100.0:.1f}%) "
        f"retries_total={trace.retries_total} "
        f"planner_growths={trace.planner_growths_total} "
        f"fallbacks={trace.fallback_targets}"
    )


def incremental_summary(stats) -> str:
    """One-line summary of an incremental (ECO) legalization call.

    Reports how much of the design the engine actually re-legalized: the
    dirty-set size and its direct/overlap split, the reused placements,
    the rows whose index entries were invalidated, and whether the call
    fell back to a full re-legalization because dirtiness exceeded the
    threshold.
    """
    line = (
        f"mode={stats.mode} "
        f"deltas={stats.deltas_applied} "
        f"dirty={stats.dirty_total}/{stats.num_movable}"
        f" ({stats.dirty_fraction * 100.0:.1f}%:"
        f" {stats.dirty_direct} direct + {stats.dirty_overlap} overlap) "
        f"reused={stats.reused_cells} "
        f"rows_touched={stats.rows_touched} "
        f"AveDis={stats.avedis:.4f}"
        f" (drift {stats.avedis_drift * 100.0:+.1f}%) "
        f"wall={stats.wall_seconds:.3f}s"
    )
    if stats.fragmentation_tracked:
        line += f" frag={stats.fragmentation:.3f}"
    if stats.repack_reason:
        line += f" repack={stats.repack_reason} (total {stats.repacks_total})"
    if stats.mode == "full":
        line += f" (dirty fraction exceeded threshold {stats.full_threshold:.2f})"
    return line


def span_timeline(events: Sequence[dict]) -> List[dict]:
    """Fold span events (``repro.obs`` JSONL records) into per-phase rows.

    Groups the ``ev == "span"`` records by name and returns one row per
    phase — count, total/mean/p95/max seconds, share of the total span
    time — sorted by total descending.  Point events and records without
    a duration are ignored.  This is the aggregation behind
    ``repro trace``.
    """
    by_name: Dict[str, List[float]] = {}
    for record in events:
        if record.get("ev") != "span":
            continue
        dur = record.get("dur_s")
        if not isinstance(dur, (int, float)):
            continue
        by_name.setdefault(record.get("name", "?"), []).append(float(dur))
    grand_total = sum(sum(durs) for durs in by_name.values())
    rows = []
    for name, durs in by_name.items():
        durs.sort()
        total = sum(durs)
        p95 = durs[min(len(durs) - 1, int(0.95 * len(durs)))]
        rows.append(
            {
                "name": name,
                "count": len(durs),
                "total_s": total,
                "mean_s": total / len(durs),
                "p95_s": p95,
                "max_s": durs[-1],
                "share": total / grand_total if grand_total > 0 else 0.0,
            }
        )
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def span_timeline_table(events: Sequence[dict]) -> str:
    """Render :func:`span_timeline` rows as an aligned ASCII table."""
    rows = span_timeline(events)
    return format_table(
        ["phase", "count", "total_s", "mean_s", "p95_s", "max_s", "share"],
        [
            [
                row["name"],
                row["count"],
                row["total_s"],
                row["mean_s"],
                row["p95_s"],
                row["max_s"],
                f"{row['share'] * 100.0:.1f}%",
            ]
            for row in rows
        ],
        float_format="{:.4f}",
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean ignoring NaNs and non-positive entries."""
    import math

    clean = [v for v in values if v > 0 and v == v]
    if not clean:
        return float("nan")
    return math.exp(sum(math.log(v) for v in clean) / len(clean))
