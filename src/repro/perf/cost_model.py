"""Single-thread CPU cost model.

Converts the hardware-independent work counters of a
:class:`~repro.perf.counters.LegalizationTrace` into an estimated
single-thread CPU runtime.  The per-operation costs are engineering
estimates for a ~3 GHz out-of-order core running the pointer-heavy MGL
implementation (Ripple-style C++): tens of nanoseconds per touched cell
or breakpoint, which includes the cache misses caused by the irregular
access patterns the paper highlights.

The absolute values only set the overall time scale; every experiment in
the harness reports *ratios* between configurations evaluated with the
same constants, which is also how the paper reports its results.  All
constants can be overridden through :class:`CpuCostParameters` for
sensitivity studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.perf.counters import FOP_STAGES, LegalizationTrace


@dataclass(frozen=True)
class CpuCostParameters:
    """Per-operation CPU costs, in nanoseconds."""

    premove_per_cell_ns: float = 150.0
    """Snapping one cell to its nearest row/site (step a)."""

    ordering_per_comparison_ns: float = 12.0
    """One comparison inside the processing-order sort (step b)."""

    region_per_word_ns: float = 10.0
    """Building the localRegion, per descriptor word produced (step c)."""

    shift_per_visit_ns: float = 7.0
    """One subcell visit of cell shifting (compare + conditional move on
    cached row data; the multi-pass re-traversals are what make this the
    dominant FOP cost, not the per-visit price)."""

    sort_per_item_log_ns: float = 6.0
    """Breakpoint sorting, per ``item * log2(items)`` unit."""

    bp_per_item_ns: float = 4.0
    """Merging, slope accumulation and value computation, per breakpoint."""

    insertion_point_overhead_ns: float = 60.0
    """Fixed overhead per insertion point (loop control, bound checks)."""

    target_overhead_ns: float = 400.0
    """Fixed overhead per target cell (window setup, bookkeeping)."""

    update_per_move_ns: float = 120.0
    """Committing one moved cell during insert & update (step e)."""


@dataclass
class CpuTimeBreakdown:
    """Modeled single-thread CPU time split by MGL step (seconds)."""

    premove: float = 0.0
    ordering: float = 0.0
    region: float = 0.0
    fop: float = 0.0
    update: float = 0.0
    fop_stages: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.premove + self.ordering + self.region + self.fop + self.update

    @property
    def cpu_side_without_fop(self) -> float:
        """Time of the steps FLEX keeps on the CPU (a, b, c, e)."""
        return self.premove + self.ordering + self.region + self.update

    def as_dict(self) -> Dict[str, float]:
        out = {
            "premove": self.premove,
            "ordering": self.ordering,
            "region": self.region,
            "fop": self.fop,
            "update": self.update,
            "total": self.total,
        }
        out.update({f"fop.{k}": v for k, v in self.fop_stages.items()})
        return out


class CpuCostModel:
    """Estimates single-thread CPU runtimes from a legalization trace."""

    def __init__(self, params: Optional[CpuCostParameters] = None) -> None:
        self.params = params or CpuCostParameters()

    # ------------------------------------------------------------------
    def fop_stage_seconds(self, trace: LegalizationTrace) -> Dict[str, float]:
        """Modeled CPU seconds per FOP stage (drives Fig. 2(g))."""
        p = self.params
        seconds = {stage: 0.0 for stage in FOP_STAGES}
        for ip in trace.iter_insertion_points():
            n_bp = max(1, ip.n_breakpoints)
            n_merged = max(1, ip.n_merged_breakpoints)
            seconds["cell_shift"] += ip.shift_cell_visits * p.shift_per_visit_ns
            seconds["sort_bp"] += n_bp * max(1.0, math.log2(n_bp)) * p.sort_per_item_log_ns
            seconds["merge_bp"] += n_bp * p.bp_per_item_ns
            seconds["sum_slopesR"] += n_merged * p.bp_per_item_ns
            seconds["sum_slopesL"] += n_merged * p.bp_per_item_ns
            seconds["calculate_value"] += n_merged * p.bp_per_item_ns
        return {k: v * 1e-9 for k, v in seconds.items()}

    def breakdown(self, trace: LegalizationTrace) -> CpuTimeBreakdown:
        """Full per-step CPU time breakdown of a run."""
        p = self.params
        out = CpuTimeBreakdown()
        out.premove = trace.premove_cells * p.premove_per_cell_ns * 1e-9
        out.ordering = trace.ordering_ops * p.ordering_per_comparison_ns * 1e-9
        out.region = trace.total_transfer_words * p.region_per_word_ns * 1e-9
        out.fop_stages = self.fop_stage_seconds(trace)
        overheads = (
            trace.total_insertion_points * p.insertion_point_overhead_ns
            + len(trace.targets) * p.target_overhead_ns
        ) * 1e-9
        out.fop = sum(out.fop_stages.values()) + overheads
        out.update = (
            (trace.total_update_moves + len(trace.targets)) * p.update_per_move_ns * 1e-9
        )
        return out

    def total_seconds(self, trace: LegalizationTrace) -> float:
        """Modeled single-thread CPU runtime of the whole run."""
        return self.breakdown(trace).total

    # ------------------------------------------------------------------
    def per_target_host_times(self, trace: LegalizationTrace) -> Dict[int, Dict[str, float]]:
        """Per-target CPU times of the host-side steps (c) and (e).

        Used by the co-execution timeline: while the FPGA runs FOP for
        target ``i`` the CPU builds the region of target ``i+1`` and
        commits the update of target ``i-1``.
        """
        p = self.params
        out: Dict[int, Dict[str, float]] = {}
        for work in trace.targets:
            region_s = work.region_transfer_words * p.region_per_word_ns * 1e-9
            update_s = (work.update_moved_cells + 1) * p.update_per_move_ns * 1e-9
            fop_s = 0.0
            for ip in work.insertion_points:
                n_bp = max(1, ip.n_breakpoints)
                n_merged = max(1, ip.n_merged_breakpoints)
                fop_s += (
                    ip.shift_cell_visits * p.shift_per_visit_ns
                    + n_bp * max(1.0, math.log2(n_bp)) * p.sort_per_item_log_ns
                    + n_bp * p.bp_per_item_ns
                    + 3 * n_merged * p.bp_per_item_ns
                    + p.insertion_point_overhead_ns
                ) * 1e-9
            fop_s += p.target_overhead_ns * 1e-9
            out[work.cell_index] = {"region": region_s, "update": update_s, "fop": fop_s}
        return out
