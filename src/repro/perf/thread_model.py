"""Thread-scaling model of the multi-threaded CPU legalizer (TCAD'22).

The multi-threaded MGL implementation processes several unlegalized cells
concurrently, but threads must synchronise whenever their localRegions
might interact, and the serial steps (pre-move, ordering, commit) do not
scale.  The paper reports the resulting scaling directly (Fig. 2(a)):
two threads only cut runtime by ~20 %, and the speedup saturates around
1.8x at eight threads.

Rather than inventing a synthetic parallel implementation we encode the
published scaling curve and interpolate it; this is exactly the quantity
the comparisons in Table 1 and Sec. 5.4 rely on (the TCAD'22 baseline
columns are the 8-thread runtimes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.perf.cost_model import CpuCostModel
from repro.perf.counters import LegalizationTrace


#: Speedup over a single thread, as published in Fig. 2(a): 2 threads give
#: a 20 % runtime reduction, saturation at ~1.8x from 8 threads onwards.
PUBLISHED_THREAD_SPEEDUP: Dict[int, float] = {
    1: 1.00,
    2: 1.25,
    4: 1.55,
    8: 1.80,
    10: 1.82,
    16: 1.83,
}


def interpolate_speedup(threads: int, table: Optional[Dict[int, float]] = None) -> float:
    """Piecewise-linear interpolation of the published thread-scaling curve."""
    table = table or PUBLISHED_THREAD_SPEEDUP
    if threads <= 0:
        raise ValueError("thread count must be positive")
    keys = sorted(table)
    if threads in table:
        return table[threads]
    if threads <= keys[0]:
        return table[keys[0]]
    if threads >= keys[-1]:
        return table[keys[-1]]
    for lo, hi in zip(keys, keys[1:]):
        if lo < threads < hi:
            frac = (threads - lo) / (hi - lo)
            return table[lo] + frac * (table[hi] - table[lo])
    return table[keys[-1]]  # pragma: no cover - unreachable


@dataclass
class MultiThreadModel:
    """Runtime model of the TCAD'22 multi-threaded CPU legalizer.

    Attributes
    ----------
    threads:
        Number of worker threads (the paper's baseline uses 8 on a Xeon).
    cost_model:
        The single-thread cost model used as the 1-thread reference.
    speedup_table:
        Thread-scaling curve (defaults to the published Fig. 2(a) data).
    """

    threads: int = 8
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)
    speedup_table: Dict[int, float] = field(default_factory=lambda: dict(PUBLISHED_THREAD_SPEEDUP))

    def speedup(self, threads: Optional[int] = None) -> float:
        """Speedup over single-thread execution at the given thread count."""
        return interpolate_speedup(threads or self.threads, self.speedup_table)

    def runtime_seconds(self, trace: LegalizationTrace, threads: Optional[int] = None) -> float:
        """Modeled runtime of the multi-threaded CPU legalizer."""
        single = self.cost_model.total_seconds(trace)
        return single / self.speedup(threads)

    def scaling_curve(self, trace: LegalizationTrace, thread_counts=(1, 2, 4, 8, 10)) -> Dict[int, float]:
        """Runtime at each thread count — the data behind Fig. 2(a)."""
        single = self.cost_model.total_seconds(trace)
        return {t: single / self.speedup(t) for t in thread_counts}
