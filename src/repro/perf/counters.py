"""Work counters recorded while a legalizer runs.

Every legalizer in this repository (MGL, FLEX, and the baselines built on
them) records *what it did* rather than how long the Python interpreter
took to do it: the number of insertion points evaluated per target cell,
the number of subcell traversals performed by cell shifting, the number
of breakpoints pushed through the FOP pipeline, and so on.  These counts
are hardware-independent; the CPU cost models and the FPGA cycle models
consume them to produce the modeled runtimes reported in the experiment
harness.

The granularity mirrors the decomposition of the paper:

* :class:`InsertionPointWork` — one entry per insertion point evaluated
  inside FOP (paper Fig. 3(e), the body of loop3);
* :class:`TargetCellWork` — one entry per legalized target cell, covering
  steps (b)–(e) for that cell;
* :class:`LegalizationTrace` — the whole run, including the serial
  pre-move step (a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


#: The six operations inside the FOP inner loop, in paper order (Fig. 3(e)).
FOP_STAGES: Tuple[str, ...] = (
    "cell_shift",
    "sort_bp",
    "merge_bp",
    "sum_slopesR",
    "sum_slopesL",
    "calculate_value",
)


@dataclass
class InsertionPointWork:
    """Work performed to evaluate one insertion point.

    Attributes
    ----------
    n_local_cells:
        Number of localCells in the region when the point was evaluated.
    n_subcells:
        Total number of subcells in the region (one per row a localCell
        covers); the traversal unit of the original cell shifting.
    shift_passes:
        Number of full-region passes the *original* multi-pass cell
        shifting algorithm needed (always 1 for SACS).
    shift_cell_visits:
        Number of cell/subcell visits performed by the shifting algorithm
        actually used (original: ``passes * n_subcells``; SACS: one visit
        per localCell plus one per touched segment pointer).
    chain_left / chain_right:
        Number of cells that actually receive a left-move / right-move
        threshold (the cells whose displacement curves are emitted).
    n_breakpoints:
        Number of elementary breakpoint pieces pushed through the
        sort/merge/slope/value pipeline.
    n_merged_breakpoints:
        Number of distinct breakpoint x-coordinates after merging.
    sort_size:
        Number of localCells pre-sorted by SACS (0 when the original
        algorithm is used; the sort is shared across the insertion points
        of one region, so only the first point of a region reports it).
    multirow_accesses:
        Number of accesses to localCells spanning more than one row
        during shifting (drives the BRAM bandwidth model).
    tall_accesses:
        Number of accesses to localCells taller than three rows (drives
        the Fig. 9 bandwidth-optimisation benefit).
    feasible:
        Whether the insertion point admitted any legal target position.
    """

    n_local_cells: int = 0
    n_subcells: int = 0
    shift_passes: int = 0
    shift_cell_visits: int = 0
    chain_left: int = 0
    chain_right: int = 0
    n_breakpoints: int = 0
    n_merged_breakpoints: int = 0
    sort_size: int = 0
    multirow_accesses: int = 0
    tall_accesses: int = 0
    feasible: bool = True

    @property
    def chain_total(self) -> int:
        """Total number of shifted (affected) cells."""
        return self.chain_left + self.chain_right


@dataclass
class TargetCellWork:
    """Work performed to legalize one target cell (steps b–e)."""

    cell_index: int
    height: int = 1
    width: float = 1.0
    n_local_cells: int = 0
    n_subcells: int = 0
    n_rows: int = 0
    n_insertion_points: int = 0
    window_retries: int = 0
    planner_growths: int = 0
    """Number of growth steps the occupancy-aware window planner applied
    to the geometric base window before retry 0 (0 when the base window
    already held enough free capacity, or the planner was disabled)."""
    fallback_used: bool = False
    region_density: float = 0.0
    region_transfer_words: int = 0
    update_moved_cells: int = 0
    final_window: Optional[Tuple[float, float, int, int]] = None
    """``(x_lo, x_hi, row_lo, row_hi)`` of the last (largest) search window
    used for this target; the whole chip when the free-space fallback ran.
    The multiprocess shard merge uses it to prove that a target's influence
    stayed inside its shard."""
    insertion_points: List[InsertionPointWork] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_insertion_point(self, work: InsertionPointWork) -> None:
        self.insertion_points.append(work)
        self.n_insertion_points = len(self.insertion_points)

    @property
    def retry0_feasible(self) -> bool:
        """True when the planned retry-0 window already admitted the cell
        (no window-expansion retry and no whole-chip fallback)."""
        return self.window_retries == 0 and not self.fallback_used

    @property
    def total_shift_visits(self) -> int:
        """Total shifting visits across the cell's insertion points."""
        return sum(ip.shift_cell_visits for ip in self.insertion_points)

    @property
    def total_breakpoints(self) -> int:
        """Total breakpoint pieces across the cell's insertion points."""
        return sum(ip.n_breakpoints for ip in self.insertion_points)

    @property
    def total_sort_items(self) -> int:
        """Total items pre-sorted for this cell's region(s)."""
        return sum(ip.sort_size for ip in self.insertion_points)


@dataclass
class IncrementalStats:
    """Dirty-set and reuse counters of one incremental (ECO) call.

    Recorded by :class:`repro.incremental.IncrementalLegalizer` next to
    the :class:`LegalizationTrace` of the re-legalization it ran.  The
    point of the incremental engine is *work avoided*, which the trace
    alone cannot show — these counters do.
    """

    deltas_applied: int = 0
    """Number of deltas in the applied batch."""

    dirty_direct: int = 0
    """Cells dirtied because a delta targeted them directly."""

    dirty_overlap: int = 0
    """Legalized cells dirtied because a new/changed footprint (a fixed
    macro move/resize/insert, or a frozen cell) overlaps them — found by
    the spatial sweep over the persistent per-row occupancy index."""

    dirty_total: int = 0
    """Size of the dirty set actually re-legalized."""

    num_movable: int = 0
    """Movable (non-tombstoned) cells in the post-delta layout."""

    reused_cells: int = 0
    """Legalized cells left untouched (their placements were reused)."""

    rows_touched: int = 0
    """Distinct rows whose occupancy index / free-space summary entries
    were invalidated while applying the batch."""

    mode: str = "incremental"
    """``"incremental"`` (dirty subset re-legalized), ``"full"`` (the
    dirtiness threshold was exceeded and the whole layout was reset and
    re-legalized from scratch), ``"repack"`` (a quality repack ran — see
    ``repack_reason``) or ``"noop"`` (empty delta batch)."""

    full_threshold: float = 1.0
    """Dirty fraction above which the engine falls back to a full run."""

    wall_seconds: float = 0.0
    """End-to-end wall time of the incremental call (apply + legalize)."""

    # --- displacement-bounded (quality-governed) mode -----------------
    avedis: float = 0.0
    """AveDis (``S_am``) of the layout at the end of the call."""

    baseline_avedis: float = 0.0
    """AveDis of the quality baseline snapshot in effect after the call
    (refreshed whenever a full run or a repack re-derives every movable
    placement from its global position)."""

    avedis_drift: float = 0.0
    """Relative AveDis drift vs the baseline snapshot at the end of the
    call: ``avedis / baseline_avedis - 1`` (0.0 when the baseline is 0)."""

    fragmentation: float = 0.0
    """Free-space fragmentation of the layout at the end of the call
    (:meth:`repro.geometry.layout.Layout.free_space_fragmentation`);
    0.0 when fragmentation tracking is disabled."""

    fragmentation_tracked: bool = False
    """Whether the engine measured fragmentation this call (a real 0.0
    reading is distinguishable from tracking-off)."""

    baseline_fragmentation: float = 0.0
    """Fragmentation of the quality baseline snapshot in effect after the
    call (0.0 when fragmentation tracking is disabled)."""

    repack_reason: str = ""
    """Why a repack ran this call: ``"scheduled"`` (``repack_every``
    batches elapsed), ``"drift"`` (AveDis drift exceeded the budget) or
    ``"fragmentation"`` (fragmentation growth exceeded the budget).
    Empty when no repack ran."""

    repacks_total: int = 0
    """Cumulative repacks the engine has performed over its lifetime
    (monotonically non-decreasing across a delta stream)."""

    batches_since_repack: int = 0
    """Non-empty batches applied since the last baseline refresh (a full
    run, a repack, or ``begin()``)."""

    @property
    def dirty_fraction(self) -> float:
        """Dirty cells as a fraction of the movable population."""
        if self.num_movable <= 0:
            return 0.0
        return self.dirty_total / self.num_movable

    def as_dict(self) -> Dict[str, Any]:
        """Flat dictionary for JSON reports."""
        return {
            "deltas_applied": self.deltas_applied,
            "dirty_direct": self.dirty_direct,
            "dirty_overlap": self.dirty_overlap,
            "dirty_total": self.dirty_total,
            "num_movable": self.num_movable,
            "dirty_fraction": self.dirty_fraction,
            "reused_cells": self.reused_cells,
            "rows_touched": self.rows_touched,
            "mode": self.mode,
            "full_threshold": self.full_threshold,
            "wall_seconds": self.wall_seconds,
            "avedis": self.avedis,
            "baseline_avedis": self.baseline_avedis,
            "avedis_drift": self.avedis_drift,
            "fragmentation": self.fragmentation,
            "fragmentation_tracked": self.fragmentation_tracked,
            "baseline_fragmentation": self.baseline_fragmentation,
            "repack_reason": self.repack_reason,
            "repacks_total": self.repacks_total,
            "batches_since_repack": self.batches_since_repack,
        }


@dataclass
class LegalizationTrace:
    """Complete work record of one legalization run."""

    design_name: str = "design"
    algorithm: str = "mgl"
    shift_algorithm: str = "original"
    """Which cell-shifting engine recorded the per-insertion-point visit
    counts (``"original"`` or ``"sacs"``); the FPGA cycle models need this
    to translate visit counts when modeling the other engine."""
    kernel_backend: str = "python"
    """Which :mod:`repro.kernels` backend executed the numeric hot paths
    when the trace was recorded.  Backends are bit-for-bit equivalent, so
    the recorded work is backend-independent; the field lets benchmark
    and experiment reports label measured wall times per backend."""
    worker_count: int = 1
    """Number of OS processes that executed FOP work (1 for every
    sequential backend; the ``multiprocess`` backend records its pool
    size here).  Results are worker-count independent."""
    shard_stats: Optional[Dict[str, Any]] = None
    """Shard partition statistics recorded by the ``multiprocess``
    backend: component/shard counts, per-shard target counts, escaped
    windows and whether the deterministic sequential re-run was taken.
    ``None`` for sequential backends."""
    num_cells: int = 0
    num_movable: int = 0
    # Step (a): input & pre-move — one unit of work per movable cell.
    premove_cells: int = 0
    # Step (b): process ordering — comparisons performed by the ordering.
    ordering_ops: int = 0
    # Step (c): define localRegion — obstacle cells scanned per region build.
    region_build_ops: int = 0
    # Step (e): insert & update — cells whose committed position changed.
    update_ops: int = 0
    targets: List[TargetCellWork] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregations used by the cost / cycle models
    # ------------------------------------------------------------------
    def add_target(self, work: TargetCellWork) -> None:
        self.targets.append(work)

    @property
    def total_insertion_points(self) -> int:
        return sum(t.n_insertion_points for t in self.targets)

    @property
    def total_shift_visits(self) -> int:
        return sum(t.total_shift_visits for t in self.targets)

    @property
    def total_breakpoints(self) -> int:
        return sum(t.total_breakpoints for t in self.targets)

    @property
    def total_sort_items(self) -> int:
        return sum(t.total_sort_items for t in self.targets)

    @property
    def total_regions(self) -> int:
        """Number of localRegions built (window retries build new regions)."""
        return sum(1 + t.window_retries for t in self.targets)

    # --- window-planning feasibility counters -------------------------
    @property
    def retry0_feasible_targets(self) -> int:
        """Targets legalized inside their planned retry-0 window."""
        return sum(1 for t in self.targets if t.retry0_feasible)

    @property
    def retry0_feasibility_rate(self) -> float:
        """Fraction of targets whose planned window held at retry 0."""
        if not self.targets:
            return 1.0
        return self.retry0_feasible_targets / len(self.targets)

    @property
    def retries_total(self) -> int:
        """Total window-expansion retries paid across all targets."""
        return sum(t.window_retries for t in self.targets)

    @property
    def planner_growths_total(self) -> int:
        """Total growth steps applied by the window planner."""
        return sum(t.planner_growths for t in self.targets)

    @property
    def fallback_targets(self) -> int:
        """Targets that escaped to the whole-chip free-space fallback."""
        return sum(1 for t in self.targets if t.fallback_used)

    @property
    def total_transfer_words(self) -> int:
        return sum(t.region_transfer_words for t in self.targets)

    @property
    def total_update_moves(self) -> int:
        return sum(t.update_moved_cells for t in self.targets)

    def iter_insertion_points(self) -> Iterable[InsertionPointWork]:
        for target in self.targets:
            yield from target.insertion_points

    # ------------------------------------------------------------------
    def fop_stage_workload(self) -> Dict[str, float]:
        """Abstract work units per FOP stage (used for the Fig. 2(g) split).

        Each stage's work unit is the quantity its runtime is proportional
        to on a CPU: subcell visits for cell shifting, ``n log n`` for the
        breakpoint sort, and the number of (merged) breakpoints for the
        remaining stages.
        """
        import math

        work = {stage: 0.0 for stage in FOP_STAGES}
        for ip in self.iter_insertion_points():
            n_bp = max(1, ip.n_breakpoints)
            n_merged = max(1, ip.n_merged_breakpoints)
            work["cell_shift"] += ip.shift_cell_visits
            work["sort_bp"] += n_bp * max(1.0, math.log2(n_bp))
            work["merge_bp"] += n_bp
            work["sum_slopesR"] += n_merged
            work["sum_slopesL"] += n_merged
            work["calculate_value"] += n_merged
        return work

    def cell_shift_fraction(self) -> float:
        """Fraction of abstract FOP work spent in cell shifting (Fig. 2(g))."""
        work = self.fop_stage_workload()
        total = sum(work.values())
        if total <= 0:
            return 0.0
        return work["cell_shift"] / total

    # ------------------------------------------------------------------
    def merged_with(self, other: "LegalizationTrace") -> "LegalizationTrace":
        """Combine two traces (used when a run is split across workers)."""
        merged = LegalizationTrace(
            design_name=self.design_name,
            algorithm=self.algorithm,
            shift_algorithm=self.shift_algorithm,
            kernel_backend=self.kernel_backend,
            worker_count=max(self.worker_count, other.worker_count),
            num_cells=self.num_cells + other.num_cells,
            num_movable=self.num_movable + other.num_movable,
            premove_cells=self.premove_cells + other.premove_cells,
            ordering_ops=self.ordering_ops + other.ordering_ops,
            region_build_ops=self.region_build_ops + other.region_build_ops,
            update_ops=self.update_ops + other.update_ops,
        )
        merged.targets = list(self.targets) + list(other.targets)
        return merged

    def summary(self) -> str:
        """One-line description of the recorded work."""
        return (
            f"{self.design_name}/{self.algorithm}"
            f"[{self.shift_algorithm}/{self.kernel_backend}]: {len(self.targets)} targets, "
            f"{self.total_insertion_points} insertion points, "
            f"{self.total_shift_visits} shift visits, "
            f"{self.total_breakpoints} breakpoints"
        )
