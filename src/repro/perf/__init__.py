"""Performance modeling: work counters, cost models and timelines.

The reproduction cannot run on the paper's hardware (Alveo U50 FPGA,
Intel CPUs, NVIDIA GPUs), so runtimes are *modeled*: every legalizer
records the work it performs (insertion points evaluated, subcells
traversed during cell shifting, breakpoints processed, regions built,
cells updated) in a :class:`~repro.perf.counters.LegalizationTrace`, and
the models in this package convert those measured work items into
estimated runtimes:

* :class:`~repro.perf.cost_model.CpuCostModel` — single-thread CPU time;
* :class:`~repro.perf.thread_model.MultiThreadModel` — the multi-threaded
  CPU legalizer of TCAD'22 with its thread-scaling saturation (Fig. 2(a));
* :class:`~repro.perf.gpu_model.CpuGpuModel` — the DATE'22 CPU-GPU
  legalizer with region-level parallelism and synchronization overhead;
* :class:`~repro.perf.timeline.CoExecutionTimeline` — the FLEX CPU+FPGA
  overlap schedule (ping-pong preloading, visible transfer of the first
  region only).

All model constants are documented in :mod:`repro.perf.cost_model` and
can be overridden for sensitivity studies.
"""

from repro.perf.counters import (
    FOP_STAGES,
    IncrementalStats,
    InsertionPointWork,
    LegalizationTrace,
    TargetCellWork,
)
from repro.perf.cost_model import CpuCostModel, CpuCostParameters
from repro.perf.thread_model import MultiThreadModel
from repro.perf.gpu_model import CpuGpuModel, GpuModelParameters
from repro.perf.timeline import CoExecutionTimeline, TimelineEntry
from repro.perf.report import SpeedupReport, format_table

__all__ = [
    "FOP_STAGES",
    "IncrementalStats",
    "InsertionPointWork",
    "TargetCellWork",
    "LegalizationTrace",
    "CpuCostModel",
    "CpuCostParameters",
    "MultiThreadModel",
    "CpuGpuModel",
    "GpuModelParameters",
    "CoExecutionTimeline",
    "TimelineEntry",
    "SpeedupReport",
    "format_table",
]
