"""Runtime model of the DATE'22 CPU-GPU legalizer.

The CPU-GPU legalizer processes non-overlapping localRegions in parallel
on the GPU while a scheduler hands the "tough" cells (large multi-row
cells with heavily-constrained regions) to the CPU.  The paper identifies
its two structural problems (Sec. 1 and Fig. 2):

* coarse-grained, region-level parallelism requires a full position
  synchronisation after every batch of regions, so the synchronisation
  time grows with the number of batches (Fig. 2(b));
* the number of independent regions available per batch falls short of
  the GPU's core count, so extra CUDA cores do not help (Fig. 2(c));
* the tough cells assigned to the CPU dominate the critical path even
  though they are few (Fig. 2(d)).

The model below reproduces these mechanisms from the recorded trace: GPU
time scales with the easy-cell FOP work divided by an effective
parallelism bounded by the number of independent regions per batch, plus
a per-batch synchronisation cost; CPU time is the serial single-thread
cost of the tough cells; the two run concurrently, so the total is their
maximum plus the serial host steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.perf.cost_model import CpuCostModel
from repro.perf.counters import LegalizationTrace, TargetCellWork


@dataclass(frozen=True)
class GpuModelParameters:
    """Calibration constants of the CPU-GPU runtime model."""

    cuda_cores: int = 1536
    """CUDA cores of the GTX 1660 Ti used by the baseline."""

    max_parallel_regions: int = 96
    """Independent (non-overlapping) regions available per batch; Fig. 2(c)
    shows the achievable parallelism saturating well below the core count."""

    gpu_thread_slowdown: float = 9.0
    """A single GPU thread runs the irregular FOP code this many times
    slower than the host CPU core (divergence, no queues, brute force)."""

    batch_sync_seconds: float = 1.0e-3
    """Position synchronisation + kernel relaunch cost per region batch."""

    tough_height_threshold: int = 2
    """Cells at least this tall are scheduled on the CPU as tough cells
    (the DATE'22 scheduler hands multi-deck cells to the host)."""

    tough_region_cells: int = 45
    """Cells whose localRegion holds at least this many localCells are
    also treated as tough (heavily constrained windows)."""

    cpu_dispatch_overhead: float = 1.5
    """Overhead factor on the CPU tough-cell path (scheduling, transfers)."""


@dataclass
class CpuGpuBreakdown:
    """Modeled runtime components of the CPU-GPU legalizer (seconds)."""

    serial_host: float = 0.0
    gpu_compute: float = 0.0
    gpu_sync: float = 0.0
    cpu_tough: float = 0.0
    n_tough_cells: int = 0
    n_easy_cells: int = 0
    n_batches: int = 0

    @property
    def total(self) -> float:
        # The GPU batches and the CPU tough-cell path run concurrently, but
        # the per-batch position synchronisation involves the host and
        # cannot be hidden behind either side.
        return self.serial_host + self.gpu_sync + max(self.gpu_compute, self.cpu_tough)


class CpuGpuModel:
    """Estimates the DATE'22 CPU-GPU legalizer's runtime from a trace."""

    def __init__(
        self,
        params: Optional[GpuModelParameters] = None,
        cost_model: Optional[CpuCostModel] = None,
    ) -> None:
        self.params = params or GpuModelParameters()
        self.cost_model = cost_model or CpuCostModel()

    # ------------------------------------------------------------------
    def _is_tough(self, work: TargetCellWork) -> bool:
        p = self.params
        return (
            work.height >= p.tough_height_threshold
            or work.n_local_cells >= p.tough_region_cells
            or work.fallback_used
        )

    def split_targets(self, trace: LegalizationTrace) -> Tuple[list, list]:
        """Partition the trace's targets into (tough, easy) lists."""
        tough = [t for t in trace.targets if self._is_tough(t)]
        easy = [t for t in trace.targets if not self._is_tough(t)]
        return tough, easy

    # ------------------------------------------------------------------
    def breakdown(self, trace: LegalizationTrace) -> CpuGpuBreakdown:
        """Full runtime breakdown of the modeled CPU-GPU legalizer."""
        p = self.params
        per_target = self.cost_model.per_target_host_times(trace)
        tough, easy = self.split_targets(trace)

        out = CpuGpuBreakdown(n_tough_cells=len(tough), n_easy_cells=len(easy))
        host = self.cost_model.breakdown(trace)
        # Serial host work: pre-move, ordering, region extraction and the
        # commit of every cell's final position.
        out.serial_host = host.premove + host.ordering + host.region + host.update

        # GPU side: easy-cell FOP work spread over the achievable
        # region-level parallelism, at GPU-thread speed.
        easy_fop = sum(per_target[t.cell_index]["fop"] for t in easy)
        parallelism = min(p.max_parallel_regions, max(1, len(easy)))
        out.gpu_compute = easy_fop * p.gpu_thread_slowdown / parallelism
        out.n_batches = math.ceil(len(easy) / max(1, p.max_parallel_regions)) if easy else 0
        # Each batch requires a full position synchronisation with the host
        # before the next batch of non-overlapping regions can be formed.
        out.gpu_sync = out.n_batches * p.batch_sync_seconds

        # CPU side: tough cells processed serially on the host core.
        tough_fop = sum(per_target[t.cell_index]["fop"] for t in tough)
        out.cpu_tough = tough_fop * p.cpu_dispatch_overhead
        return out

    def runtime_seconds(self, trace: LegalizationTrace) -> float:
        """Modeled end-to-end runtime of the CPU-GPU legalizer."""
        return self.breakdown(trace).total

    # ------------------------------------------------------------------
    def achievable_parallelism(self, trace: LegalizationTrace) -> int:
        """Maximum number of regions processed concurrently (Fig. 2(c))."""
        _, easy = self.split_targets(trace)
        return min(self.params.max_parallel_regions, max(1, len(easy)))
