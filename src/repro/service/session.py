"""Per-design sessions of the legalization service.

One :class:`Session` owns one design: a private
:class:`~repro.incremental.IncrementalLegalizer` configured with the
session's kernel backend, worker budget and governor knobs, plus a FIFO
apply queue.  Any number of connections may submit batches to a session;
the queue's *dispatcher* — whichever submitting thread wins the
``_dispatching`` flag — applies them strictly in arrival order, one
``engine.apply`` per batch, so results are independent of how many
clients raced.  A thread that finds a dispatcher already running simply
leaves its batch in the queue: the running dispatcher picks it up in the
same drain (that is the *coalescing* — back-to-back batches for one
session cost one dispatch, not one lock round trip each) and the
submitter waits on its own completion event.

The replay ledger
-----------------
Every successfully applied operation is appended to the session's
*ledger* — batches as their raw delta JSON objects, explicit repacks as
markers.  :func:`offline_replay` re-runs a ledger through a fresh
engine built from the same design and config; because the engine is
deterministic on every backend at any worker count, the replayed layout
must be **bit-for-bit identical** to the session's live layout
(:func:`repro.designio.layout_fingerprint` compares them cheaply).
That is the service's headline contract, and what the concurrent soak
in ``tests/test_service.py`` / ``benchmarks/test_bench_service.py``
asserts.  Batches that fail validation mutate nothing and are *not*
recorded; batches whose re-legalization leaves cells unplaced are
recorded (the failure itself is deterministic and replays identically).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

import repro.obs as obs
from repro.designio.serialize import layout_fingerprint, layout_from_dict, layout_to_dict
from repro.obs import metrics as obs_metrics
from repro.geometry.layout import Layout
from repro.incremental.deltas import Delta, delta_from_dict
from repro.incremental.engine import DEFAULT_FULL_THRESHOLD, IncrementalLegalizer
from repro.service.protocol import ProtocolError


# ----------------------------------------------------------------------
# Session configuration (the per-session knobs of open_session)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionConfig:
    """Engine knobs one ``open_session`` request may set.

    ``worker_budget`` is the per-session cap on multiprocess workers: it
    rewrites a bare ``"multiprocess"`` backend to ``"multiprocess:N"``
    (and overrides an explicit ``:M`` suffix), so one heavy session
    cannot claim the whole host from its neighbours.  It is recorded but
    inert for the single-process backends.
    """

    backend: Optional[str] = None
    worker_budget: Optional[int] = None
    full_threshold: float = DEFAULT_FULL_THRESHOLD
    max_avedis_drift: Optional[float] = None
    repack_every: Optional[int] = None
    max_fragmentation_drift: Optional[float] = None

    _FIELDS = (
        "backend",
        "worker_budget",
        "full_threshold",
        "max_avedis_drift",
        "repack_every",
        "max_fragmentation_drift",
    )

    @classmethod
    def from_request(cls, request: Dict[str, Any],
                     default_backend: Optional[str] = None) -> "SessionConfig":
        """Build a config from request fields, rejecting unknown/ill-typed knobs."""
        config = request.get("config", {})
        if not isinstance(config, dict):
            raise ProtocolError(
                "bad_request", f"'config' must be an object, got {type(config).__name__}"
            )
        unknown = sorted(set(config) - set(cls._FIELDS))
        if unknown:
            raise ProtocolError(
                "bad_request", f"unknown session config knob(s): {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        for name in cls._FIELDS:
            if name in config and config[name] is not None:
                kwargs[name] = config[name]
        if "backend" not in kwargs and default_backend is not None:
            kwargs["backend"] = default_backend
        try:
            out = cls(**kwargs)
            out.validate()
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError("bad_request", f"invalid session config: {exc}") from None
        return out

    def validate(self) -> None:
        """Raise on a bad backend spelling or knob value, touching nothing.

        Backend names are resolved eagerly (legalizers only resolve them
        on first use, far too late for a request-time error), then a
        throwaway engine is built so every numeric knob goes through the
        same range checks the engine itself enforces.
        """
        spec = self.backend_spec()
        if isinstance(spec, str):
            from repro.kernels import available_backends

            base, sep, _ = spec.partition(":")
            if base not in available_backends():
                raise ValueError(
                    f"unknown kernel backend {base!r}; available: {available_backends()}"
                )
            if sep and base != "multiprocess":
                raise ValueError(
                    f"backend {base!r} takes no ':N' argument ({spec!r})"
                )
        self.make_engine().close()

    def backend_spec(self) -> Optional[str]:
        """The kernel-backend spec with the worker budget applied."""
        if self.backend is None:
            return None
        if self.worker_budget is not None and self.backend.startswith("multiprocess"):
            return f"multiprocess:{int(self.worker_budget)}"
        return self.backend

    def make_engine(self) -> IncrementalLegalizer:
        """A fresh engine with this config (used live and by the replay).

        A ``multiprocess`` spec resolves to a **private** backend
        instance rather than the process-wide cached one
        (:func:`repro.kernels.get_kernel_backend` shares instances by
        spelling): each session owns its pool, its worker budget really
        is per-session, and closing one session can never yank a pool
        out from under a concurrent neighbour.
        """
        spec = self.backend_spec()
        if isinstance(spec, str) and spec.startswith("multiprocess"):
            from repro.kernels import MultiprocessKernelBackend
            from repro.kernels.mp_backend import parse_worker_count

            _, sep, arg = spec.partition(":")
            workers = parse_worker_count(arg, source=f'"{spec}"') if sep else None
            spec = MultiprocessKernelBackend(workers=workers)
        return IncrementalLegalizer(
            backend=spec,
            full_threshold=float(self.full_threshold),
            max_avedis_drift=self.max_avedis_drift,
            repack_every=self.repack_every,
            max_fragmentation_drift=self.max_fragmentation_drift,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}


# ----------------------------------------------------------------------
# Queue items
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """One queued operation: a delta batch, a repack, or a barrier."""

    kind: str  # "batch" | "repack" | "barrier"
    seq: int = 0
    deltas: List[Delta] = field(default_factory=list)
    raw_deltas: List[Dict[str, Any]] = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[Dict[str, Any]] = None
    error: Optional[ProtocolError] = None
    #: Batches (beyond the first) this item shared a dispatch with.
    coalesced: bool = False
    #: Enqueue timestamp (perf_counter) for the queue-wait histogram.
    enqueued_at: float = 0.0


class SessionClosed(ProtocolError):
    """Submitting to a session that has been closed."""

    def __init__(self, name: str) -> None:
        super().__init__("session_closed", f"session {name!r} is closed")


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class Session:
    """One served design: engine + apply queue + replay ledger.

    ``inflight`` is an optional admission gauge shared across a server's
    sessions: it is acquired per delta batch at enqueue time (raising
    ``busy`` when the server-wide in-flight limit is reached, before
    anything is queued) and released when the batch finishes, however it
    finishes — so fire-and-forget batches count against the limit for as
    long as they actually occupy the daemon.
    """

    #: Lock-discipline contract, enforced statically by ``repro lint``
    #: (rule ``lck-unguarded``): these attributes may only be touched
    #: under ``self._mutex`` outside ``__init__``.
    _GUARDED_BY = {
        "_queue": "_mutex",
        "_dispatching": "_mutex",
        "_closed": "_mutex",
        "_failed": "_mutex",
        "_seq": "_mutex",
        "dispatches": "_mutex",
        "coalesced_batches": "_mutex",
        "failed_batches": "_mutex",
        "async_errors": "_mutex",
        "ledger": "_mutex",
    }

    def __init__(self, name: str, design: Dict[str, Any], config: SessionConfig,
                 *, inflight=None) -> None:
        self.name = name
        self.config = config
        self._inflight = inflight
        #: The design as received — the replay starts from this, so it is
        #: kept verbatim rather than re-serialized from the live layout.
        self.design = design
        self.engine = config.make_engine()
        self.ledger: List[Dict[str, Any]] = []
        self._queue: Deque[_Pending] = deque()
        self._mutex = threading.Lock()
        self._dispatching = False
        self._closed = False
        self._failed: Optional[str] = None  # internal-error message, fatal
        self._seq = 0
        self.dispatches = 0
        self.coalesced_batches = 0
        self.failed_batches = 0
        #: Errors of fire-and-forget (``wait: false``) batches, newest last.
        self.async_errors: List[Dict[str, Any]] = []
        layout = layout_from_dict(design)
        base = self.engine.begin(layout)
        self.base_stats = {
            "num_cells": len(layout.cells),
            "num_movable": len(layout.movable_cells()),
            "base_legalized": base is not None,
            "base_avedis": (
                base.average_displacement
                if base is not None
                else self.engine.lifetime_summary()["avedis"]
            ),
            "base_success": base.success if base is not None else True,
        }

    # ------------------------------------------------------------------
    @property
    def layout(self) -> Optional[Layout]:
        return self.engine.layout

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def queue_depth(self) -> int:
        with self._mutex:
            return len(self._queue)

    def counters(self) -> Dict[str, int]:
        """Dispatcher counters as one consistent snapshot."""
        with self._mutex:
            return {
                "dispatches": self.dispatches,
                "coalesced_batches": self.coalesced_batches,
                "failed_batches": self.failed_batches,
            }

    # ------------------------------------------------------------------
    # Submission API (called from connection-handler threads)
    # ------------------------------------------------------------------
    def submit(self, raw_deltas: Sequence[Dict[str, Any]], *, wait: bool = True
               ) -> Dict[str, Any]:
        """Queue one delta batch; apply it (or let the dispatcher) in order.

        With ``wait`` the caller blocks until its batch was applied and
        gets the per-batch result; without, the batch is left for the
        active (or next) dispatcher and a ``{"queued": seq}`` stub comes
        back immediately — any failure is recorded in
        :attr:`async_errors` and surfaces through ``stats`` / close.
        """
        deltas = self._parse_batch(raw_deltas)
        item = _Pending(kind="batch", deltas=deltas, raw_deltas=list(raw_deltas))
        self._enqueue(item)
        if not wait:
            self._kick()
            return {"queued": True, "seq": item.seq}
        self._drive(item)
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    def request_repack(self, *, wait: bool = False) -> Dict[str, Any]:
        """Schedule a repack behind the queued batches (off the hot path)."""
        item = _Pending(kind="repack")
        self._enqueue(item)
        if not wait:
            self._kick()
            return {"queued": True, "seq": item.seq}
        self._drive(item)
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    def barrier(self) -> None:
        """Wait until everything queued before this call has been applied."""
        item = _Pending(kind="barrier")
        self._enqueue(item)
        self._drive(item)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A point-in-time summary (racy by nature; barrier first if exact)."""
        summary = self.engine.lifetime_summary()
        layout = self.engine.layout
        with self._mutex:
            counters = {
                "closed": self._closed,
                "failed": self._failed,
                "queue_depth": len(self._queue),
                "dispatches": self.dispatches,
                "coalesced_batches": self.coalesced_batches,
                "failed_batches": self.failed_batches,
                "async_errors": len(self.async_errors),
                "ledger_entries": len(self.ledger),
            }
        return {
            "session": self.name,
            "config": self.config.to_dict(),
            **counters,
            "engine": summary,
            "fingerprint": layout_fingerprint(layout) if layout is not None else None,
            **self.base_stats,
        }

    def close(self, *, return_layout: bool = False, return_ledger: bool = True
              ) -> Dict[str, Any]:
        """Drain the queue, release the engine, and report the final state."""
        with self._mutex:
            already = self._closed
            self._closed = True
        if not already:
            # Wait out whatever was queued before the close won the flag.
            barrier = _Pending(kind="barrier")
            with self._mutex:
                self._seq += 1
                barrier.seq = self._seq
                self._queue.append(barrier)
            self._drive(barrier)
        final = self.stats()
        if return_ledger:
            # The queue is drained and the session closed, but snapshot
            # under the mutex anyway: stats() above may race a ledger
            # append from a dispatcher that started before the close.
            with self._mutex:
                final["ledger"] = list(self.ledger)
        if return_layout and self.engine.layout is not None:
            final["layout"] = layout_to_dict(self.engine.layout)
        self.engine.close()
        return final

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _parse_batch(self, raw_deltas: Sequence[Dict[str, Any]]) -> List[Delta]:
        if not isinstance(raw_deltas, list):
            raise ProtocolError(
                "bad_request",
                f"'deltas' must be a list of delta objects, got "
                f"{type(raw_deltas).__name__}",
            )
        try:
            return [delta_from_dict(entry) for entry in raw_deltas]
        except (ValueError, TypeError) as exc:
            raise ProtocolError("invalid_deltas", str(exc)) from None

    def _enqueue(self, item: _Pending) -> None:
        with self._mutex:
            if self._failed is not None:
                raise ProtocolError("session_failed", self._failed)
            if self._closed:
                raise SessionClosed(self.name)
            if item.kind == "batch" and self._inflight is not None:
                self._inflight.acquire()  # raises "busy" before queueing
            self._seq += 1
            item.seq = self._seq
            item.enqueued_at = time.perf_counter()
            self._queue.append(item)

    def _finish(self, item: _Pending) -> None:
        """Complete ``item``: release its admission slot, wake its waiter."""
        if item.kind == "batch" and self._inflight is not None:
            self._inflight.release()
        item.done.set()

    def _drive(self, item: _Pending) -> None:
        """Become the dispatcher if none is active, then await ``item``."""
        self._kick()
        item.done.wait()

    def _kick(self) -> None:
        """Run the dispatcher unless one is already draining the queue.

        The ``_dispatching`` flag is only cleared while holding the
        mutex *and* observing an empty queue, so an item enqueued while
        a dispatcher runs is guaranteed to be drained by it — never
        stranded.  An item enqueued after the flag cleared finds
        ``_kick`` willing to dispatch again.
        """
        with self._mutex:
            if self._dispatching or not self._queue:
                return
            self._dispatching = True
        try:
            while True:
                batches = 0
                with self._mutex:
                    if not self._queue:
                        self._dispatching = False
                        return
                    items = list(self._queue)
                    self._queue.clear()
                    self.dispatches += 1
                    batches = sum(1 for it in items if it.kind == "batch")
                    if batches > 1:
                        self.coalesced_batches += batches - 1
                obs_metrics.inc("repro_session_dispatches_total")
                if batches > 1:
                    obs_metrics.inc(
                        "repro_session_coalesced_batches_total", batches - 1
                    )
                    for it in items[1:]:
                        it.coalesced = True
                drained_at = time.perf_counter()
                for it in items:
                    if it.kind == "batch":
                        obs_metrics.observe(
                            "repro_queue_wait_seconds", drained_at - it.enqueued_at
                        )
                    self._apply_one(it)
                    self._finish(it)
        except BaseException:
            # A dispatcher must never die with the flag held: fail what
            # it took responsibility for, free the flag, re-raise.
            with self._mutex:
                self._dispatching = False
                stranded = list(self._queue)
                self._queue.clear()
            for it in stranded:
                it.error = ProtocolError("internal", "dispatcher crashed")
                self._finish(it)
            raise

    def _apply_one(self, item: _Pending) -> None:
        """Apply one queued item on the engine; never raises."""
        if item.kind == "barrier":
            item.result = {"ok": True}
            return
        with self._mutex:
            failed = self._failed
        if failed is not None:
            item.error = ProtocolError("session_failed", failed)
            self._record_async_error(item)
            return
        try:
            # Correlation ids for every span the engine (and the kernel
            # backend below it) emits while this item applies.
            with obs.context(session=self.name, batch=item.seq):
                if item.kind == "repack":
                    result = self.engine.repack()
                    with self._mutex:
                        self.ledger.append({"kind": "repack"})
                else:
                    result = self.engine.apply(item.deltas)
                    with self._mutex:
                        self.ledger.append(
                            {"kind": "batch", "deltas": item.raw_deltas}
                        )
        except ValueError as exc:
            # validate_deltas rejected the batch: nothing mutated, the
            # session stays fully usable, the batch is not in the ledger.
            item.error = ProtocolError("invalid_deltas", str(exc))
            self._record_async_error(item)
            return
        except Exception as exc:  # pragma: no cover - defensive
            # apply() only raises past validation on an internal error,
            # after which it drops the engine's layout: the session is
            # dead, but the daemon and every other session live on.
            message = f"{type(exc).__name__}: {exc}"
            with self._mutex:
                self._failed = message
            item.error = ProtocolError("session_failed", message)
            self._record_async_error(item)
            return
        stats = result.stats
        if not result.success:
            with self._mutex:
                self.failed_batches += 1
        item.result = {
            "seq": item.seq,
            "mode": stats.mode,
            "success": result.success,
            "deltas_applied": stats.deltas_applied,
            "dirty_total": stats.dirty_total,
            "reused_cells": stats.reused_cells,
            "num_movable": stats.num_movable,
            "avedis": stats.avedis,
            "avedis_drift": stats.avedis_drift,
            "repack_reason": stats.repack_reason,
            "repacks_total": stats.repacks_total,
            "wall_seconds": stats.wall_seconds,
            "coalesced": item.coalesced,
        }

    def _record_async_error(self, item: _Pending) -> None:
        if item.error is not None:
            with self._mutex:
                self.async_errors.append(
                    {"seq": item.seq, "code": item.error.code,
                     "message": str(item.error)}
                )


# ----------------------------------------------------------------------
# The exactness oracle of the service layer
# ----------------------------------------------------------------------
def offline_replay(design: Dict[str, Any], ledger: Sequence[Dict[str, Any]],
                   config: Optional[SessionConfig] = None) -> Layout:
    """Replay a session ledger through a fresh engine, offline.

    Feeds the recorded operations — delta batches and explicit repacks,
    in served order — to a new :class:`IncrementalLegalizer` built from
    the same design and config.  The returned layout must be bit-for-bit
    identical to the live session's final layout
    (:func:`repro.designio.layout_fingerprint` of both must agree): the
    daemon's queueing, coalescing and concurrency must never change a
    single placement.
    """
    config = config or SessionConfig()
    layout = layout_from_dict(design)
    engine = config.make_engine()
    try:
        engine.begin(layout)
        for entry in ledger:
            kind = entry.get("kind", "batch")
            if kind == "repack":
                engine.repack()
            elif kind == "batch":
                engine.apply([delta_from_dict(d) for d in entry["deltas"]])
            else:
                raise ValueError(f"unknown ledger entry kind {kind!r}")
    finally:
        engine.close()
    return layout
