"""Wire protocol of the legalization service.

Framing
-------
Every message — request or response — is one *frame*::

    +----------+----------------+------------------------+
    |  b"RPRO" | length (u32 BE)| UTF-8 JSON payload     |
    +----------+----------------+------------------------+

The 4-byte magic makes accidental clients (an HTTP probe, a stray
``nc``) detectable as *malformed frames* rather than absurd lengths; the
length is the payload byte count and is capped (:data:`MAX_FRAME_BYTES`
by default) so one client cannot make the daemon buffer gigabytes.

Envelopes
---------
A request is a JSON object ``{"op": <name>, ...fields}``.  Responses
echo the op and carry either the result::

    {"ok": true, "op": "apply_deltas", ...result fields}

or a structured error::

    {"ok": false, "op": "apply_deltas",
     "error": {"code": "unknown_session", "message": "..."}}

Error codes are a closed set (:data:`ERROR_CODES`); clients switch on
``code``, never on message text.  Protocol-level failures (bad magic,
oversized frame, invalid JSON) are answered with a best-effort error
frame and the connection is closed; request-level failures (unknown op,
bad session, invalid deltas, admission rejections) keep the connection
open — the session and every other session stay usable.

The payload of ``apply_deltas`` reuses the ECO delta JSON spelling from
:mod:`repro.incremental.deltas` verbatim: the delta stream format *is*
the wire format.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

#: Protocol identity, sent back by ``ping`` and checked by clients.
PROTOCOL_VERSION = 1

#: Frame magic ("RePRO").
MAGIC = b"RPRO"

#: Default cap on one frame's JSON payload (requests *and* responses).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!4sI")

#: The closed set of structured error codes.
ERROR_CODES = frozenset(
    {
        "bad_frame",  # wrong magic / truncated header: connection is dropped
        "payload_too_large",  # declared length exceeds the frame cap
        "bad_json",  # payload is not valid JSON / not an object
        "bad_request",  # missing or ill-typed request fields
        "unknown_op",  # op name not in the dispatch table
        "unknown_session",  # session id never existed
        "session_closed",  # session id was valid but has been closed
        "session_limit",  # admission control: max open sessions reached
        "busy",  # admission control: max in-flight batches reached
        "invalid_deltas",  # batch failed validation; session unchanged
        "session_failed",  # session died on an internal error earlier
        "shutting_down",  # daemon is draining; no new work accepted
        "internal",  # unexpected server-side exception
    }
)


class ProtocolError(Exception):
    """A violation of the framing or envelope rules.

    ``code`` is one of :data:`ERROR_CODES`; ``fatal`` marks violations
    after which the connection byte stream cannot be trusted (the server
    answers with a best-effort error frame, then drops the connection).
    """

    def __init__(self, code: str, message: str, *, fatal: bool = False) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.fatal = fatal


class ConnectionClosed(Exception):
    """The peer closed the connection cleanly between frames."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF.

    EOF on the first byte is a clean close (:class:`ConnectionClosed`);
    EOF mid-message means the peer vanished mid-frame and surfaces as a
    fatal :class:`ProtocolError` so half-written requests are never
    half-processed.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                "bad_frame",
                f"connection closed mid-frame ({count - remaining}/{count} bytes)",
                fatal=True,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize ``payload`` and send it as one frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "payload_too_large",
            f"outgoing frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}",
        )
    sock.sendall(_HEADER.pack(MAGIC, len(body)) + body)


def recv_frame(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Receive one frame and return its decoded JSON object.

    Raises :class:`ConnectionClosed` on a clean close between frames and
    :class:`ProtocolError` on every framing violation — bad magic and
    oversized declarations are *fatal* (the stream position is lost or
    the body was never read), undecodable payloads are not (the frame
    was fully consumed, so the next frame can still be served).
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            "bad_frame", f"bad frame magic {magic!r} (expected {MAGIC!r})", fatal=True
        )
    if length > max_bytes:
        raise ProtocolError(
            "payload_too_large",
            f"declared frame length {length} exceeds the {max_bytes}-byte cap",
            fatal=True,
        )
    body = _recv_exact(sock, length) if length else b""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_json", f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_json", f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ----------------------------------------------------------------------
# Envelope helpers
# ----------------------------------------------------------------------
def ok_response(op: str, **fields: Any) -> Dict[str, Any]:
    """Build a success envelope for ``op``."""
    out: Dict[str, Any] = {"ok": True, "op": op}
    out.update(fields)
    return out


def error_response(op: Optional[str], code: str, message: str) -> Dict[str, Any]:
    """Build a structured error envelope."""
    assert code in ERROR_CODES, code
    return {
        "ok": False,
        "op": op or "?",
        "error": {"code": code, "message": message},
    }


def request_field(request: Dict[str, Any], name: str, types, *, required: bool = True,
                  default: Any = None) -> Any:
    """Fetch and type-check one request field, or raise ``bad_request``."""
    if name not in request:
        if required:
            raise ProtocolError("bad_request", f"request is missing the {name!r} field")
        return default
    value = request[name]
    if not isinstance(value, types):
        wanted = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise ProtocolError(
            "bad_request",
            f"request field {name!r} must be {wanted}, got {type(value).__name__}",
        )
    return value
