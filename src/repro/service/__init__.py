"""Legalization as a service: a daemon serving concurrent ECO streams.

The :class:`~repro.incremental.IncrementalLegalizer` is a
session-oriented engine — one layout, one delta stream, one caller.
This package wraps it in a long-running multi-client service:

* :mod:`repro.service.protocol` — the wire format: length-prefixed JSON
  frames over a TCP socket, the request/response envelopes, and the
  structured error codes every failure maps to;
* :mod:`repro.service.session` — one :class:`Session` per open design:
  a private ``IncrementalLegalizer`` with per-session kernel-backend /
  worker-budget / governor knobs, a FIFO apply queue whose dispatcher
  serializes (and coalesces) batches, and the replay ledger that makes
  the service auditable — :func:`offline_replay` re-runs a ledger
  through a fresh engine and must land on a bit-for-bit identical
  layout;
* :mod:`repro.service.server` — :class:`LegalizationServer`, a threaded
  daemon with admission control (max sessions, max in-flight batches)
  and graceful drain;
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  client used by the tests, the service benchmark and the ``repro
  serve`` / ``repro submit`` CLI.

The headline contract is exactness under concurrency: whatever
interleaving the daemon serves, each session's final placement equals an
offline replay of that session's delta order on any backend at any
worker count.  ``tests/test_service.py`` and
``benchmarks/test_bench_service.py`` hold it to that.
"""

from repro.service.client import ServiceClient, ServiceError, SessionHandle
from repro.service.protocol import ERROR_CODES, PROTOCOL_VERSION, ProtocolError
from repro.service.server import LegalizationServer, ServeConfig
from repro.service.session import Session, SessionConfig, offline_replay

__all__ = [
    "ServiceClient",
    "ServiceError",
    "SessionHandle",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "LegalizationServer",
    "ServeConfig",
    "Session",
    "SessionConfig",
    "offline_replay",
]
