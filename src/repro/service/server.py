"""The legalization daemon: a threaded multi-client TCP server.

One :class:`LegalizationServer` owns a listening socket, an accept loop
and one handler thread per connection.  Connections are cheap and
stateless — sessions are addressed by name, so a client may open a
session on one connection and feed it from several others (that is what
makes the per-session queue's coalescing reachable).  The daemon itself
holds no placement state outside its sessions.

Admission control
-----------------
Two knobs bound what concurrent traffic can pin down:

* ``max_sessions`` — ``open_session`` beyond it is rejected with the
  ``session_limit`` error code (a session *is* a resident design plus,
  for multiprocess sessions, a private worker pool; admitting unbounded
  sessions is how a daemon OOMs politely).
* ``max_inflight`` — delta batches queued or applying across *all*
  sessions.  ``apply_deltas`` beyond it is rejected with ``busy``
  instead of queueing: under overload the daemon stays responsive and
  pushes backpressure to clients, who retry.

Shutdown is a graceful drain: new work is rejected with
``shutting_down``, every session queue is drained and closed (releasing
worker pools), then the listener goes down.  ``shutdown`` requests,
SIGINT in the CLI, and ``close()`` from a hosting test all take that
same path.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.designio.serialize import layout_from_dict
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.obs.metrics import prometheus_text
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    error_response,
    ok_response,
    recv_frame,
    request_field,
    send_frame,
)
from repro.service.session import Session, SessionConfig


@dataclass
class ServeConfig:
    """Daemon knobs (the CLI mirrors these as ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on server.address
    max_sessions: int = 8
    max_inflight: int = 64
    #: Default kernel backend of sessions that do not pick their own.
    default_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")


class _InflightGauge:
    """Server-wide count of delta batches queued or applying.

    Sessions acquire one slot per batch at enqueue time and release it
    when the batch finishes; an acquire past the limit raises the
    ``busy`` admission error instead of blocking, so overload turns into
    immediate backpressure rather than a convoy.
    """

    #: Lock-discipline contract, enforced statically by ``repro lint``.
    _GUARDED_BY = {"_count": "_lock"}

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._count = 0
        self._lock = threading.Lock()

    def acquire(self) -> None:
        with self._lock:
            if self._count >= self.limit:
                raise ProtocolError(
                    "busy",
                    f"admission control: {self.limit} batches already in flight",
                )
            self._count += 1

    def release(self) -> None:
        with self._lock:
            self._count -= 1

    @property
    def value(self) -> int:
        with self._lock:
            return self._count


class LegalizationServer:
    """Serve concurrent ECO streams over length-prefixed JSON frames.

    Usage (in-process, as the tests and the bench do)::

        server = LegalizationServer(ServeConfig(port=0))
        server.start()                      # accept loop on a thread
        host, port = server.address
        ...
        server.close()                      # drain + stop

    or blocking, as the CLI does: ``server.serve_forever()``.
    """

    #: Lock-discipline contract, enforced statically by ``repro lint``
    #: (rule ``lck-unguarded``): these attributes may only be touched
    #: under ``self._mutex`` outside ``__init__``.
    _GUARDED_BY = {
        "_sessions": "_mutex",
        "_closed_sessions": "_mutex",
        "_draining": "_mutex",
        "_session_counter": "_mutex",
    }

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._sessions: Dict[str, Optional[Session]] = {}
        self._closed_sessions: set = set()
        self._mutex = threading.Lock()
        self._inflight = _InflightGauge(self.config.max_inflight)
        self._draining = False
        self._stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list = []
        self._session_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self):
        """``(host, port)`` actually bound (port resolved when ephemeral)."""
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def start(self) -> "LegalizationServer":
        """Bind, listen, and run the accept loop on a daemon thread."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        self._listener.settimeout(0.2)  # poll so close() can stop the loop
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """:meth:`start` + block until a shutdown request (or close())."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting, drain and close every session, stop the loop."""
        with self._mutex:
            if self._stopped.is_set() and not self._sessions:
                return
            self._draining = True
            # Placeholders (opens still constructing) stay: _op_open_session
            # sees _draining afterwards and tears its session down itself.
            sessions = [s for s in self._sessions.values() if s is not None]
            for session in sessions:
                del self._sessions[session.name]
            self._closed_sessions.update(s.name for s in sessions)
        if drain:
            for session in sessions:
                session.close(return_ledger=False)
        else:
            for session in sessions:
                session.engine.close()
        self._stopped.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._listener is not None:
            self._listener.close()

    def __enter__(self) -> "LegalizationServer":
        return self.start() if self._listener is None else self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            thread.start()
            self._conn_threads = [t for t in self._conn_threads if t.is_alive()]
            self._conn_threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        """One connection: a request/response loop until EOF or a fatal frame.

        Every failure an individual request can produce becomes a
        structured error *response*; only framing violations that poison
        the byte stream (bad magic, oversized declaration, mid-frame
        disconnect) end the connection — and even then the daemon and
        every session sail on.
        """
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_frame(conn)
                except ConnectionClosed:
                    return
                except ProtocolError as exc:
                    self._best_effort_error(conn, None, exc)
                    if exc.fatal:
                        return
                    continue
                except OSError:
                    return
                op = request.get("op")
                try:
                    response = self._dispatch(op, request)
                except ProtocolError as exc:
                    response = error_response(op if isinstance(op, str) else None,
                                              exc.code, str(exc))
                except Exception as exc:  # pragma: no cover - defensive
                    response = error_response(
                        op if isinstance(op, str) else None,
                        "internal", f"{type(exc).__name__}: {exc}",
                    )
                hangup = bool(response.pop("_hangup", False))
                try:
                    send_frame(conn, response)
                except OSError:
                    return  # client went away; its session is untouched
                if hangup:
                    return

    @staticmethod
    def _best_effort_error(conn: socket.socket, op: Optional[str],
                           exc: ProtocolError) -> None:
        try:
            send_frame(conn, error_response(op, exc.code, str(exc)))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, op: Any, request: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(op, str):
            raise ProtocolError("bad_request", "request has no string 'op' field")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError("unknown_op", f"unknown op {op!r}")
        # Per-op telemetry: one latency observation and one status-coded
        # request count per handled request.  Only *known* ops become
        # label values, so a misbehaving client cannot mint unbounded
        # metric series.
        status = "ok"
        start = time.perf_counter()
        try:
            with span("svc.op", op=op):
                return handler(request)
        except ProtocolError as exc:
            status = exc.code
            raise
        except Exception:  # pragma: no cover - defensive
            status = "internal"
            raise
        finally:
            obs_metrics.observe(
                "repro_op_latency_seconds", time.perf_counter() - start, op=op
            )
            obs_metrics.inc("repro_requests_total", op=op, status=status)

    def _session_for(self, request: Dict[str, Any]) -> Session:
        name = request_field(request, "session", str)
        with self._mutex:
            if name in self._sessions:
                session = self._sessions[name]
                if session is None:
                    # Another connection's open_session is still running
                    # its base legalization; back off and retry.
                    raise ProtocolError("busy", f"session {name!r} is still opening")
                return session
            if name in self._closed_sessions:
                raise ProtocolError("session_closed", f"session {name!r} is closed")
        raise ProtocolError("unknown_session", f"no session named {name!r}")

    # --- ops ----------------------------------------------------------
    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._mutex:
            sessions = len(self._sessions)
            draining = self._draining
        inflight = self._inflight.value
        return ok_response(
            "ping",
            version=PROTOCOL_VERSION,
            sessions=sessions,
            inflight=inflight,
            max_sessions=self.config.max_sessions,
            max_inflight=self.config.max_inflight,
            draining=draining,
        )

    def _op_open_session(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._mutex:
            if self._draining:
                raise ProtocolError(
                    "shutting_down", "daemon is draining; no new sessions"
                )
        design = request_field(request, "design", dict)
        config = SessionConfig.from_request(
            request, default_backend=self.config.default_backend
        )
        try:
            layout_from_dict(design)  # validate before claiming a session slot
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", f"invalid design payload: {exc}") from None
        requested = request_field(request, "session", str, required=False)
        with self._mutex:
            if len(self._sessions) >= self.config.max_sessions:
                raise ProtocolError(
                    "session_limit",
                    f"admission control: {self.config.max_sessions} sessions "
                    "already open",
                )
            self._session_counter += 1
            name = requested or f"s{self._session_counter}"
            if name in self._sessions or name in self._closed_sessions:
                raise ProtocolError(
                    "bad_request", f"session name {name!r} already in use"
                )
            # Reserve the slot before the (slow) base legalization so two
            # racing opens cannot both claim the last one.
            self._sessions[name] = None
        try:
            session = Session(name, design, config, inflight=self._inflight)
        except Exception as exc:
            with self._mutex:
                del self._sessions[name]
            if isinstance(exc, ProtocolError):
                raise
            raise ProtocolError(
                "bad_request", f"failed to open session: {exc}"
            ) from None
        with self._mutex:
            if self._draining:
                # close() ran while the base legalization did; it left our
                # placeholder alone, so tear the session down ourselves.
                del self._sessions[name]
                drained = True
            else:
                self._sessions[name] = session
                drained = False
        if drained:
            session.close(return_ledger=False)
            raise ProtocolError("shutting_down", "daemon is draining; no new sessions")
        return ok_response(
            "open_session",
            session=name,
            config=config.to_dict(),
            **session.base_stats,
        )

    def _op_apply_deltas(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._mutex:
            if self._draining:
                raise ProtocolError(
                    "shutting_down", "daemon is draining; no new batches"
                )
        session = self._session_for(request)
        deltas = request_field(request, "deltas", list)
        wait = bool(request_field(request, "wait", bool, required=False, default=True))
        # Admission happens inside submit: the session acquires one
        # in-flight slot per batch at enqueue (raising "busy" at the
        # limit) and holds it until the batch is applied — so queued
        # fire-and-forget batches count too, not just blocking callers.
        result = session.submit(deltas, wait=wait)
        return ok_response("apply_deltas", session=session.name, **result)

    def _server_stats(self) -> Dict[str, Any]:
        """Daemon-wide operational counters (queue/admission visibility)."""
        with self._mutex:
            sessions = {
                name: s for name, s in self._sessions.items() if s is not None
            }
            draining = self._draining
        return {
            "sessions": len(sessions),
            "max_sessions": self.config.max_sessions,
            "inflight": self._inflight.value,
            "max_inflight": self.config.max_inflight,
            "queue_depths": {
                name: s.queue_depth() for name, s in sessions.items()
            },
            "draining": draining,
        }

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session_for(request)
        if request_field(request, "wait", bool, required=False, default=False):
            session.barrier()
        return ok_response("stats", server=self._server_stats(), **session.stats())

    def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The live registry plus per-session engine summaries.

        ``format: "prometheus"`` additionally renders the snapshot in the
        Prometheus text exposition format (the ``text`` response field).
        """
        fmt = request_field(request, "format", str, required=False, default="json")
        if fmt not in ("json", "prometheus"):
            raise ProtocolError(
                "bad_request", f"unknown metrics format {fmt!r} (json, prometheus)"
            )
        server = self._server_stats()
        with self._mutex:
            sessions = {
                name: s for name, s in self._sessions.items() if s is not None
            }
        # Liveness gauges are refreshed at scrape time so the snapshot is
        # current; per-session depth gauges are rebuilt from the live
        # session set so closed sessions do not linger as stale series.
        obs_metrics.set_gauge("repro_inflight", server["inflight"])
        obs_metrics.set_gauge("repro_inflight_limit", server["max_inflight"])
        obs_metrics.set_gauge("repro_sessions_open", server["sessions"])
        obs_metrics.set_gauge("repro_sessions_limit", server["max_sessions"])
        obs_metrics.clear_gauge("repro_session_queue_depth")
        session_summaries = {}
        for name, session in sessions.items():
            depth = server["queue_depths"].get(name, 0)
            obs_metrics.set_gauge("repro_session_queue_depth", depth, session=name)
            session_summaries[name] = {
                "queue_depth": depth,
                **session.counters(),
                "engine": session.engine.lifetime_summary(),
            }
        snapshot = obs_metrics.REGISTRY.snapshot()
        response = ok_response(
            "metrics",
            server=server,
            sessions=session_summaries,
            metrics=snapshot,
        )
        if fmt == "prometheus":
            response["text"] = prometheus_text(snapshot)
        return response

    def _op_repack(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._mutex:
            if self._draining:
                raise ProtocolError(
                    "shutting_down", "daemon is draining; no new work"
                )
        session = self._session_for(request)
        wait = bool(request_field(request, "wait", bool, required=False, default=False))
        result = session.request_repack(wait=wait)
        return ok_response("repack", session=session.name, **result)

    def _op_close_session(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session_for(request)
        with self._mutex:
            self._sessions.pop(session.name, None)
            self._closed_sessions.add(session.name)
        final = session.close(
            return_layout=bool(
                request_field(request, "return_layout", bool, required=False,
                              default=False)
            ),
            return_ledger=bool(
                request_field(request, "return_ledger", bool, required=False,
                              default=True)
            ),
        )
        return ok_response("close_session", **final)

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        drain = bool(request_field(request, "drain", bool, required=False, default=True))
        with self._mutex:
            sessions = len(self._sessions)
        # Drain on a helper thread so this handler can still answer the
        # requester (close() joins the accept loop, not this thread).
        threading.Thread(
            target=self.close, kwargs={"drain": drain},
            name="repro-serve-shutdown", daemon=True,
        ).start()
        response = ok_response("shutdown", sessions_drained=sessions, draining=drain)
        response["_hangup"] = True
        return response
