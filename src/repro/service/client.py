"""Blocking client of the legalization service.

:class:`ServiceClient` is a thin request/response wrapper over the frame
protocol — one TCP connection, one outstanding request at a time (the
daemon happily serves many *clients* concurrently; a single client
wanting pipeline parallelism opens more connections, all addressing the
same session by name).  Error envelopes surface as :class:`ServiceError`
with the structured code preserved, so callers switch on
``exc.code == "busy"`` instead of parsing messages.

The tests, the service benchmark and the ``repro submit`` CLI all drive
the daemon through this class; :class:`SessionHandle` adds the
per-session conveniences (apply/stats/repack/close) plus
:meth:`SessionHandle.verify`, the client-side bit-for-bit check against
an offline replay of the served ledger.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.designio.serialize import layout_fingerprint, layout_to_dict
from repro.geometry.layout import Layout
from repro.incremental.deltas import Delta, DeltaBatch
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.session import SessionConfig, offline_replay


class ServiceError(Exception):
    """A structured error response from the daemon."""

    def __init__(self, code: str, message: str, op: str = "?") -> None:
        super().__init__(f"{op}: [{code}] {message}")
        self.code = code
        self.op = op
        self.detail = message


def _encode_batch(batch: Sequence[Union[Delta, Dict[str, Any]]]) -> List[Dict[str, Any]]:
    return [d.to_dict() if isinstance(d, Delta) else d for d in batch]


class ServiceClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: Optional[float] = 60.0) -> None:
        self.address = (host, port)
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and return the (successful) response payload."""
        payload = {"op": op}
        payload.update(fields)
        send_frame(self._sock, payload)
        try:
            response = recv_frame(self._sock, max_bytes=MAX_FRAME_BYTES)
        except ConnectionClosed:
            raise ServiceError(
                "bad_frame", "daemon closed the connection", op
            ) from None
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "unspecified error")),
                op,
            )
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self.request("shutdown", drain=drain)

    def metrics(self, *, format: Optional[str] = None) -> Dict[str, Any]:
        """Scrape the daemon's metrics registry.

        ``format="prometheus"`` adds a ``text`` field with the registry
        rendered in Prometheus exposition format.
        """
        fields: Dict[str, Any] = {}
        if format is not None:
            fields["format"] = format
        return self.request("metrics", **fields)

    def open_session(
        self,
        design: Union[Layout, Dict[str, Any]],
        *,
        session: Optional[str] = None,
        config: Optional[Union[SessionConfig, Dict[str, Any]]] = None,
    ) -> "SessionHandle":
        """Open a session for ``design`` and return its handle."""
        design_dict = (
            layout_to_dict(design) if isinstance(design, Layout) else design
        )
        config_dict: Dict[str, Any] = {}
        if isinstance(config, SessionConfig):
            config_dict = {k: v for k, v in config.to_dict().items() if v is not None}
        elif config:
            config_dict = dict(config)
        fields: Dict[str, Any] = {"design": design_dict, "config": config_dict}
        if session is not None:
            fields["session"] = session
        response = self.request("open_session", **fields)
        return SessionHandle(self, response["session"], design_dict, response)

    def attach(self, session: str) -> "SessionHandle":
        """Handle for a session opened elsewhere (no design: no verify)."""
        return SessionHandle(self, session, None, {})


class SessionHandle:
    """Client-side face of one open session."""

    def __init__(self, client: ServiceClient, name: str,
                 design: Optional[Dict[str, Any]], opened: Dict[str, Any]) -> None:
        self.client = client
        self.name = name
        self.design = design
        self.opened = opened

    def apply(self, batch: Union[DeltaBatch, Sequence[Dict[str, Any]]], *,
              wait: bool = True) -> Dict[str, Any]:
        """Apply one delta batch (deltas or their JSON dict spelling)."""
        return self.client.request(
            "apply_deltas", session=self.name,
            deltas=_encode_batch(batch), wait=wait,
        )

    def stats(self, *, wait: bool = False) -> Dict[str, Any]:
        """Session counters; ``wait`` barriers the queue first."""
        return self.client.request("stats", session=self.name, wait=wait)

    def repack(self, *, wait: bool = False) -> Dict[str, Any]:
        """Schedule (or, with ``wait``, run) a repack behind the queue."""
        return self.client.request("repack", session=self.name, wait=wait)

    def close(self, *, return_layout: bool = False,
              return_ledger: bool = True) -> Dict[str, Any]:
        """Close the session and return its final state (+ ledger)."""
        return self.client.request(
            "close_session", session=self.name,
            return_layout=return_layout, return_ledger=return_ledger,
        )

    def verify(self, final: Dict[str, Any]) -> bool:
        """Client-side exactness check of a ``close()`` response.

        Replays the served ledger offline through a fresh engine built
        from the design and config this handle opened with, and compares
        placement fingerprints.  True iff the daemon's result is
        bit-for-bit what a private engine would have produced.
        """
        if self.design is None:
            raise ValueError("verify() needs the design; this handle attached blind")
        config_dict = {
            k: v for k, v in (final.get("config") or {}).items() if v is not None
        }
        replayed = offline_replay(
            self.design, final.get("ledger") or [], SessionConfig(**config_dict)
        )
        return layout_fingerprint(replayed) == final.get("fingerprint")
