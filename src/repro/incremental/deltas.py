"""ECO delta model: the edits an incremental legalization call accepts.

An engineering change order (ECO) arrives as a *delta stream*: an ordered
list of small edits against an already-legal layout.  Each delta names a
cell by its stable index (inserts allocate the next index), so a stream
can be generated once, serialized to JSON, and replayed against any copy
of the base layout with identical results.

Five delta kinds cover the ECO traffic the incremental engine serves:

``move``
    Retarget a cell's desired (global-placement) position.  For movable
    cells this floats the cell again; for fixed macros it moves the
    blockage itself.  Fixed-cell positions are snapped to the site/row
    grid (the per-row obstacle index is row-aligned, so off-grid
    blockages would overhang rows the legalizer cannot see); movable
    desired positions may be fractional, exactly like global placement.
``resize``
    Change a cell's width and/or height.
``insert``
    Add a new cell (movable or fixed) at a desired position.
``delete``
    Remove a cell from the design.  Cell indexes must stay stable, so
    deletion tombstones the entry (see
    :meth:`repro.geometry.layout.Layout.retire_cell`).
``set_fixed``
    Freeze a movable cell at its current position, or free a fixed cell
    so the legalizer may place it.

The JSON spelling is one flat object per delta (``{"op": "move",
"index": 12, "gp_x": 31.0, "gp_y": 4.2}``); a *stream* is a list of
*batches* (lists of deltas), one batch per incremental call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union


@dataclass(frozen=True)
class Delta:
    """Base class of all ECO deltas."""

    op = "delta"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the delta (``op`` plus its fields)."""
        out: Dict[str, Any] = {"op": self.op}
        for key, value in self.__dict__.items():
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class MoveCell(Delta):
    """Retarget a cell's desired position (movable) or move a macro (fixed)."""

    index: int
    gp_x: float
    gp_y: float

    op = "move"


@dataclass(frozen=True)
class ResizeCell(Delta):
    """Change a cell's dimensions; omitted fields keep their value."""

    index: int
    width: Optional[float] = None
    height: Optional[int] = None

    op = "resize"


@dataclass(frozen=True)
class InsertCell(Delta):
    """Add a new cell; it receives the next free cell index."""

    width: float
    height: int
    gp_x: float
    gp_y: float
    fixed: bool = False
    name: Optional[str] = None

    op = "insert"


@dataclass(frozen=True)
class DeleteCell(Delta):
    """Remove a cell from the design (tombstoned; indexes stay stable)."""

    index: int

    op = "delete"


@dataclass(frozen=True)
class SetFixed(Delta):
    """Freeze a cell at its current position, or free a fixed cell."""

    index: int
    fixed: bool

    op = "set_fixed"


_DELTA_TYPES: Dict[str, type] = {
    cls.op: cls for cls in (MoveCell, ResizeCell, InsertCell, DeleteCell, SetFixed)
}

#: One incremental call's worth of edits.
DeltaBatch = List[Delta]


def delta_from_dict(data: Dict[str, Any]) -> Delta:
    """Rebuild one delta from its JSON object form."""
    try:
        op = data["op"]
    except (KeyError, TypeError):
        raise ValueError(f"delta object missing 'op' field: {data!r}") from None
    cls = _DELTA_TYPES.get(op)
    if cls is None:
        raise ValueError(
            f"unknown delta op {op!r}; expected one of {sorted(_DELTA_TYPES)}"
        )
    fields = {k: v for k, v in data.items() if k != "op"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValueError(f"malformed {op!r} delta {data!r}: {exc}") from None


def stream_to_dict(batches: Sequence[DeltaBatch]) -> Dict[str, Any]:
    """Convert a delta stream (list of batches) to a JSON-serialisable dict."""
    return {
        "format": "repro-eco-deltas",
        "version": 1,
        "batches": [[delta.to_dict() for delta in batch] for batch in batches],
    }


def stream_from_dict(data: Dict[str, Any]) -> List[DeltaBatch]:
    """Rebuild a delta stream from :func:`stream_to_dict` output.

    Also accepts a bare list of batches (or a single flat batch of delta
    objects, which becomes a one-batch stream) so hand-written files stay
    convenient.
    """
    if isinstance(data, dict):
        batches = data.get("batches")
        if batches is None:
            raise ValueError("delta-stream object has no 'batches' field")
    else:
        batches = data
    if batches and isinstance(batches[0], dict):
        batches = [batches]  # a single flat batch
    return [[delta_from_dict(entry) for entry in batch] for batch in batches]


def save_delta_stream(batches: Sequence[DeltaBatch], path: Union[str, Path]) -> None:
    """Write a delta stream to a JSON file."""
    Path(path).write_text(
        json.dumps(stream_to_dict(batches), indent=1), encoding="utf-8"
    )


def load_delta_stream(path: Union[str, Path]) -> List[DeltaBatch]:
    """Read a delta stream from a JSON file."""
    return stream_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
