"""The incremental (ECO) legalization engine.

A production legalizer rarely sees a design once: after the first full
legalization, engineering change orders (ECOs) keep arriving as small
deltas — cells move, resize, appear and disappear, macros shift — and
each time the layout must be legal again.  Re-running the full legalizer
rebuilds the world from scratch for every batch; this module instead
tracks *dirty state across calls*:

1. :func:`apply_deltas` edits the layout in place through the
   :class:`~repro.geometry.layout.Layout` incremental mutation hooks, so
   the persistent per-row occupancy index and the free-space summary are
   updated (and invalidated) only for the rows a delta actually touches.
2. While applying, it computes the **minimal dirty set**: cells a delta
   targets directly, plus legalized cells whose rectangles overlap a
   new/changed footprint — found by a spatial sweep over the occupancy
   index, never by a full-layout scan.
3. :class:`IncrementalLegalizer` then re-legalizes *only* the dirty set
   through :meth:`repro.mgl.legalizer.MGLLegalizer.legalize_subset`,
   reusing the existing processing ordering, occupancy-aware window
   planner and whatever kernel backend is registered (including
   ``multiprocess``) completely unchanged.  When dirtiness exceeds a
   configurable threshold it falls back to a full re-legalization, where
   a from-scratch run is cheaper than chasing a huge dirty set.

Exactness contract
------------------
For every delta batch the incremental result is **bit-for-bit
identical** to running the full legalizer on the post-delta layout (the
full run's pending set *is* the dirty set, and ordering, window planning
and kernels all restrict naturally).  :func:`reference_relegalize`
implements that oracle — it replays the same deltas onto a copy, rebuilds
every index from scratch and runs the plain full legalizer — and the
property suite in ``tests/test_incremental.py`` holds the engine to it
on every backend.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.incremental.deltas import (
    Delta,
    DeltaBatch,
    DeleteCell,
    InsertCell,
    MoveCell,
    ResizeCell,
    SetFixed,
)
from repro.kernels import BackendSpec
from repro.mgl.legalizer import LegalizationResult, MGLLegalizer
from repro.obs import event as obs_event
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.perf.counters import IncrementalStats, LegalizationTrace

#: Default dirty fraction above which a full re-legalization is cheaper
#: than an incremental pass (the dirty set is most of the design anyway,
#: and the full run amortises its world rebuild over every cell).
DEFAULT_FULL_THRESHOLD = 0.5


def _relative_drift(value: float, baseline: float) -> float:
    """Relative drift of ``value`` over ``baseline`` (0.0 for baseline 0)."""
    if baseline <= 0.0:
        return 0.0
    return value / baseline - 1.0


# ----------------------------------------------------------------------
# Delta application + dirty-set tracking
# ----------------------------------------------------------------------
@dataclass
class AppliedDeltas:
    """Outcome of applying one delta batch to a layout."""

    dirty: List[int] = field(default_factory=list)
    """Sorted indices of the movable cells that must be re-legalized."""

    dirty_direct: int = 0
    dirty_overlap: int = 0
    deltas_applied: int = 0
    rows_touched: int = 0


def _live_cell(layout: Layout, index: int) -> Cell:
    """The cell a delta addresses; rejects bad indices and tombstones."""
    if not 0 <= index < len(layout.cells):
        raise ValueError(f"delta targets unknown cell index {index}")
    cell = layout.cells[index]
    if layout.is_retired(cell):
        raise ValueError(f"delta targets deleted cell {cell.name} (index {index})")
    return cell


def _require_fits_chip(layout: Layout, width: float, height: int, *, what: str) -> None:
    """Reject dimensions no position on the chip can host.

    The old clamp silently parked an oversized cell at the origin with
    its rectangle hanging off the chip — an out-of-chip "placement" that
    every later query (occupancy, legality, shard windows) mishandles in
    its own way.  Degenerate geometry is a caller error; raise it.
    """
    if width > layout.width or height > layout.num_rows:
        raise ValueError(
            f"{what}: cell of width {width} x height {height} does not fit "
            f"the chip ({layout.width:g} sites x {layout.num_rows} rows)"
        )


def _clip_position(layout: Layout, x: float, y: float, width: float, height: int):
    """Clamp a desired position so the cell's rectangle stays on-chip.

    Raises :class:`ValueError` when the cell is wider or taller than the
    chip itself (no clamp can make it fit); negative origins and
    past-the-edge positions clamp to the nearest in-chip position,
    including exactly onto the chip boundary (zero clearance is legal).
    """
    _require_fits_chip(layout, width, height, what="clip")
    x = min(max(0.0, float(x)), layout.width - width)
    y = min(max(0.0, float(y)), float(layout.num_rows - height))
    return x, y


def _snap_fixed_position(layout: Layout, x: float, y: float, width: float, height: int):
    """Snap a fixed cell's position to the site/row grid, then clip.

    The per-row obstacle index registers a cell in the rows of its
    *rounded* bottom coordinate, so an off-grid blockage would physically
    overhang rows the legalizer cannot see.  Every design source places
    blockages on-grid; ECO macro deltas must land there too.  Clipping
    must preserve the grid: for a fractional-width macro the raw clamp
    bound ``chip_width - width`` is itself off-grid, so the upper bounds
    are floored to the last on-grid position that keeps the rectangle
    on-chip.
    """
    _require_fits_chip(layout, width, height, what="snap")
    x = min(max(0.0, float(round(x))), float(math.floor(layout.width - width)))
    y = min(max(0.0, float(round(y))), float(layout.num_rows - height))
    return x, y


class _DirtyTracker:
    """Accumulates the dirty set and the touched-row accounting."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout
        self.cause: Dict[int, str] = {}  # cell index -> "direct" | "overlap"
        self.rows: Set[int] = set()

    def touch_rows(self, cell: Cell) -> None:
        bottom, top = cell.row_span
        self.rows.update(range(max(0, bottom), min(self.layout.num_rows, top)))

    def mark_direct(self, cell: Cell) -> None:
        self.cause.setdefault(cell.index, "direct")

    def drop(self, cell: Cell) -> None:
        self.cause.pop(cell.index, None)

    def sweep_overlaps(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float,
                       exclude: int) -> None:
        """Dirty every legalized cell overlapping the given rectangle.

        Walks only the occupancy-index rows the rectangle intersects —
        this is the spatial dirty query, O(rows x obstacles-in-span),
        never a full-layout scan.  Overlapped cells are unlegalized
        immediately (removing them from the index) so later deltas and
        the re-legalization see a consistent world.
        """
        layout = self.layout
        row_lo = max(0, int(math.floor(y_lo)))
        row_hi = min(layout.num_rows, int(math.ceil(y_hi)))
        hits: Dict[int, Cell] = {}
        for row in range(row_lo, row_hi):
            for cell in layout.obstacles_in_row_window(row, x_lo, x_hi):
                if cell.fixed or cell.index == exclude or cell.index in hits:
                    continue
                if (cell.x < x_hi and cell.right > x_lo
                        and cell.y < y_hi and cell.top > y_lo):
                    hits[cell.index] = cell
        for cell in hits.values():
            self.touch_rows(cell)
            layout.unlegalize_cell(cell)
            self.cause.setdefault(cell.index, "overlap")

    def result(self, deltas_applied: int) -> AppliedDeltas:
        direct = sum(1 for v in self.cause.values() if v == "direct")
        return AppliedDeltas(
            dirty=sorted(self.cause),
            dirty_direct=direct,
            dirty_overlap=len(self.cause) - direct,
            deltas_applied=deltas_applied,
            rows_touched=len(self.rows),
        )


def validate_deltas(layout: Layout, deltas: Sequence[Delta]) -> None:
    """Reject an invalid batch *before* any mutation happens.

    Simulates just enough state (cell count, tombstones, fixed flags,
    widths) to catch every error :func:`apply_deltas` could otherwise
    raise mid-batch — bad indices, deltas against deleted cells, invalid
    resize dimensions, freeing a zero-width marker, unknown delta types.
    A batch that passes validation applies atomically; one that fails
    leaves the layout (and the engine's persistent state) untouched.
    """
    n = len(layout.cells)
    retired = {c.index for c in layout.cells if layout.is_retired(c)}
    fixed: Dict[int, bool] = {}
    widths: Dict[int, float] = {}
    heights: Dict[int, int] = {}

    def live(index: int, op: str) -> None:
        if not 0 <= index < n:
            raise ValueError(f"{op} delta targets unknown cell index {index}")
        if index in retired:
            raise ValueError(f"{op} delta targets deleted cell index {index}")

    def is_fixed(index: int) -> bool:
        return fixed.get(index, layout.cells[index].fixed if index < len(layout.cells) else False)

    def width_of(index: int) -> float:
        return widths.get(index, layout.cells[index].width if index < len(layout.cells) else 1.0)

    def height_of(index: int) -> int:
        return heights.get(index, layout.cells[index].height if index < len(layout.cells) else 1)

    def fits(width: float, height: int, op: str) -> None:
        if width > layout.width or height > layout.num_rows:
            raise ValueError(
                f"{op} delta: cell of width {width} x height {height} does not "
                f"fit the chip ({layout.width:g} sites x {layout.num_rows} rows)"
            )

    for delta in deltas:
        if isinstance(delta, MoveCell):
            live(delta.index, "move")
            # A base layout may hold a cell larger than the chip (a
            # malformed import); moving it would otherwise raise deep in
            # apply_deltas, after earlier deltas already mutated state.
            fits(width_of(delta.index), height_of(delta.index), "move")
        elif isinstance(delta, ResizeCell):
            live(delta.index, "resize")
            width = width_of(delta.index) if delta.width is None else float(delta.width)
            height = height_of(delta.index) if delta.height is None else int(delta.height)
            if width < 0 or (width == 0 and not is_fixed(delta.index)):
                raise ValueError(f"resize delta: width must be positive, got {width}")
            if delta.height is not None and int(delta.height) < 1:
                raise ValueError(f"resize delta: height must be >= 1, got {delta.height}")
            fits(width, height, "resize")
            widths[delta.index] = width
            heights[delta.index] = height
        elif isinstance(delta, InsertCell):
            if delta.width < 0 or (delta.width == 0 and not delta.fixed):
                raise ValueError(f"insert delta: width must be positive, got {delta.width}")
            if int(delta.height) < 1:
                raise ValueError(f"insert delta: height must be >= 1, got {delta.height}")
            fits(float(delta.width), int(delta.height), "insert")
            fixed[n] = delta.fixed
            widths[n] = float(delta.width)
            heights[n] = int(delta.height)
            if delta.fixed and delta.width == 0.0:
                # A zero-width fixed marker is indistinguishable from a
                # tombstone; later deltas must not address it.
                retired.add(n)
            n += 1
        elif isinstance(delta, DeleteCell):
            live(delta.index, "delete")
            retired.add(delta.index)
        elif isinstance(delta, SetFixed):
            live(delta.index, "set_fixed")
            if delta.fixed:
                # Freezing a floating cell snaps it to the grid, which
                # rejects cells larger than the chip — check here so the
                # batch stays atomic.
                fits(width_of(delta.index), height_of(delta.index), "set_fixed")
            if not delta.fixed and width_of(delta.index) == 0.0:
                raise ValueError(
                    f"set_fixed delta: cell index {delta.index} has zero width "
                    "and cannot become movable"
                )
            fixed[delta.index] = delta.fixed
        else:
            raise TypeError(f"unknown delta type {type(delta).__name__}")


def apply_deltas(layout: Layout, deltas: Sequence[Delta]) -> AppliedDeltas:
    """Apply one ECO delta batch to ``layout`` in place.

    The batch is validated up front (:func:`validate_deltas`) so it
    applies atomically: an invalid batch raises without touching the
    layout.  Maintains the per-row occupancy index incrementally (no
    rebuild) and returns the minimal dirty set: exactly the movable
    cells that are unlegalized afterwards and must be re-placed.
    Deterministic — the same batch applied to equal layouts yields
    identical layouts and identical dirty sets, which is what makes the
    incremental and the from-scratch reference paths comparable bit for
    bit.
    """
    validate_deltas(layout, deltas)
    tracker = _DirtyTracker(layout)
    for delta in deltas:
        if isinstance(delta, MoveCell):
            cell = _live_cell(layout, delta.index)
            if cell.fixed:
                x, y = _snap_fixed_position(
                    layout, delta.gp_x, delta.gp_y, cell.width, cell.height
                )
                tracker.touch_rows(cell)
                layout.relocate_fixed(cell, x, y)
                cell.gp_x, cell.gp_y = x, y
                tracker.touch_rows(cell)
                tracker.sweep_overlaps(cell.x, cell.right, cell.y, cell.top, cell.index)
            else:
                x, y = _clip_position(
                    layout, delta.gp_x, delta.gp_y, cell.width, cell.height
                )
                if cell.legalized:
                    tracker.touch_rows(cell)
                layout.unlegalize_cell(cell)
                cell.gp_x, cell.gp_y = x, y
                cell.x, cell.y = x, y
                tracker.mark_direct(cell)
        elif isinstance(delta, ResizeCell):
            cell = _live_cell(layout, delta.index)
            tracker.touch_rows(cell)
            if cell.fixed:
                layout.resize_cell(cell, delta.width, delta.height)
                x, y = _snap_fixed_position(layout, cell.x, cell.y, cell.width, cell.height)
                if (x, y) != (cell.x, cell.y):
                    layout.relocate_fixed(cell, x, y)
                    cell.gp_x, cell.gp_y = x, y
                tracker.touch_rows(cell)
                tracker.sweep_overlaps(cell.x, cell.right, cell.y, cell.top, cell.index)
            else:
                layout.unlegalize_cell(cell)
                layout.resize_cell(cell, delta.width, delta.height)
                cell.gp_x, cell.gp_y = _clip_position(
                    layout, cell.gp_x, cell.gp_y, cell.width, cell.height
                )
                cell.x, cell.y = cell.gp_x, cell.gp_y
                tracker.mark_direct(cell)
        elif isinstance(delta, InsertCell):
            index = len(layout.cells)
            snap = _snap_fixed_position if delta.fixed else _clip_position
            x, y = snap(layout, delta.gp_x, delta.gp_y, delta.width, delta.height)
            cell = Cell(
                index=index,
                width=delta.width,
                height=delta.height,
                gp_x=x,
                gp_y=y,
                x=x,
                y=y,
                fixed=delta.fixed,
                name=delta.name or f"eco{index}",
            )
            layout.add_cell(cell)
            if cell.fixed:
                tracker.touch_rows(cell)
                tracker.sweep_overlaps(cell.x, cell.right, cell.y, cell.top, cell.index)
            else:
                tracker.mark_direct(cell)
        elif isinstance(delta, DeleteCell):
            cell = _live_cell(layout, delta.index)
            tracker.touch_rows(cell)
            layout.retire_cell(cell)
            tracker.drop(cell)
        elif isinstance(delta, SetFixed):
            cell = _live_cell(layout, delta.index)
            if delta.fixed and not cell.fixed:
                was_floating = not cell.legalized
                if was_floating:
                    # Not in the index yet, so the position can be edited
                    # directly: freeze on the placement grid.
                    cell.x, cell.y = _snap_fixed_position(
                        layout, cell.x, cell.y, cell.width, cell.height
                    )
                tracker.touch_rows(cell)
                layout.set_cell_fixed(cell, True)
                tracker.drop(cell)
                if was_floating:
                    # Frozen at an unlegalized position: the new blockage
                    # may overlap committed placements.
                    tracker.sweep_overlaps(
                        cell.x, cell.right, cell.y, cell.top, cell.index
                    )
            elif not delta.fixed and cell.fixed:
                tracker.touch_rows(cell)
                layout.set_cell_fixed(cell, False)
                tracker.mark_direct(cell)
        else:
            raise TypeError(f"unknown delta type {type(delta).__name__}")
    return tracker.result(len(deltas))


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class IncrementalResult:
    """Outcome of one incremental call: the run plus its reuse counters."""

    legalization: LegalizationResult
    stats: IncrementalStats

    @property
    def layout(self) -> Layout:
        return self.legalization.layout

    @property
    def trace(self):
        return self.legalization.trace

    @property
    def success(self) -> bool:
        return self.legalization.success

    @property
    def average_displacement(self) -> float:
        return self.legalization.average_displacement


class IncrementalLegalizer:
    """Keeps one layout legal across a stream of ECO delta batches.

    Parameters
    ----------
    legalizer:
        The wrapped :class:`~repro.mgl.legalizer.MGLLegalizer` (or a
        compatible object exposing ``legalize`` / ``legalize_subset``).
        Defaults to an ``MGLLegalizer`` with default parameters.
    backend:
        Convenience kernel-backend override applied to the legalizer
        (any :mod:`repro.kernels` spec, e.g. ``"numpy"`` or
        ``"multiprocess:4"``).
    full_threshold:
        Dirty fraction (dirty cells / movable cells) above which the
        engine resets every movable cell and runs a full legalization
        instead of an incremental pass.  ``0.0`` forces the full path on
        *any* dirt (every non-empty batch); ``1.0`` never takes it.
    max_avedis_drift:
        Displacement budget of the quality governor: the maximum
        *relative* AveDis drift tolerated over the quality baseline
        snapshot (e.g. ``0.05`` = 5 %).  After an incremental pass whose
        AveDis exceeds ``baseline * (1 + max_avedis_drift)`` the engine
        **repacks** — resets every movable cell to its global placement
        position and runs one full legalization — and refreshes the
        baseline from the repacked layout.  ``None`` (default) disables
        the reactive repack, preserving the pure incremental semantics
        (bit-for-bit equal to :func:`reference_relegalize`).
    repack_every:
        Scheduled repack period: every ``repack_every``-th non-empty
        batch runs a repack instead of an incremental pass, regardless
        of measured drift.  ``None`` (default) disables the schedule.
    max_fragmentation_drift:
        Fragmentation budget: maximum *absolute* increase of
        :meth:`~repro.geometry.layout.Layout.free_space_fragmentation`
        over the baseline snapshot before a repack fires (fragmentation
        is already a 0–1 fraction, so the budget is an absolute delta,
        e.g. ``0.15``).  ``None`` (default) disables the check.
    fragmentation_min_gap:
        Gap width below which free space counts as fragmented; defaults
        to the layout's mean movable-cell width.
    track_fragmentation:
        Record the fragmentation trajectory in the per-call stats even
        when no fragmentation budget is set (the soak harness wants the
        curve without the governor).  Defaults to "only when
        ``max_fragmentation_drift`` is set".

    Long ECO streams are where the budgets matter: each incremental pass
    is locally optimal, but AveDis can ratchet upward batch over batch
    (the paper's "repeated local legalization degrades global quality"
    failure mode).  The governor bounds that drift at the cost of an
    occasional full repack; ``repacks_total`` / ``batches_since_repack``
    on the engine and the per-call :class:`IncrementalStats` expose when
    and why it intervened.  Repack decisions depend only on placements,
    which are bit-for-bit identical across kernel backends, so a
    governed stream still ends in the same layout on every backend and
    worker count.

    Usage::

        engine = IncrementalLegalizer(backend="numpy", max_avedis_drift=0.05)
        engine.begin(layout)               # full legalization if needed
        result = engine.apply(deltas)      # one ECO batch
        print(incremental_summary(result.stats))
    """

    def __init__(
        self,
        legalizer: Optional[MGLLegalizer] = None,
        *,
        backend: BackendSpec = None,
        full_threshold: float = DEFAULT_FULL_THRESHOLD,
        max_avedis_drift: Optional[float] = None,
        repack_every: Optional[int] = None,
        max_fragmentation_drift: Optional[float] = None,
        fragmentation_min_gap: Optional[float] = None,
        track_fragmentation: Optional[bool] = None,
    ) -> None:
        if legalizer is None:
            legalizer = MGLLegalizer(backend=backend)
        elif backend is not None:
            legalizer = legalizer.with_backend(backend)
        if not 0.0 <= full_threshold <= 1.0:
            raise ValueError(f"full_threshold must be in [0, 1], got {full_threshold}")
        if max_avedis_drift is not None and max_avedis_drift < 0.0:
            raise ValueError(
                f"max_avedis_drift must be >= 0, got {max_avedis_drift}"
            )
        if repack_every is not None and int(repack_every) < 1:
            raise ValueError(f"repack_every must be >= 1, got {repack_every}")
        if max_fragmentation_drift is not None and max_fragmentation_drift < 0.0:
            raise ValueError(
                f"max_fragmentation_drift must be >= 0, got {max_fragmentation_drift}"
            )
        if max_fragmentation_drift is not None and track_fragmentation is False:
            # An untracked baseline would freeze at 0.0, silently turning
            # the relative budget into an absolute cap that repacks every
            # batch once fragmentation exceeds it.
            raise ValueError(
                "max_fragmentation_drift requires fragmentation tracking; "
                "leave track_fragmentation unset (or True)"
            )
        self.legalizer = legalizer
        self.full_threshold = full_threshold
        self.max_avedis_drift = max_avedis_drift
        self.repack_every = None if repack_every is None else int(repack_every)
        self.max_fragmentation_drift = max_fragmentation_drift
        self.fragmentation_min_gap = fragmentation_min_gap
        self.track_fragmentation = (
            max_fragmentation_drift is not None
            if track_fragmentation is None
            else bool(track_fragmentation)
        )
        self.layout: Optional[Layout] = None
        #: Per-call reuse counters, most recent last.
        self.history: List[IncrementalStats] = []
        #: Repacks performed over the engine's lifetime.
        self.repacks_total = 0
        #: Non-empty batches since the last baseline refresh.
        self.batches_since_repack = 0
        self._baseline_avedis: float = 0.0
        self._baseline_frag: float = 0.0
        self._last_displacement = None  # DisplacementStats of the layout

    # ------------------------------------------------------------------
    def begin(self, layout: Layout) -> Optional[LegalizationResult]:
        """Adopt ``layout`` as the persistent design.

        If the layout still has unlegalized movable cells they are
        legalized now (one full run); an already-legal layout is adopted
        as-is after one index build — the last full rebuild the engine
        ever pays.  Either way the adopted state becomes the quality
        baseline the drift budgets are measured against.
        """
        self.layout = layout
        self.history = []
        self.repacks_total = 0
        result: Optional[LegalizationResult] = None
        if layout.unlegalized_cells():
            result = self.legalizer.legalize(layout)
            self._last_displacement = result.stats
        else:
            layout.rebuild_index()
            self._last_displacement = self.legalizer.metrics.compute(layout)
        self._refresh_baseline(self._last_displacement.average_displacement)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release resources held by the underlying legalizer.

        ECO engines are long-lived by design, which is exactly how a
        persistent multiprocess worker pool outlives its usefulness —
        soak drivers should ``close()`` (or use the engine as a context
        manager) when the stream ends.  Safe on custom legalizer objects
        without a ``close`` method, idempotent, and non-terminal: the
        next batch recreates whatever the backend needs.
        """
        closer = getattr(self.legalizer, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "IncrementalLegalizer":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def _fragmentation(self) -> float:
        assert self.layout is not None
        return self.layout.free_space_fragmentation(self.fragmentation_min_gap)

    def _refresh_baseline(self, avedis: float) -> None:
        """Snapshot the current layout as the quality baseline."""
        self._baseline_avedis = avedis
        if self.track_fragmentation:
            self._baseline_frag = self._fragmentation()
        self.batches_since_repack = 0

    def _repack(self) -> LegalizationResult:
        """Reset every movable cell and re-legalize the whole design."""
        assert self.layout is not None
        self.layout.reset_positions()
        result = self.legalizer.legalize(self.layout)
        self.repacks_total += 1
        self._refresh_baseline(result.stats.average_displacement)
        return result

    def _drift_reason(self, avedis: float, fragmentation: float) -> str:
        """Which budget (if any) the post-pass layout state exceeds."""
        if self.max_avedis_drift is not None:
            allowed = self._baseline_avedis * (1.0 + self.max_avedis_drift)
            if avedis > allowed + 1e-12:
                return "drift"
        if self.max_fragmentation_drift is not None:
            if fragmentation > self._baseline_frag + self.max_fragmentation_drift:
                return "fragmentation"
        return ""

    def _noop_result(self, start: float) -> IncrementalResult:
        """An empty batch: nothing changed, so nothing runs.

        No validation sweep, no dirty-set computation, no subset
        machinery, no metric recomputation — the previous displacement
        statistics are still exact because the layout is untouched.
        """
        assert self.layout is not None
        layout = self.layout
        displacement = self._last_displacement
        if displacement is None:  # begin() always sets it; stay safe
            displacement = self.legalizer.metrics.compute(layout)
            self._last_displacement = displacement
        trace = LegalizationTrace(
            design_name=layout.name,
            algorithm=getattr(self.legalizer, "algorithm_name", "mgl"),
            num_cells=len(layout.cells),
            num_movable=displacement.num_cells,
        )
        legalization = LegalizationResult(layout=layout, trace=trace, stats=displacement)
        prev = self.history[-1] if self.history else None
        stats = IncrementalStats(
            num_movable=displacement.num_cells,
            reused_cells=displacement.num_cells,
            mode="noop",
            full_threshold=self.full_threshold,
            wall_seconds=time.perf_counter() - start,
            avedis=displacement.average_displacement,
            baseline_avedis=self._baseline_avedis,
            avedis_drift=_relative_drift(
                displacement.average_displacement, self._baseline_avedis
            ),
            fragmentation=prev.fragmentation if prev else self._baseline_frag,
            fragmentation_tracked=self.track_fragmentation,
            baseline_fragmentation=self._baseline_frag,
            repacks_total=self.repacks_total,
            batches_since_repack=self.batches_since_repack,
        )
        self.history.append(stats)
        return IncrementalResult(legalization=legalization, stats=stats)

    # ------------------------------------------------------------------
    def apply(self, deltas: Sequence[Delta]) -> IncrementalResult:
        """Apply one ECO delta batch and restore legality.

        Returns the re-legalization result together with the dirty-set /
        reuse counters.  The placements of all non-dirty cells are
        reused unchanged — unless this call triggered a repack, in which
        case every movable cell was re-derived from its global placement
        position.
        """
        if self.layout is None:
            raise RuntimeError(
                "IncrementalLegalizer.apply() called before begin(); adopt a "
                "layout with begin(layout) first"
            )
        layout = self.layout
        start = time.perf_counter()
        if len(deltas) == 0:
            return self._noop_result(start)
        # An invalid batch raises here, before any mutation: the layout
        # is untouched and the engine stays usable.
        validate_deltas(layout, deltas)
        try:
            applied = apply_deltas(layout, deltas)
        except Exception:
            # Validation passed yet application failed: internal error.
            # The layout may be half-mutated, so force a fresh begin()
            # (which fully re-adopts and, if needed, re-legalizes).
            self.layout = None
            raise
        num_movable = len(layout.movable_cells())
        dirty_cells = [layout.cells[i] for i in applied.dirty]
        dirty_fraction = len(dirty_cells) / max(1, num_movable)
        self.batches_since_repack += 1
        repack_reason = ""

        force_full = bool(dirty_cells) and (
            dirty_fraction > self.full_threshold or self.full_threshold == 0.0
        )
        fragmentation = 0.0
        with span(
            "eco.batch",
            deltas=applied.deltas_applied,
            dirty=len(dirty_cells),
            movable=num_movable,
        ) as sp:
            if force_full:
                mode = "full"
                layout.reset_positions()
                result = self.legalizer.legalize(layout)
                # A full reset re-derives every placement from its global
                # position — exactly what a repack produces — so it refreshes
                # the baseline (but is not counted as a governor repack).
                self._refresh_baseline(result.stats.average_displacement)
                fragmentation = self._baseline_frag  # just snapshotted from this state
            elif (
                self.repack_every is not None
                and self.batches_since_repack >= self.repack_every
            ):
                mode, repack_reason = "repack", "scheduled"
                obs_event(
                    "eco.governor",
                    decision="scheduled",
                    batches_since_repack=self.batches_since_repack,
                    repack_every=self.repack_every,
                )
                result = self._repack()
                fragmentation = self._baseline_frag
            else:
                mode = "incremental"
                result = self.legalizer.legalize_subset(layout, dirty_cells)
                if self.track_fragmentation:
                    fragmentation = self._fragmentation()
                reason = self._drift_reason(
                    result.stats.average_displacement, fragmentation
                )
                if reason:
                    mode, repack_reason = "repack", reason
                    # The governor decision record: the drift/fragmentation
                    # values that tripped the budget, alongside the budgets.
                    obs_event(
                        "eco.governor",
                        decision=reason,
                        avedis=result.stats.average_displacement,
                        baseline_avedis=self._baseline_avedis,
                        fragmentation=fragmentation,
                        baseline_fragmentation=self._baseline_frag,
                        max_avedis_drift=self.max_avedis_drift,
                        max_fragmentation_drift=self.max_fragmentation_drift,
                    )
                    result = self._repack()
                    fragmentation = self._baseline_frag
            sp.set(mode=mode, repack_reason=repack_reason)
        obs_metrics.inc("repro_eco_batches_total", mode=mode)
        if repack_reason:
            obs_metrics.inc("repro_eco_repacks_total", reason=repack_reason)

        self._last_displacement = result.stats
        avedis = result.stats.average_displacement
        stats = IncrementalStats(
            deltas_applied=applied.deltas_applied,
            dirty_direct=applied.dirty_direct,
            dirty_overlap=applied.dirty_overlap,
            dirty_total=len(dirty_cells),
            num_movable=num_movable,
            reused_cells=num_movable - len(dirty_cells) if mode == "incremental" else 0,
            rows_touched=applied.rows_touched,
            mode=mode,
            full_threshold=self.full_threshold,
            wall_seconds=time.perf_counter() - start,
            avedis=avedis,
            baseline_avedis=self._baseline_avedis,
            avedis_drift=_relative_drift(avedis, self._baseline_avedis),
            fragmentation=fragmentation,
            fragmentation_tracked=self.track_fragmentation,
            baseline_fragmentation=self._baseline_frag,
            repack_reason=repack_reason,
            repacks_total=self.repacks_total,
            batches_since_repack=self.batches_since_repack,
        )
        obs_metrics.observe("repro_eco_batch_seconds", stats.wall_seconds, mode=mode)
        self.history.append(stats)
        return IncrementalResult(legalization=result, stats=stats)

    # ------------------------------------------------------------------
    def repack(self) -> IncrementalResult:
        """Explicitly reset every movable cell and re-legalize the design.

        The service layer (and any other long-lived driver) can schedule
        repacks off its hot path instead of waiting for a governor budget
        to trip; an explicit repack runs the same reset-and-legalize as a
        governor repack, counts in ``repacks_total`` and refreshes the
        quality baseline.  Recorded in :attr:`history` with
        ``repack_reason="requested"`` so replay ledgers can reproduce it
        at the same point in the stream.
        """
        if self.layout is None:
            raise RuntimeError(
                "IncrementalLegalizer.repack() called before begin(); adopt a "
                "layout with begin(layout) first"
            )
        start = time.perf_counter()
        num_movable = len(self.layout.movable_cells())
        with span("eco.repack", reason="requested"):
            result = self._repack()
        obs_metrics.inc("repro_eco_repacks_total", reason="requested")
        self._last_displacement = result.stats
        avedis = result.stats.average_displacement
        stats = IncrementalStats(
            num_movable=num_movable,
            mode="repack",
            full_threshold=self.full_threshold,
            wall_seconds=time.perf_counter() - start,
            avedis=avedis,
            baseline_avedis=self._baseline_avedis,
            avedis_drift=_relative_drift(avedis, self._baseline_avedis),
            fragmentation=self._baseline_frag,
            fragmentation_tracked=self.track_fragmentation,
            baseline_fragmentation=self._baseline_frag,
            repack_reason="requested",
            repacks_total=self.repacks_total,
            batches_since_repack=self.batches_since_repack,
        )
        self.history.append(stats)
        return IncrementalResult(legalization=result, stats=stats)

    # ------------------------------------------------------------------
    def lifetime_summary(self) -> Dict[str, object]:
        """Aggregate counters over the engine's whole history.

        The session layer of the service daemon reports this from its
        ``stats`` / ``close_session`` responses; it is equally handy for
        soak drivers that only want the end-of-stream picture.
        """
        modes: Dict[str, int] = {}
        for entry in self.history:
            modes[entry.mode] = modes.get(entry.mode, 0) + 1
        last = self.history[-1] if self.history else None
        return {
            "batches": len(self.history),
            "modes": modes,
            "deltas_applied": sum(s.deltas_applied for s in self.history),
            "cells_relegalized": sum(s.dirty_total for s in self.history),
            "repacks_total": self.repacks_total,
            "batches_since_repack": self.batches_since_repack,
            "wall_seconds": sum(s.wall_seconds for s in self.history),
            "avedis": last.avedis if last else 0.0,
            "avedis_drift": last.avedis_drift if last else 0.0,
        }

    # ------------------------------------------------------------------
    def replay(self, batches: Sequence[DeltaBatch]) -> List[IncrementalResult]:
        """Apply a whole delta stream, one :meth:`apply` per batch."""
        return [self.apply(batch) for batch in batches]


# ----------------------------------------------------------------------
# The exactness oracle
# ----------------------------------------------------------------------
def reference_relegalize(
    base_layout: Layout,
    batches: Sequence[DeltaBatch],
    *,
    legalizer: Optional[MGLLegalizer] = None,
    backend: BackendSpec = None,
) -> Layout:
    """From-scratch oracle for the incremental engine.

    Replays ``batches`` onto a copy of ``base_layout``; after each batch
    every index and summary is rebuilt from scratch and the plain *full*
    legalizer runs on the post-delta layout — whose pending set is
    exactly the dirty set, so this is "the full legalizer with the same
    ordering restricted to the dirty set".  The returned layout must
    match the engine's persistent layout bit for bit.
    """
    if legalizer is None:
        legalizer = MGLLegalizer(backend=backend)
    elif backend is not None:
        legalizer = legalizer.with_backend(backend)
    layout = base_layout.copy()
    if layout.unlegalized_cells():
        legalizer.legalize(layout)
    for batch in batches:
        apply_deltas(layout, batch)
        layout.rebuild_index()
        legalizer.legalize(layout)
    return layout
