"""Incremental (ECO) legalization: delta workloads over a legal layout.

The FLEX flow legalizes a placement once; real deployments re-legalize
the *same* design hundreds of times after small engineering-change-order
deltas.  This package serves that workload:

* :mod:`repro.incremental.deltas` — the delta model (move / resize /
  insert / delete / set_fixed) and its JSON stream format;
* :mod:`repro.incremental.engine` — :class:`IncrementalLegalizer`, which
  applies delta batches through the layout's incremental mutation hooks,
  computes the minimal dirty set via the persistent per-row occupancy
  index, and re-legalizes only the dirty targets (full-relegalize
  fallback above a churn threshold);
* :func:`reference_relegalize` — the from-scratch oracle the engine is
  held bit-for-bit equal to.

Seeded delta-stream generation at configurable churn rates lives in
:mod:`repro.benchgen.eco`; the churn-sweep experiment in
:mod:`repro.experiments.eco_churn`; the CLI in ``repro eco``.
"""

from repro.incremental.deltas import (
    Delta,
    DeltaBatch,
    DeleteCell,
    InsertCell,
    MoveCell,
    ResizeCell,
    SetFixed,
    delta_from_dict,
    load_delta_stream,
    save_delta_stream,
    stream_from_dict,
    stream_to_dict,
)
from repro.incremental.engine import (
    DEFAULT_FULL_THRESHOLD,
    AppliedDeltas,
    IncrementalLegalizer,
    IncrementalResult,
    apply_deltas,
    reference_relegalize,
    validate_deltas,
)

__all__ = [
    "Delta",
    "DeltaBatch",
    "MoveCell",
    "ResizeCell",
    "InsertCell",
    "DeleteCell",
    "SetFixed",
    "delta_from_dict",
    "stream_to_dict",
    "stream_from_dict",
    "save_delta_stream",
    "load_delta_stream",
    "AppliedDeltas",
    "apply_deltas",
    "validate_deltas",
    "IncrementalLegalizer",
    "IncrementalResult",
    "reference_relegalize",
    "DEFAULT_FULL_THRESHOLD",
]
