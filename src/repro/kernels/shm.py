"""Shared-memory cell-state synchronisation for the multiprocess backend.

The multiprocess backend used to hand each worker a full pickled layout
through a fresh fork on **every** run — the dominant cost that made the
worker sweep a tax instead of a win.  This module replaces that with an
epoch-versioned publish/attach protocol over one
:mod:`multiprocessing.shared_memory` segment:

* The parent's :class:`SharedCellStore` stages the numeric state of
  every cell (x, y, gp_x, gp_y, width, height, fixed/legalized flags)
  into a single float64 block of shape ``(7, capacity)`` and bumps an
  *epoch* counter per publish.  Cell metadata that numbers cannot carry
  (design dimensions, cell names) travels over the worker pipes exactly
  once per design — and only the appended tail when an ECO stream grows
  the cell list.
* Each worker holds a :class:`WorkerLayoutMirror`: a skeleton
  :class:`~repro.geometry.layout.Layout` whose cells are refreshed from
  the shared arrays whenever the worker sees a task stamped with a newer
  epoch.  Attaching is zero-copy; the refresh is one bulk
  ``float64 -> python float`` conversion plus an index rebuild.

float64 round-trips python floats exactly, widths/heights/flags are
small integers far below 2**53, and the per-row obstacle index is
rebuilt with the same sorted-by-``(x, index)`` invariant the parent
maintains incrementally — so a synced mirror is *bit-for-bit* the
parent's layout, which is what keeps the backend's equivalence
guarantee intact.

When numpy is unavailable the store degrades to *snapshot mode*: the
same column layout is shipped as plain lists over the sync message
(still far cheaper than pickling a whole layout, and still persistent-
pool friendly), so the backend keeps working on numpy-less hosts.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import event as obs_event
from repro.obs import metrics as obs_metrics

try:  # optional dependency, mirrors repro.kernels.numpy_backend
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    np = None

#: Column order of the shared block; one row of the ``(7, capacity)``
#: float64 array per field.  ``flags`` packs ``fixed`` (bit 0) and
#: ``legalized`` (bit 1).
CELL_FIELDS: Tuple[str, ...] = (
    "x",
    "y",
    "gp_x",
    "gp_y",
    "width",
    "height",
    "flags",
)

FLAG_FIXED = 1
FLAG_LEGALIZED = 2

#: Minimum segment capacity (cells); growth is geometric so an ECO
#: stream appending cells does not reallocate per batch.
_MIN_CAPACITY = 256
_GROWTH = 1.5


def snapshot_cell_state(cells: Sequence[Any]) -> Dict[str, List[float]]:
    """Column-major numeric snapshot of ``cells`` (pipe fallback mode)."""
    return {
        "x": [c.x for c in cells],
        "y": [c.y for c in cells],
        "gp_x": [c.gp_x for c in cells],
        "gp_y": [c.gp_y for c in cells],
        "width": [c.width for c in cells],
        "height": [float(c.height) for c in cells],
        "flags": [
            float((FLAG_FIXED if c.fixed else 0) | (FLAG_LEGALIZED if c.legalized else 0))
            for c in cells
        ],
    }


class _Segment:
    """One shared-memory block viewed as the ``(7, capacity)`` array."""

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        from multiprocessing import shared_memory

        self.capacity = int(capacity)
        size = len(CELL_FIELDS) * self.capacity * 8
        if name is None:
            self.shm = shared_memory.SharedMemory(create=True, size=size)
            self.owned = True
        else:
            # Attaching re-registers the segment with the resource
            # tracker on CPython < 3.13; workers are forked, so this goes
            # to the parent's tracker daemon, whose per-type cache is a
            # set — the duplicate is idempotent and the parent's unlink
            # at close keeps the tracker clean.  (Explicitly
            # unregistering here would instead delete the parent's own
            # registration and make its final unlink warn.)
            self.shm = shared_memory.SharedMemory(name=name)
            self.owned = False
        self.data = np.ndarray(
            (len(CELL_FIELDS), self.capacity), dtype=np.float64, buffer=self.shm.buf
        )

    @property
    def name(self) -> str:
        return self.shm.name

    def columns(self, n_cells: int) -> Dict[str, Any]:
        return {
            field: self.data[i, :n_cells] for i, field in enumerate(CELL_FIELDS)
        }

    def close(self) -> None:
        # Drop the array view first: SharedMemory.close() refuses while
        # exported buffers are alive.
        self.data = None
        try:
            self.shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            return
        if self.owned:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


class SharedCellStore:
    """Parent-side publisher of a layout's numeric cell state.

    ``publish(layout)`` stages the current cell arrays and bumps the
    epoch; ``build_sync(view)`` produces the (small) per-worker catch-up
    message for any worker whose :class:`WorkerLayoutMirror` is behind —
    design metadata and names only when the design identity changed or
    the cell list grew, the shared-segment descriptor only when the
    segment was (re)allocated.
    """

    def __init__(self, use_shared_memory: Optional[bool] = None) -> None:
        if use_shared_memory is None:
            use_shared_memory = np is not None
        if use_shared_memory and np is None:
            raise ValueError("shared-memory mode requires numpy")
        self.use_shared_memory = bool(use_shared_memory)
        self.epoch = 0
        self.design_rev = 0
        self.n_cells = 0
        self.names: List[str] = []
        self.snapshot: Optional[Dict[str, List[float]]] = None
        self.segment: Optional[_Segment] = None
        #: Segments superseded by a capacity growth.  Workers may still
        #: be attached to them until their next sync, so they are only
        #: unlinked at :meth:`close` (growth is rare; keeping a couple of
        #: retired blocks alive is cheaper than an ack round-trip).
        self._retired: List[_Segment] = []
        self._layout_ref = None
        self._design_meta: Optional[Dict[str, Any]] = None

    @property
    def shm_name(self) -> Optional[str]:
        return self.segment.name if self.segment is not None else None

    # ------------------------------------------------------------------
    def publish(self, layout) -> None:
        """Stage ``layout``'s cell state and start a new epoch."""
        cells = layout.cells
        n = len(cells)
        previous = self._layout_ref() if self._layout_ref is not None else None
        if previous is not layout or n < self.n_cells:
            self.design_rev += 1
            self._layout_ref = weakref.ref(layout)
            self._design_meta = {
                "num_rows": layout.num_rows,
                "num_sites": layout.num_sites,
                "site_width": layout.site_width,
                "row_height": layout.row_height,
                "name": layout.name,
            }
        self.names = [c.name for c in cells]
        if self.use_shared_memory:
            if self.segment is None or self.segment.capacity < n:
                capacity = max(
                    _MIN_CAPACITY,
                    n,
                    int(self.segment.capacity * _GROWTH) if self.segment else 0,
                )
                if self.segment is not None:
                    self._retired.append(self.segment)
                self.segment = _Segment(capacity)
            layout.export_cell_arrays(self.segment.columns(n))
        else:
            self.snapshot = snapshot_cell_state(cells)
        self.n_cells = n
        self.epoch += 1
        obs_metrics.inc("repro_shm_publishes_total")
        obs_event(
            "shm.publish", epoch=self.epoch, design_rev=self.design_rev, n_cells=n
        )

    # ------------------------------------------------------------------
    def build_sync(self, view) -> Dict[str, Any]:
        """Catch-up message bringing ``view`` to the current epoch.

        ``view`` is any object with ``design_rev`` / ``n_cells`` /
        ``shm_name`` attributes describing what its worker last saw;
        the caller updates them after sending.
        """
        sync: Dict[str, Any] = {
            "epoch": self.epoch,
            "design_rev": self.design_rev,
            "n_cells": self.n_cells,
        }
        if view.design_rev != self.design_rev:
            meta = dict(self._design_meta or {})
            meta["names"] = tuple(self.names)
            sync["design"] = meta
        elif view.n_cells < self.n_cells:
            sync["names"] = tuple(self.names[view.n_cells :])
        if self.use_shared_memory:
            assert self.segment is not None
            if view.shm_name != self.segment.name:
                sync["shm"] = (self.segment.name, self.segment.capacity)
        else:
            sync["snapshot"] = self.snapshot
        return sync

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release (and unlink) every shared segment."""
        for segment in self._retired:
            segment.close()
        self._retired = []
        if self.segment is not None:
            self.segment.close()
            self.segment = None


class WorkerLayoutMirror:
    """Worker-side mirror of the published layout.

    Holds a skeleton :class:`~repro.geometry.layout.Layout` built once
    per design from the sync metadata; every sync (and every
    :meth:`refresh`) overwrites the cells' numeric state from the shared
    columns and rebuilds the obstacle index, which makes the mirror an
    exact reset to the published state — workers can mutate it freely
    while executing a task and simply refresh before the next one.
    """

    def __init__(self) -> None:
        self.layout = None
        self.epoch = -1
        self.design_rev = -1
        self.n_cells = 0
        self.names: List[str] = []
        self.segment: Optional[_Segment] = None
        self._snapshot: Optional[Dict[str, List[float]]] = None
        #: True once a task mutated the mirror past the published state.
        self.stale = False

    @property
    def shm_name(self) -> Optional[str]:
        return self.segment.name if self.segment is not None else None

    # ------------------------------------------------------------------
    def apply_sync(self, sync: Dict[str, Any]) -> None:
        from repro.geometry.layout import Layout

        design = sync.get("design")
        if design is not None:
            self.layout = Layout(
                design["num_rows"],
                design["num_sites"],
                site_width=design["site_width"],
                row_height=design["row_height"],
                name=design["name"],
            )
            self.names = list(design["names"])
        elif "names" in sync:
            self.names.extend(sync["names"])
        shm_desc = sync.get("shm")
        if shm_desc is not None:
            name, capacity = shm_desc
            if self.segment is not None:
                self.segment.close()
            self.segment = _Segment(capacity, name=name)
        if "snapshot" in sync:
            self._snapshot = sync["snapshot"]
        self.n_cells = sync["n_cells"]
        self.epoch = sync["epoch"]
        self.design_rev = sync.get("design_rev", self.design_rev)
        self.refresh()

    def refresh(self) -> None:
        """Reset the mirror's cells to the last-synced published state."""
        if self.layout is None:
            raise RuntimeError("mirror refreshed before any design sync")
        if self.segment is not None:
            columns = self.segment.columns(self.n_cells)
        elif self._snapshot is not None:
            columns = self._snapshot
        else:
            raise RuntimeError("mirror has no shared segment or snapshot")
        new_names = self.names[len(self.layout.cells) : self.n_cells]
        self.layout.apply_cell_arrays(columns, self.n_cells, new_names)
        self.stale = False
        obs_metrics.inc("repro_shm_refreshes_total")
        obs_event("shm.refresh", epoch=self.epoch, n_cells=self.n_cells)

    def close(self) -> None:
        if self.segment is not None:
            self.segment.close()
            self.segment = None
