"""NumPy-accelerated kernel backend.

Fast implementations of the FOP hot paths: displacement-curve
construction, the five-stage / fwd-bwd curve-minimization pipeline,
batch curve evaluation (snapping), and the SACS shifting chains.

**Bit-for-bit equivalence.**  The backend must reproduce the pure-Python
reference exactly, so every vectorized reduction is expressed with NumPy
operations that perform the *same sequential left-fold* the scalar loops
perform:

* ``np.add.accumulate`` / ``np.subtract.accumulate`` evaluate the exact
  recurrence ``acc = acc ⊕ x_i`` (prefix results force sequential order,
  no pairwise re-association);
* ``np.add.reduceat`` folds each merge group left-to-right, matching the
  ``merged[-1] += piece`` accumulation of ``merge_breakpoints``;
* elementwise arithmetic (``a * b - c``) is IEEE-754 double math, bit
  identical to the equivalent Python-float expressions.

**Adaptive dispatch.**  Array setup costs more than the whole scalar
pipeline on small inputs, so the backend switches representation by
size: insertion points whose curve sets stay below :data:`_VECTOR_MIN`
pieces are delegated to the scalar reference (identical by definition),
larger ones use the flat-array pipeline.  Curve sets containing
near-duplicate breakpoints (``0 < dx <= eps``, where the reference's
group-start merging and a diff-based grouping could disagree) are also
routed to the reference.

**SACS.**  Sort-ahead shifting is accelerated two ways, both exact:

* insertion points whose spanned rows contain only single-height cells
  have independent per-row push chains; each chain is one
  ``accumulate`` recurrence over the inter-cell gaps;
* general (multi-row-coupled) points use a sparse rank-heap propagation
  that visits only the cells that actually receive a push threshold —
  O(chain length) instead of the reference's O(region cells) sweep —
  while replaying threshold updates in exactly the reference's
  processing order (the heap pops the pre-sorted SACS ranks, so the
  epsilon-guarded max/min updates and the dict insertion order match
  the reference's full sweep bit for bit).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numpy is an optional dependency of the package
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

from repro.kernels.base import KernelBackend
from repro.mgl.curves import (
    BreakpointPiece,
    CurveEvaluation,
    _pick_best,
    evaluate_piecewise,
    minimize_curves,
    minimize_curves_fwd_bwd,
)
from repro.mgl.shifting import ShiftOutcome

_EPS = 1e-9
_INF = math.inf
#: Piece count below which the scalar reference outruns the array setup;
#: correctness is identical on both sides of the threshold (empirically
#: tuned on ICCAD-2017-like regions, see benchmarks/test_bench_kernels.py).
_VECTOR_MIN = 48


def stage_cell_arrays(cells: Sequence[Any], columns: Dict[str, Any]) -> None:
    """Fill shared cell-state columns from ``cells`` (one bulk pass each).

    The staging layer of the multiprocess backend's zero-copy shard
    sync (:mod:`repro.kernels.shm`): every numeric cell field is packed
    into a float64 column with ``np.fromiter``, the same flat-float64
    convention the ``minimize_batch`` / ``evaluate_batch`` pipelines
    use.  ``columns`` maps field names to writable length-``len(cells)``
    array views (typically rows of one shared-memory block).  Integer
    fields (height, flags) are exact in float64 far beyond any real
    design size, so a round trip through the columns is bit-for-bit.
    """
    if np is None:  # pragma: no cover - callers gate on numpy availability
        raise RuntimeError("stage_cell_arrays requires numpy")
    n = len(cells)
    columns["x"][:n] = np.fromiter((c.x for c in cells), dtype=np.float64, count=n)
    columns["y"][:n] = np.fromiter((c.y for c in cells), dtype=np.float64, count=n)
    columns["gp_x"][:n] = np.fromiter(
        (c.gp_x for c in cells), dtype=np.float64, count=n
    )
    columns["gp_y"][:n] = np.fromiter(
        (c.gp_y for c in cells), dtype=np.float64, count=n
    )
    columns["width"][:n] = np.fromiter(
        (c.width for c in cells), dtype=np.float64, count=n
    )
    columns["height"][:n] = np.fromiter(
        (c.height for c in cells), dtype=np.float64, count=n
    )
    columns["flags"][:n] = np.fromiter(
        (
            (1 if c.fixed else 0) | (2 if c.legalized else 0)
            for c in cells
        ),
        dtype=np.float64,
        count=n,
    )


class CurveArrays:
    """Flat-array curve set: breakpoint x, left slope, right slope.

    Pieces are stored in *construction order* (target curve first, then
    the left-chain cells' pieces in threshold-dict order, then the
    right-chain cells'), which is what makes the stable sort inside
    :meth:`NumpyKernelBackend.minimize` order ties exactly like the
    reference ``sorted`` call does.
    """

    __slots__ = ("xs", "ls", "rs", "constant")

    def __init__(self, xs, ls, rs, constant: float) -> None:
        self.xs = xs
        self.ls = ls
        self.rs = rs
        self.constant = constant

    def __len__(self) -> int:
        return int(self.xs.shape[0])

    def to_pieces(self) -> Tuple[List[BreakpointPiece], float]:
        """Reference-form view (used by fallbacks and tests)."""
        pieces = [
            BreakpointPiece(float(x), float(l), float(r))
            for x, l, r in zip(self.xs, self.ls, self.rs)
        ]
        return pieces, self.constant


class NumpyKernelBackend(KernelBackend):
    """Vectorized kernels, bit-for-bit equal to the Python reference."""

    name = "numpy"

    def __init__(self) -> None:
        if np is None:  # pragma: no cover - exercised only on numpy-less hosts
            raise RuntimeError(
                "the 'numpy' kernel backend requires numpy; install it or "
                "select backend='python'"
            )

    # ------------------------------------------------------------------
    # Displacement-curve construction
    # ------------------------------------------------------------------
    def build_curves(self, region, target, bottom_row, outcome, vertical_cost_factor):
        n_left = len(outcome.left_thresholds)
        n_right = len(outcome.right_thresholds)
        if 1 + 2 * (n_left + n_right) < _VECTOR_MIN:
            # Small curve set: the scalar reference is faster end to end.
            from repro.mgl.fop import build_curves

            return build_curves(region, target, bottom_row, outcome, vertical_cost_factor)

        vertical_cost = abs(bottom_row - target.gp_y) * vertical_cost_factor
        cells = region.local_cells

        def gather(items):
            k = len(items)
            thr = np.fromiter(items.values(), dtype=np.float64, count=k)
            x = np.fromiter((cells[i].x for i in items), dtype=np.float64, count=k)
            gp = np.fromiter((cells[i].gp_x for i in items), dtype=np.float64, count=k)
            return thr, x - gp

        l_thr, l_delta = gather(outcome.left_thresholds)
        r_thr, r_delta = gather(outcome.right_thresholds)

        # A left-pushed cell at-or-right-of its GP spot (delta >= 0) emits a
        # V piece plus a hinge and the constant -delta; otherwise one hinge.
        l_two = l_delta >= 0.0
        # A right-pushed cell at-or-left-of its GP spot (delta <= 0) mirrors.
        r_two = r_delta <= 0.0
        l_counts = np.where(l_two, 2, 1)
        r_counts = np.where(r_two, 2, 1)
        total = 1 + int(l_counts.sum()) + int(r_counts.sum())

        xs = np.empty(total, dtype=np.float64)
        ls = np.empty(total, dtype=np.float64)
        rs = np.empty(total, dtype=np.float64)
        # Target curve |x_t - gp_x|.
        xs[0], ls[0], rs[0] = target.gp_x, -1.0, 1.0

        l_start = 1 + np.cumsum(l_counts) - l_counts
        s2 = l_start[l_two]
        xs[s2] = (l_thr - l_delta)[l_two]
        ls[s2], rs[s2] = -1.0, 1.0
        xs[s2 + 1] = l_thr[l_two]
        ls[s2 + 1], rs[s2 + 1] = 0.0, -1.0
        s1 = l_start[~l_two]
        xs[s1] = l_thr[~l_two]
        ls[s1], rs[s1] = -1.0, 0.0

        r_base = 1 + int(l_counts.sum())
        hinge = r_thr - target.width
        r_start = r_base + np.cumsum(r_counts) - r_counts
        s2 = r_start[r_two]
        xs[s2] = (hinge - r_delta)[r_two]
        ls[s2], rs[s2] = -1.0, 1.0
        xs[s2 + 1] = hinge[r_two]
        ls[s2 + 1], rs[s2 + 1] = 1.0, 0.0
        s1 = r_start[~r_two]
        xs[s1] = hinge[~r_two]
        ls[s1], rs[s1] = 0.0, 1.0

        # Constant: the reference folds the per-cell constants one by one
        # onto the vertical cost; accumulate() performs the same fold.
        consts = np.empty(1 + n_left + n_right, dtype=np.float64)
        consts[0] = vertical_cost
        consts[1 : 1 + n_left] = np.where(l_two, -l_delta, 0.0)
        consts[1 + n_left :] = np.where(r_two, r_delta, 0.0)
        constant = float(np.add.accumulate(consts)[-1])
        return CurveArrays(xs, ls, rs, constant)

    # ------------------------------------------------------------------
    # Curve minimization
    # ------------------------------------------------------------------
    def minimize(
        self,
        curves: Any,
        lo: float,
        hi: float,
        *,
        preferred_x: Optional[float] = None,
        fwd_bwd: bool = False,
    ) -> CurveEvaluation:
        if not isinstance(curves, CurveArrays):
            pieces, constant = curves
            minimizer = minimize_curves_fwd_bwd if fwd_bwd else minimize_curves
            return minimizer(pieces, constant, lo, hi, preferred_x=preferred_x)

        n = len(curves)
        if n == 0:
            # The reference handles zero pieces; the vector path cannot.
            return self._minimize_reference(curves, lo, hi, preferred_x, fwd_bwd)
        if hi < lo - _EPS:
            raise ValueError(f"empty evaluation interval [{lo}, {hi}]")
        hi = max(hi, lo)

        order = np.argsort(curves.xs, kind="stable")
        xs = curves.xs[order]
        ls_s = curves.ls[order]
        rs_s = curves.rs[order]
        d = np.diff(xs)
        if bool(((d > 0.0) & (d <= _EPS)).any()):
            # Near-coincident (but unequal) breakpoints: the reference
            # merges against the group's first x, a diff cannot express
            # that chain — defer to the oracle.
            return self._minimize_reference(curves, lo, hi, preferred_x, fwd_bwd)

        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = d > _EPS
        starts = np.flatnonzero(new_group)
        m = int(starts.shape[0])
        mx = xs[starts]
        mls = np.add.reduceat(ls_s, starts)
        mrs = np.add.reduceat(rs_s, starts)

        if fwd_bwd:
            # fwdtraverse accumulates the right slopes per *piece*; the
            # group-end prefix values are the merged slopesR.
            ends = np.empty(m, dtype=np.intp)
            ends[:-1] = starts[1:] - 1
            ends[-1] = n - 1
            slopes_r = np.add.accumulate(rs_s)[ends]
            aw_r = np.add.accumulate(mrs * mx)
            v_r = slopes_r * mx - aw_r
            slopes_l = np.add.accumulate(mls[::-1])[::-1]
            aw_l = np.add.accumulate((mls * mx)[::-1])[::-1]
            v_l = slopes_l * mx - aw_l
            values = v_r + v_l
        else:
            slopes_r = np.add.accumulate(mrs)
            slopes_l = np.add.accumulate(mls[::-1])[::-1]
            if m > 1:
                v0 = np.add.accumulate(mls[1:] * (mx[0] - mx[1:]))[-1]
                seg_slopes = slopes_r[:-1] + slopes_l[1:]
                deltas = seg_slopes * np.diff(mx)
                values = np.add.accumulate(np.concatenate(((v0,), deltas)))
            else:
                values = np.zeros(1, dtype=np.float64)

        def value_at(q: float) -> float:
            if q <= mx[0]:
                return float(values[0] + slopes_l[0] * (q - mx[0]))
            if q >= mx[-1]:
                return float(values[-1] + slopes_r[-1] * (q - mx[-1]))
            i = int(np.searchsorted(mx, q, side="left")) - 1
            slope = slopes_r[i] + slopes_l[i + 1]
            return float(values[i] + slope * (q - mx[i]))

        in_range = (mx >= lo - _EPS) & (mx <= hi + _EPS)
        candidates: List[Tuple[float, float]] = [
            (min(max(x, lo), hi), v)
            for x, v in zip(mx[in_range].tolist(), values[in_range].tolist())
        ]
        for bound in (lo, hi):
            candidates.append((bound, value_at(bound)))
        if preferred_x is not None and lo <= preferred_x <= hi:
            candidates.append((preferred_x, value_at(preferred_x)))
        best_x, best_v = _pick_best(candidates, preferred_x)
        return CurveEvaluation(
            best_x=best_x,
            best_value=best_v + curves.constant,
            n_breakpoints=n,
            n_merged=m,
        )

    def _minimize_reference(
        self,
        curves: CurveArrays,
        lo: float,
        hi: float,
        preferred_x: Optional[float],
        fwd_bwd: bool,
    ) -> CurveEvaluation:
        pieces, constant = curves.to_pieces()
        minimizer = minimize_curves_fwd_bwd if fwd_bwd else minimize_curves
        return minimizer(pieces, constant, lo, hi, preferred_x=preferred_x)

    # ------------------------------------------------------------------
    # Batched cross-insertion-point minimization
    # ------------------------------------------------------------------
    def minimize_batch(
        self,
        curve_sets: Sequence[Any],
        bounds: Sequence[Tuple[float, float]],
        *,
        preferred_x: Optional[float] = None,
        fwd_bwd: bool = False,
    ) -> List[CurveEvaluation]:
        """Score all insertion points of a region as one array pipeline.

        Every vector-eligible curve set (a :class:`CurveArrays` with at
        least one piece and no near-duplicate breakpoints) is padded into
        one ``(points, pieces)`` array family; a single stable argsort, a
        single flattened ``reduceat`` merge and per-row ``accumulate``
        prefix folds then replay, per row, exactly the float operations
        of :meth:`minimize` — trailing zero pads only ever append exact
        ``+ 0.0`` terms, so values are unchanged.  Small scalar curve
        sets and pathological rows fall back to the per-point paths.
        """
        results: List[Optional[CurveEvaluation]] = [None] * len(curve_sets)
        vector_rows: List[int] = []
        for i, (curves, (lo, hi)) in enumerate(zip(curve_sets, bounds)):
            if isinstance(curves, CurveArrays) and len(curves) > 0:
                if hi < lo - _EPS:
                    raise ValueError(f"empty evaluation interval [{lo}, {hi}]")
                vector_rows.append(i)
            else:
                results[i] = self.minimize(
                    curves, lo, hi, preferred_x=preferred_x, fwd_bwd=fwd_bwd
                )
        if len(vector_rows) < 2:
            for i in vector_rows:
                lo, hi = bounds[i]
                results[i] = self.minimize(
                    curve_sets[i], lo, hi, preferred_x=preferred_x, fwd_bwd=fwd_bwd
                )
            return results  # type: ignore[return-value]

        # --- pad + sort ------------------------------------------------
        n = np.array([len(curve_sets[i]) for i in vector_rows], dtype=np.intp)
        V, P = len(vector_rows), int(n.max())
        # Finite pad sentinel strictly above every real breakpoint: pads
        # stay sorted after the valid entries without inf-inf arithmetic.
        sentinel = float(max(float(curve_sets[i].xs.max()) for i in vector_rows)) + 1.0
        xs2d = np.full((V, P), sentinel, dtype=np.float64)
        ls2d = np.zeros((V, P), dtype=np.float64)
        rs2d = np.zeros((V, P), dtype=np.float64)
        for r, i in enumerate(vector_rows):
            c = curve_sets[i]
            k = int(n[r])
            xs2d[r, :k] = c.xs
            ls2d[r, :k] = c.ls
            rs2d[r, :k] = c.rs
        order = np.argsort(xs2d, axis=1, kind="stable")
        xs_s = np.take_along_axis(xs2d, order, axis=1)
        ls_s = np.take_along_axis(ls2d, order, axis=1)
        rs_s = np.take_along_axis(rs2d, order, axis=1)
        valid = np.arange(P)[None, :] < n[:, None]

        # Near-coincident (but unequal) breakpoints: defer to the oracle,
        # exactly like the per-point path.
        d = xs_s[:, 1:] - xs_s[:, :-1]
        near_dup = ((d > 0.0) & (d <= _EPS) & valid[:, 1:]).any(axis=1)
        if bool(near_dup.any()):
            for r in np.flatnonzero(near_dup):
                i = vector_rows[r]
                lo, hi = bounds[i]
                results[i] = self._minimize_reference(
                    curve_sets[i], lo, max(hi, lo), preferred_x, fwd_bwd
                )
            keep = ~near_dup
            vector_rows = [i for r, i in enumerate(vector_rows) if keep[r]]
            if len(vector_rows) < 2:
                for i in vector_rows:
                    lo, hi = bounds[i]
                    results[i] = self.minimize(
                        curve_sets[i], lo, hi, preferred_x=preferred_x, fwd_bwd=fwd_bwd
                    )
                return results  # type: ignore[return-value]
            n = n[keep]
            xs_s, ls_s, rs_s, valid = xs_s[keep], ls_s[keep], rs_s[keep], valid[keep]
            V = len(vector_rows)

        lo_arr = np.array([bounds[i][0] for i in vector_rows])
        hi_arr = np.array([bounds[i][1] for i in vector_rows])
        hi_arr = np.maximum(hi_arr, lo_arr)

        # --- merge (flattened reduceat; groups never cross rows) -------
        total = int(n.sum())
        row_len = n
        row_start = np.concatenate(([0], np.cumsum(row_len)[:-1]))
        flat_xs = xs_s[valid]
        flat_ls = ls_s[valid]
        flat_rs = rs_s[valid]
        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = (flat_xs[1:] - flat_xs[:-1]) > _EPS
        new_group[row_start] = True
        starts = np.flatnonzero(new_group)
        mx_flat = flat_xs[starts]
        mls_flat = np.add.reduceat(flat_ls, starts)
        mrs_flat = np.add.reduceat(flat_rs, starts)

        row_of_flat = np.repeat(np.arange(V), row_len)
        row_of_start = row_of_flat[starts]
        m = np.bincount(row_of_start, minlength=V).astype(np.intp)
        M = int(m.max())
        mstart_row = np.concatenate(([0], np.cumsum(m)[:-1]))
        mcol = np.arange(starts.shape[0]) - mstart_row[row_of_start]

        mx2d = np.zeros((V, M), dtype=np.float64)
        mls2d = np.zeros((V, M), dtype=np.float64)
        mrs2d = np.zeros((V, M), dtype=np.float64)
        mx2d[row_of_start, mcol] = mx_flat
        mls2d[row_of_start, mcol] = mls_flat
        mrs2d[row_of_start, mcol] = mrs_flat
        validm = np.arange(M)[None, :] < m[:, None]
        rows = np.arange(V)
        last = m - 1

        def _rev_accumulate(a: Any) -> Any:
            """Per-row suffix fold (reference ``accumulate(x[::-1])[::-1]``).

            Flipping puts the zero pads in front; folding a finite value
            onto a zero accumulator is exact, so the suffix values match
            the reference fold bit for bit.
            """
            return np.add.accumulate(a[:, ::-1], axis=1)[:, ::-1]

        if fwd_bwd:
            # fwdtraverse: per-piece right-slope prefix folds, read at the
            # merge-group ends.
            piece_acc_r = np.add.accumulate(rs_s, axis=1)
            next_start = np.append(starts[1:], total)
            end_col = (next_start - 1) - row_start[row_of_start]
            slopes_r2d = np.zeros((V, M), dtype=np.float64)
            slopes_r2d[row_of_start, mcol] = piece_acc_r[row_of_start, end_col]
            aw_r = np.add.accumulate(mrs2d * mx2d, axis=1)
            v_r = slopes_r2d * mx2d - aw_r
            slopes_l2d = _rev_accumulate(mls2d)
            aw_l = _rev_accumulate(mls2d * mx2d)
            v_l = slopes_l2d * mx2d - aw_l
            values2d = v_r + v_l
        else:
            slopes_r2d = np.add.accumulate(mrs2d, axis=1)
            slopes_l2d = _rev_accumulate(mls2d)
            if M > 1:
                prod = mls2d[:, 1:] * (mx2d[:, :1] - mx2d[:, 1:])
                acc_prod = np.add.accumulate(prod, axis=1)
                v0 = np.where(m > 1, acc_prod[rows, np.maximum(last - 1, 0)], 0.0)
                seg = slopes_r2d[:, :-1] + slopes_l2d[:, 1:]
                deltas = seg * (mx2d[:, 1:] - mx2d[:, :-1])
                values2d = np.add.accumulate(
                    np.concatenate([v0[:, None], deltas], axis=1), axis=1
                )
            else:
                values2d = np.zeros((V, 1), dtype=np.float64)

        mx_last = mx2d[rows, last]

        def _values_at(q: Any) -> Any:
            """Per-row curve values at one query position per row."""
            below = q <= mx2d[:, 0]
            above = q >= mx_last
            cnt = ((mx2d < q[:, None]) & validm).sum(axis=1)
            i = np.clip(cnt - 1, 0, last)
            ip1 = np.minimum(i + 1, last)
            slope = slopes_r2d[rows, i] + slopes_l2d[rows, ip1]
            v_int = values2d[rows, i] + slope * (q - mx2d[rows, i])
            v_below = values2d[:, 0] + slopes_l2d[:, 0] * (q - mx2d[:, 0])
            v_above = values2d[rows, last] + slopes_r2d[rows, last] * (q - mx_last)
            return np.where(below, v_below, np.where(above, v_above, v_int))

        v_lo = _values_at(lo_arr)
        v_hi = _values_at(hi_arr)
        if preferred_x is not None:
            v_pref = _values_at(np.full(V, float(preferred_x)))

        # --- per-row candidate selection (tiny lists) ------------------
        for r, i in enumerate(vector_rows):
            lo = float(lo_arr[r])
            hi = float(hi_arr[r])
            k = int(m[r])
            mxs = mx2d[r, :k]
            vals = values2d[r, :k]
            in_range = (mxs >= lo - _EPS) & (mxs <= hi + _EPS)
            candidates: List[Tuple[float, float]] = [
                (min(max(x, lo), hi), v)
                for x, v in zip(mxs[in_range].tolist(), vals[in_range].tolist())
            ]
            candidates.append((lo, float(v_lo[r])))
            candidates.append((hi, float(v_hi[r])))
            if preferred_x is not None and lo <= preferred_x <= hi:
                candidates.append((preferred_x, float(v_pref[r])))
            best_x, best_v = _pick_best(candidates, preferred_x)
            results[i] = CurveEvaluation(
                best_x=best_x,
                best_value=best_v + curve_sets[i].constant,
                n_breakpoints=int(n[r]),
                n_merged=k,
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Batch evaluation (FOP snapping)
    # ------------------------------------------------------------------
    def evaluate(self, curves: Any, xs: Sequence[float]) -> List[float]:
        if not isinstance(curves, CurveArrays):
            pieces, constant = curves
            return [evaluate_piecewise(pieces, constant, x) for x in xs]
        if len(curves) == 0:
            return [curves.constant + 0.0 for _ in xs]
        q = np.asarray(xs, dtype=np.float64)[:, None]
        diffs = q - curves.xs[None, :]
        vals = np.where(q < curves.xs[None, :], curves.ls * diffs, curves.rs * diffs)
        totals = np.add.accumulate(vals, axis=1)[:, -1]
        return [curves.constant + float(t) for t in totals]

    def evaluate_batch(
        self, curve_sets: Sequence[Any], queries: Sequence[Sequence[float]]
    ) -> List[List[float]]:
        """Batched exact snapping evaluation across insertion points.

        Vector-eligible points are evaluated through one padded
        ``(points, queries, pieces)`` pipeline; zero-piece pads contribute
        exact ``+ 0.0`` terms, so each value equals the per-point
        :meth:`evaluate` result.  Scalar curve sets take the scalar path.
        """
        results: List[Optional[List[float]]] = [None] * len(curve_sets)
        vector_rows: List[int] = []
        for i, (curves, xs) in enumerate(zip(curve_sets, queries)):
            if isinstance(curves, CurveArrays) and len(curves) > 0 and len(xs) > 0:
                vector_rows.append(i)
            else:
                results[i] = self.evaluate(curves, xs)
        if len(vector_rows) < 2:
            for i in vector_rows:
                results[i] = self.evaluate(curve_sets[i], queries[i])
            return results  # type: ignore[return-value]

        n = np.array([len(curve_sets[i]) for i in vector_rows], dtype=np.intp)
        nq = np.array([len(queries[i]) for i in vector_rows], dtype=np.intp)
        V, P, Q = len(vector_rows), int(n.max()), int(nq.max())
        xs3 = np.zeros((V, 1, P), dtype=np.float64)
        ls3 = np.zeros((V, 1, P), dtype=np.float64)
        rs3 = np.zeros((V, 1, P), dtype=np.float64)
        q3 = np.zeros((V, Q, 1), dtype=np.float64)
        for r, i in enumerate(vector_rows):
            c = curve_sets[i]
            xs3[r, 0, : n[r]] = c.xs
            ls3[r, 0, : n[r]] = c.ls
            rs3[r, 0, : n[r]] = c.rs
            q3[r, : nq[r], 0] = queries[i]
        diffs = q3 - xs3
        vals = np.where(q3 < xs3, ls3 * diffs, rs3 * diffs)
        totals = np.add.accumulate(vals, axis=2)[:, :, -1]
        for r, i in enumerate(vector_rows):
            constant = curve_sets[i].constant
            results[i] = [constant + float(t) for t in totals[r, : nq[r]]]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # SACS shifting chains
    # ------------------------------------------------------------------
    def build_sacs_context(self, region):
        from repro.core.sacs import build_sacs_context

        return self._augment_context(build_sacs_context(region), region)

    def _augment_context(self, ctx, region):
        """Attach the backend's lookup tables to a (reference) context.

        Mutates ``ctx`` in place so that a caller-owned reference context
        keeps its identity and state (notably ``consumed_sort_report``,
        which controls the once-per-region sort work report).
        """
        cells = region.local_cells
        n = len(cells)
        # Per-row coordinate arrays feeding the accumulate chain path.
        row_x: Dict[int, Any] = {}
        row_right: Dict[int, Any] = {}
        row_pure: Dict[int, bool] = {}
        for row, indices in ctx.row_indices.items():
            k = len(indices)
            row_x[row] = np.fromiter((cells[i].x for i in indices), np.float64, count=k)
            row_right[row] = np.fromiter(
                (cells[i].right for i in indices), np.float64, count=k
            )
            row_pure[row] = all(cells[i].height == 1 for i in indices)
        # Plain-list snapshots feeding the sparse heap path (scalar access
        # into numpy arrays is slower than list indexing).
        ctx.np_cell_x = [lc.x for lc in cells]
        ctx.np_cell_right = [lc.right for lc in cells]
        ctx.np_cell_rows = [lc.rows for lc in cells]
        # Tightest segment bounds over each cell's rows, precomputed once
        # per region instead of once per insertion point in finalize.
        segments = region.segments
        ctx.np_cell_seg_lo = [
            max(segments[row].x_lo for row in lc.rows) for lc in cells
        ]
        ctx.np_cell_seg_hi = [
            min(segments[row].x_hi for row in lc.rows) for lc in cells
        ]
        ctx.np_seg_lo = {row: seg.x_lo for row, seg in segments.items()}
        ctx.np_seg_hi = {row: seg.x_hi for row, seg in segments.items()}
        # Processing ranks reproduce the reference update order.
        rank_desc = np.empty(n, dtype=np.intp)
        rank_desc[np.asarray(ctx.order_desc, dtype=np.intp)] = np.arange(n)
        rank_asc = np.empty(n, dtype=np.intp)
        rank_asc[np.asarray(ctx.order_asc, dtype=np.intp)] = np.arange(n)
        ctx.np_row_x = row_x
        ctx.np_row_right = row_right
        ctx.np_row_pure = row_pure
        ctx.np_rank_desc = rank_desc.tolist()
        ctx.np_rank_asc = rank_asc.tolist()
        return ctx

    def shift_sacs(self, region, target, insertion, context) -> ShiftOutcome:
        ctx = context
        if not hasattr(ctx, "np_row_pure"):
            ctx = self._augment_context(ctx, region)

        outcome = ShiftOutcome()
        outcome.passes = 2
        if not ctx.consumed_sort_report:
            outcome.sorted_cells = ctx.sort_size
            ctx.consumed_sort_report = True
        split = insertion.split_map()
        outcome.cell_visits = 2 * ctx.sort_size
        outcome.multirow_accesses = 2 * ctx.multirow_cells
        outcome.tall_accesses = 2 * ctx.tall_cells

        if all(ctx.np_row_pure.get(row, True) for row in insertion.rows):
            left, right = self._shift_pure_chains(ctx, insertion, split)
        else:
            left = self._propagate_sparse(ctx, insertion, split, leftward=True)
            right = self._propagate_sparse(ctx, insertion, split, leftward=False)
        return self._finalize_fast(ctx, outcome, target, insertion, split, left, right)

    # ------------------------------------------------------------------
    def _finalize_fast(self, ctx, outcome, target, insertion, split, left, right):
        """Reference ``_finalize_outcome`` with per-region cached bounds.

        Identical logic and float-operation order; the only change is
        that the per-cell tightest segment bounds come from the context
        cache instead of being recomputed per insertion point (``max`` /
        ``min`` folds are exact, so caching cannot alter any bit).
        """
        outcome.left_thresholds = left
        outcome.right_thresholds = right
        if left and right and set(left) & set(right):
            outcome.feasible = False
            return outcome
        row_indices = ctx.row_indices
        for row in insertion.rows:
            indices = row_indices.get(row, [])
            k = split[row]
            if any(idx in left for idx in indices[k:]) or any(
                idx in right for idx in indices[:k]
            ):
                outcome.feasible = False
                return outcome
        lo = max(ctx.np_seg_lo[row] for row in insertion.rows)
        hi = min(ctx.np_seg_hi[row] for row in insertion.rows) - target.width
        cell_x = ctx.np_cell_x
        cell_right = ctx.np_cell_right
        seg_lo = ctx.np_cell_seg_lo
        seg_hi = ctx.np_cell_seg_hi
        for idx, b in left.items():
            lo = max(lo, b - (cell_x[idx] - seg_lo[idx]))
        for idx, r in right.items():
            hi = min(hi, r + (seg_hi[idx] - cell_right[idx]) - target.width)
        outcome.xt_lo, outcome.xt_hi = lo, hi
        outcome.feasible = hi >= lo - _EPS and math.ceil(lo - _EPS) <= math.floor(hi + _EPS)
        return outcome

    # ------------------------------------------------------------------
    def _shift_pure_chains(self, ctx, insertion, split):
        """Independent per-row chains (only single-height cells spanned).

        With no multi-row cell in the spanned rows, constraints never
        leave their row, so each side's thresholds are one running-gap
        recurrence evaluated by ``subtract``/``add`` ``accumulate`` —
        exactly the reference's ``b - (x[j+1] - right[j])`` /
        ``r + (x[j] - right[j-1])`` steps.  Entries enter the threshold
        dicts seeds-first, then in the pushing cell's processing-rank
        order, reproducing the reference dict ordering (which downstream
        curve construction depends on for stable-sort ties).
        """
        left: Dict[int, float] = {}
        chained: List[Tuple[int, int, float]] = []
        for row in insertion.rows:
            indices = ctx.row_indices.get(row, [])
            k = split[row]
            if k <= 0:
                continue
            x = ctx.np_row_x[row]
            right_edge = ctx.np_row_right[row]
            left[indices[k - 1]] = float(right_edge[k - 1])
            if k >= 2:
                seq = np.empty(k, dtype=np.float64)
                seq[0] = right_edge[k - 1]
                seq[1:] = (x[1:k] - right_edge[: k - 1])[::-1]
                thresholds = np.subtract.accumulate(seq)
                rank = ctx.np_rank_desc
                pusher_ranks = [rank[i] for i in indices[k - 1 : 0 : -1]]
                chained.extend(
                    zip(pusher_ranks, indices[k - 2 :: -1], thresholds[1:].tolist())
                )
        chained.sort(key=lambda entry: entry[0])
        for _, idx, value in chained:
            left[idx] = value

        right: Dict[int, float] = {}
        chained = []
        for row in insertion.rows:
            indices = ctx.row_indices.get(row, [])
            k = split[row]
            n_row = len(indices)
            if k >= n_row:
                continue
            x = ctx.np_row_x[row]
            right_edge = ctx.np_row_right[row]
            right[indices[k]] = float(x[k])
            if k < n_row - 1:
                seq = np.empty(n_row - k, dtype=np.float64)
                seq[0] = x[k]
                seq[1:] = x[k + 1 :] - right_edge[k : n_row - 1]
                thresholds = np.add.accumulate(seq)
                rank = ctx.np_rank_asc
                pusher_ranks = [rank[i] for i in indices[k : n_row - 1]]
                chained.extend(
                    zip(pusher_ranks, indices[k + 1 :], thresholds[1:].tolist())
                )
        chained.sort(key=lambda entry: entry[0])
        for _, idx, value in chained:
            right[idx] = value
        return left, right

    def _propagate_sparse(self, ctx, insertion, split, *, leftward: bool):
        """General SACS propagation visiting only threshold-carrying cells.

        The reference sweeps every sorted cell and skips the ones without
        a threshold; here a min-heap over the same processing ranks pops
        exactly the threshold-carrying cells in the identical order.  A
        cell's first threshold always comes from a strictly earlier rank
        (its pusher lies strictly further out in the processing
        direction), so each cell is heap-inserted before its rank is
        reached and every epsilon-guarded update happens at the same
        point of the processing order as in the reference sweep — values
        and dict insertion order are bit-identical.
        """
        thresholds: Dict[int, float] = {}
        cell_x = ctx.np_cell_x
        cell_right = ctx.np_cell_right
        cell_rows = ctx.np_cell_rows
        position = ctx.position_in_row
        row_indices = ctx.row_indices
        heap: List[int] = []

        if leftward:
            order, rank = ctx.order_desc, ctx.np_rank_desc
            for row in insertion.rows:
                indices = row_indices.get(row, [])
                k = split[row]
                if k > 0:
                    idx = indices[k - 1]
                    prev = thresholds.get(idx)
                    seed = cell_right[idx]
                    if prev is None:
                        thresholds[idx] = seed
                        heapq.heappush(heap, rank[idx])
                    elif seed > prev:
                        thresholds[idx] = seed
        else:
            order, rank = ctx.order_asc, ctx.np_rank_asc
            for row in insertion.rows:
                indices = row_indices.get(row, [])
                k = split[row]
                if k < len(indices):
                    idx = indices[k]
                    prev = thresholds.get(idx)
                    seed = cell_x[idx]
                    if prev is None:
                        thresholds[idx] = seed
                        heapq.heappush(heap, rank[idx])
                    elif seed < prev:
                        thresholds[idx] = seed

        while heap:
            idx = order[heapq.heappop(heap)]
            bound = thresholds[idx]
            x_i = cell_x[idx]
            right_i = cell_right[idx]
            for row in cell_rows[idx]:
                pos = position[(idx, row)]
                limit = split.get(row)
                indices = row_indices[row]
                if leftward:
                    if pos == 0:
                        continue
                    if limit is not None and pos >= limit:
                        # Right-side subcell of a spanned row: never pushes left.
                        continue
                    neighbour = indices[pos - 1]
                    candidate = bound - (x_i - cell_right[neighbour])
                    current = thresholds.get(neighbour)
                    if current is None:
                        thresholds[neighbour] = candidate
                        heapq.heappush(heap, rank[neighbour])
                    elif candidate > current + _EPS:
                        thresholds[neighbour] = candidate
                else:
                    if pos == len(indices) - 1:
                        continue
                    if limit is not None and pos < limit:
                        continue
                    neighbour = indices[pos + 1]
                    candidate = bound + (cell_x[neighbour] - right_i)
                    current = thresholds.get(neighbour)
                    if current is None:
                        thresholds[neighbour] = candidate
                        heapq.heappush(heap, rank[neighbour])
                    elif candidate < current - _EPS:
                        thresholds[neighbour] = candidate
        return thresholds
