"""The kernel-backend interface.

A *kernel backend* supplies the numeric inner loops of the legalizer —
the paths FLEX offloads to the FPGA and that dominate CPU runtime:

* **displacement-curve construction** — turning a cell-shifting outcome
  into the elementary breakpoint pieces of the summed displacement curve
  (:meth:`KernelBackend.build_curves`);
* **curve minimization** — the five-stage ``sort bp`` → ``merge bp`` →
  ``sum slopesR`` → ``sum slopesL`` → ``calculate value`` pipeline (or
  its fwdtraverse/bwdtraverse reorganisation) that finds the optimal
  target position (:meth:`KernelBackend.minimize`);
* **batch curve evaluation** — exact evaluation of the summed curve at
  candidate site positions, used by FOP's snapping step
  (:meth:`KernelBackend.evaluate`);
* **SACS shifting** — the single-pass sort-ahead cell-shifting chain
  evaluation (:meth:`KernelBackend.build_sacs_context` /
  :meth:`KernelBackend.shift_sacs`).

The curve-set value returned by :meth:`build_curves` is *opaque*: each
backend chooses its own representation (the pure-Python backend keeps a
list of :class:`~repro.mgl.curves.BreakpointPiece`, the NumPy backend
keeps three flat coordinate/slope arrays) and only that backend's other
methods consume it.  Callers must therefore run build/minimize/evaluate
against a single backend instance, which is how FOP uses them.

Every backend must be *bit-for-bit equivalent* to the pure-Python
reference: same optima, same costs, same shift thresholds, same work
counters.  The equivalence is enforced by ``tests/test_kernels.py``;
adding a new backend means subclassing :class:`KernelBackend`,
registering it via :func:`repro.kernels.register_backend` and passing
those tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.sacs import SACSContext
    from repro.geometry.cell import Cell
    from repro.geometry.region import LocalRegion
    from repro.mgl.curves import CurveEvaluation
    from repro.mgl.insertion import InsertionPoint
    from repro.mgl.shifting import ShiftOutcome


class KernelBackend(ABC):
    """Abstract base class of the pluggable kernel implementations."""

    #: Registry / configuration name of the backend (``"python"``, ...).
    name: str = "abstract"

    #: True for backends that parallelise whole legalization runs across
    #: OS processes (see :mod:`repro.kernels.mp_backend`).  Such backends
    #: additionally implement ``legalize_sharded(legalizer, layout,
    #: ordered, trace, *, clusters=None)`` and
    #: :class:`~repro.mgl.legalizer.MGLLegalizer` hands them the run
    #: after pre-move and ordering.  ``ordered`` is an *explicit target
    #: subset*: it may cover every pending cell (a full run) or only a
    #: dirty subset (an incremental re-legalization via
    #: ``MGLLegalizer.legalize_subset``); implementations must restrict
    #: themselves to exactly those targets and never pull in other
    #: unlegalized cells of the layout.  ``clusters`` optionally carries
    #: the subset's spatial dirty clusters (lists of cell indices) as
    #: shard-planning seeds; honouring them must never change results.
    supports_layout_parallel: bool = False

    #: True for backends that parallelise the FOP candidate loop *within*
    #: one localRegion (the paper's FOP-PE axis).  Such backends
    #: additionally implement ``should_parallelize_fop(region, points)``
    #: and ``evaluate_points_parallel(region, target, points, config)``;
    #: :func:`repro.mgl.fop.find_optimal_position` calls them per region.
    supports_point_parallel: bool = False

    # ------------------------------------------------------------------
    # Displacement-curve kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def build_curves(
        self,
        region: "LocalRegion",
        target: "Cell",
        bottom_row: int,
        outcome: "ShiftOutcome",
        vertical_cost_factor: float,
    ) -> Any:
        """Assemble the displacement curves of one insertion point.

        Returns an opaque curve set consumed by :meth:`minimize` and
        :meth:`evaluate` of the same backend.
        """

    @abstractmethod
    def minimize(
        self,
        curves: Any,
        lo: float,
        hi: float,
        *,
        preferred_x: Optional[float] = None,
        fwd_bwd: bool = False,
    ) -> "CurveEvaluation":
        """Minimize the summed curve over ``[lo, hi]``.

        ``fwd_bwd`` selects the reorganised fwdtraverse/bwdtraverse
        operation structure instead of the original five-stage pipeline;
        both organisations return the same optimum.
        """

    @abstractmethod
    def evaluate(self, curves: Any, xs: Sequence[float]) -> List[float]:
        """Exact summed-curve values at each query position in ``xs``."""

    # ------------------------------------------------------------------
    # Batched cross-insertion-point kernels
    # ------------------------------------------------------------------
    # FOP scores every insertion point of a localRegion; the batch entry
    # points let a backend evaluate the whole candidate population as one
    # pipeline instead of point by point.  The defaults below delegate to
    # the scalar methods, so results are bit-for-bit identical for every
    # backend by construction; vectorized backends override them.

    def minimize_batch(
        self,
        curve_sets: Sequence[Any],
        bounds: Sequence[Tuple[float, float]],
        *,
        preferred_x: Optional[float] = None,
        fwd_bwd: bool = False,
    ) -> List["CurveEvaluation"]:
        """Minimize one summed curve per insertion point.

        ``curve_sets[i]`` is scored over ``bounds[i] = (lo, hi)``; the
        result list is index-aligned with the inputs.
        """
        return [
            self.minimize(curves, lo, hi, preferred_x=preferred_x, fwd_bwd=fwd_bwd)
            for curves, (lo, hi) in zip(curve_sets, bounds)
        ]

    def evaluate_batch(
        self, curve_sets: Sequence[Any], queries: Sequence[Sequence[float]]
    ) -> List[List[float]]:
        """Exact summed-curve values per insertion point (snapping step).

        ``queries[i]`` holds the site candidates of curve set ``i``; an
        empty query list yields an empty value list for that point.
        """
        return [self.evaluate(curves, xs) for curves, xs in zip(curve_sets, queries)]

    # ------------------------------------------------------------------
    # SACS kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def build_sacs_context(self, region: "LocalRegion") -> "SACSContext":
        """Pre-sort a localRegion for sort-ahead cell shifting.

        The returned context must be (a subclass of)
        :class:`repro.core.sacs.SACSContext` so that the reference
        algorithm can always run on it.
        """

    @abstractmethod
    def shift_sacs(
        self,
        region: "LocalRegion",
        target: "Cell",
        insertion: "InsertionPoint",
        context: "SACSContext",
    ) -> "ShiftOutcome":
        """Single-pass SACS chain evaluation for one insertion point."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
