"""The pure-Python reference kernel backend.

This backend delegates to the scalar reference implementations that live
next to the algorithms they model (:mod:`repro.mgl.curves`,
:mod:`repro.mgl.fop`, :mod:`repro.core.sacs`).  Those functions are the
*oracle*: every other backend must reproduce their outputs bit for bit,
and they stay readable, paper-shaped Python for exactly that reason.

The delegated modules are imported lazily inside the methods because the
registry in :mod:`repro.kernels` is itself imported by ``repro.mgl.fop``
and ``repro.core.sacs`` — a module-level import in either direction
would be circular.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.kernels.base import KernelBackend


class PythonKernelBackend(KernelBackend):
    """Scalar reference implementation of every kernel."""

    name = "python"

    # ------------------------------------------------------------------
    def build_curves(
        self, region, target, bottom_row, outcome, vertical_cost_factor
    ) -> Tuple[list, float]:
        from repro.mgl.fop import build_curves

        return build_curves(region, target, bottom_row, outcome, vertical_cost_factor)

    def minimize(
        self,
        curves: Any,
        lo: float,
        hi: float,
        *,
        preferred_x: Optional[float] = None,
        fwd_bwd: bool = False,
    ):
        from repro.mgl.curves import minimize_curves, minimize_curves_fwd_bwd

        pieces, constant = curves
        minimizer = minimize_curves_fwd_bwd if fwd_bwd else minimize_curves
        return minimizer(pieces, constant, lo, hi, preferred_x=preferred_x)

    def evaluate(self, curves: Any, xs: Sequence[float]) -> List[float]:
        from repro.mgl.curves import evaluate_piecewise

        pieces, constant = curves
        return [evaluate_piecewise(pieces, constant, x) for x in xs]

    # ------------------------------------------------------------------
    def build_sacs_context(self, region):
        from repro.core.sacs import build_sacs_context

        return build_sacs_context(region)

    def shift_sacs(self, region, target, insertion, context):
        from repro.core.sacs import shift_cells_sacs

        return shift_cells_sacs(region, target, insertion, context)
