"""Pluggable kernel backends for the legalizer hot paths.

The three FOP inner loops — displacement-curve construction/merging,
curve minimization, and SACS shifting-chain evaluation — are behind the
:class:`~repro.kernels.base.KernelBackend` interface so that multiple
implementations can be swapped without touching the algorithm layer:

``python``
    The scalar reference implementation (the oracle).  Always available.
``numpy``
    NumPy-vectorized kernels, bit-for-bit equal to the reference,
    including batched cross-insertion-point scoring
    (:mod:`repro.kernels.numpy_backend`).  Registered only when numpy is
    importable.
``multiprocess``
    Host-side process parallelism over the fastest sequential kernels
    (:mod:`repro.kernels.mp_backend`): static window-disjoint sharding,
    a speculative wavefront, and intra-region insertion-point chunking,
    all with deterministic merges.  Accepts a ``"multiprocess:N"``
    spelling to pin the worker count from string-only configuration.

Selecting a backend
-------------------
Every entry point takes a backend name (or instance):

>>> from repro.core import FlexConfig, FlexLegalizer
>>> flex = FlexLegalizer(FlexConfig(kernel_backend="numpy"))

>>> from repro.mgl import MGLLegalizer
>>> mgl = MGLLegalizer(backend="numpy")

or at the kernel level:

>>> from repro.kernels import get_kernel_backend
>>> backend = get_kernel_backend("numpy")

Adding a backend
----------------
Subclass :class:`~repro.kernels.base.KernelBackend`, implement its five
methods, register a factory with :func:`register_backend`, and add the
backend name to the parametrized equivalence suite in
``tests/test_kernels.py`` — the suite asserts bit-for-bit agreement with
the ``python`` oracle on curves, FOP positions and SACS shifts.  This is
the extension point future GPU / multiprocess backends plug into.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.kernels.base import KernelBackend

#: Backend used when no explicit choice is made anywhere.
DEFAULT_BACKEND = "python"

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_PARAM_FACTORIES: Dict[str, Callable[[str], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    parameterized: Optional[Callable[[str], KernelBackend]] = None,
) -> None:
    """Register a backend factory under ``name`` (overwrites silently).

    ``parameterized`` optionally accepts ``"name:arg"`` spellings — e.g.
    ``"multiprocess:4"`` resolves through ``parameterized("4")`` — so
    string-only configuration surfaces (:class:`~repro.core.config
    .FlexConfig`, CLI flags, environment files) can select tuned
    instances without holding object references.
    """
    _FACTORIES[name] = factory
    if parameterized is not None:
        _PARAM_FACTORIES[name] = parameterized
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Names of the registered (importable) backends, sorted."""
    return sorted(_FACTORIES)


def get_kernel_backend(name: str) -> KernelBackend:
    """Return the shared backend instance registered under ``name``.

    Accepts plain registry names and parameterized ``"name:arg"``
    spellings for backends registered with a parameterized factory.
    Invalid parameterized arguments (e.g. ``"multiprocess:0"`` or
    ``"multiprocess:x"``) raise a :class:`ValueError` naming the
    offending spelling; unknown backend names raise :class:`KeyError`.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is not None:
        instance = _INSTANCES[name] = factory()
        return instance
    base, sep, arg = name.partition(":")
    if sep and base in _PARAM_FACTORIES:
        # Factories validate their argument and raise a clear ValueError
        # (e.g. a non-integer or < 1 worker count); let it propagate
        # instead of burying it under a registry KeyError.
        instance = _INSTANCES[name] = _PARAM_FACTORIES[base](arg)
        return instance
    raise KeyError(
        f"unknown kernel backend {name!r}; available: {available_backends()}"
    )


#: Anything the configuration layer accepts as a backend choice.
BackendSpec = Union[str, KernelBackend, None]


def resolve_backend(spec: BackendSpec) -> KernelBackend:
    """Resolve a config value (name, instance or None) to a backend."""
    if spec is None:
        return get_kernel_backend(DEFAULT_BACKEND)
    if isinstance(spec, KernelBackend):
        return spec
    return get_kernel_backend(spec)


# ----------------------------------------------------------------------
# Built-in backend registration (kept after the registry definitions:
# repro.mgl.fop imports this module while the backends below import
# repro.mgl — the functions above must already exist at that point).
# ----------------------------------------------------------------------
from repro.kernels.python_backend import PythonKernelBackend  # noqa: E402

register_backend("python", PythonKernelBackend)

from repro.kernels import numpy_backend as _numpy_backend  # noqa: E402

if _numpy_backend.np is not None:
    register_backend("numpy", _numpy_backend.NumpyKernelBackend)

NumpyKernelBackend = _numpy_backend.NumpyKernelBackend

from repro.kernels.mp_backend import MultiprocessKernelBackend, parse_worker_count  # noqa: E402


def _multiprocess_from_arg(arg: str) -> MultiprocessKernelBackend:
    workers = parse_worker_count(arg, source=f'"multiprocess:{arg}"')
    return MultiprocessKernelBackend(workers=workers)


register_backend(
    "multiprocess",
    MultiprocessKernelBackend,
    parameterized=_multiprocess_from_arg,
)

__all__ = [
    "KernelBackend",
    "PythonKernelBackend",
    "NumpyKernelBackend",
    "MultiprocessKernelBackend",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_kernel_backend",
    "register_backend",
    "resolve_backend",
]
