"""Multiprocess sharded kernel backend.

The paper's parallelism argument is that legalization parallelises
across *independent local regions*: two target cells whose search
windows never touch cannot influence each other, because every read
(region extraction, density estimation) and every write (cell shifts,
the committed target position) stays inside the target's window.  This
backend turns that observation into a host-side execution engine with
two strategies, both producing results **bit-for-bit identical** to the
sequential reference:

**Static sharding** (spread-out designs).  The run's initial search
windows are grouped into connected components by rectangle overlap and
packed onto worker processes
(:func:`repro.core.task_assignment.plan_shards`).  Each worker runs the
plain sequential legalizer — restricted to its shard's targets, in the
*global* processing order — on its mirror of the layout; the parent
merges placements and work records back in global order.  Cross-worker
window disjointness makes the merge provably exact.  The one hazard is
window *expansion* (a retry grows the window, possibly into another
worker's territory): workers record every target's final window, the
parent validates them with
:func:`repro.core.task_assignment.find_escaped_conflicts`, and on any
cross-worker escape it discards the parallel results and re-runs
sequentially on the untouched parent layout.

**Speculative wavefront** (dense designs, where every window overlaps
transitively into one component).  Workers evaluate targets
optimistically against the committed prefix of the run; the coordinator
commits results strictly in global processing order and validates each
result against the commits that landed after its dispatch: if any such
commit's touched area intersects the target's final window, the result
is discarded and the target re-evaluated at the commit frontier — where
acceptance is guaranteed, because nothing can commit past a blocked
frontier.  Accepted results are therefore always computed on exactly
the layout state the sequential interleaving would have shown, work
counters included; speculation only ever costs time, never exactness.

**Execution substrate: one persistent pool, zero-copy state.**  All
three engines (static shards, wavefront targets, intra-region point
chunks) run on a single pool of worker processes that lives for the
backend's lifetime: forked lazily on first use, reused across
``legalize`` / ``legalize_subset`` calls (critical for ECO streams,
which previously paid a fork + full-layout pickle per batch), and torn
down by :meth:`MultiprocessKernelBackend.close`, the context-manager
exit, or a :mod:`weakref` finalizer when the backend is dropped or the
interpreter exits.  Workers never unpickle a layout: cell state is
published into a shared-memory float64 block
(:mod:`repro.kernels.shm`) that workers attach zero-copy and refresh
from when a task carries a newer epoch — only target-index slices and
placement/work results travel over the pipes.

**When sharding loses.**  Per-target round-trips and result pickling
still cost real time, so small designs — or heavily contended dense
designs where most speculations get rejected — are faster on the plain
``numpy`` backend; :attr:`MultiprocessKernelBackend
.min_parallel_targets` short-circuits tiny runs to the sequential inner
backend, and ``shard_stats`` in the trace records the rejection rate so
sweeps can see where the crossover sits.

The kernel-level methods (curves, minimization, SACS chains) delegate to
the inner sequential backend, so ``"multiprocess"`` is also a valid
drop-in kernel backend for per-region work.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import weakref
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kernels.base import KernelBackend
from repro.obs import metrics as obs_metrics
from repro.obs import span

#: Environment variable overriding the default worker count (used by the
#: CI equivalence matrix to sweep pool sizes without code changes).
WORKERS_ENV_VAR = "REPRO_MP_WORKERS"

#: Exceptions ``pickle.dumps`` raises for unpicklable legalizer
#: configurations (exotic orderings / shifters); the backend falls back
#: to an equivalent non-pool path instead of crashing the run.
_UNPICKLABLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


def parse_worker_count(value: str, *, source: str = WORKERS_ENV_VAR) -> int:
    """Parse a worker-count string, rejecting junk with a clear error.

    Raises :class:`ValueError` naming the offending ``source`` (the env
    var or the ``"multiprocess:N"`` spelling) for non-integer or < 1
    values, instead of letting ``int()`` / pool setup crash deep inside
    a run with an inscrutable traceback.
    """
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid worker count {value!r} from {source}: "
            "expected an integer >= 1"
        ) from None
    if workers < 1:
        raise ValueError(
            f"invalid worker count {workers} from {source}: must be >= 1"
        )
    return workers


def default_worker_count() -> int:
    """Worker-pool size: ``$REPRO_MP_WORKERS`` or ``min(8, cpu_count)``."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return parse_worker_count(env)
    # Worker *count* is result-neutral by construction (shard plans and
    # merges are worker-count-invariant), so sizing the pool by the host
    # is sanctioned here and nowhere else.
    return max(1, min(8, os.cpu_count() or 1))  # repro: allow[det-cpu-count]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
def _execute_shard(layout, legalizer, cell_indices: Sequence[int]):
    """Run the sequential legalizer over one static shard's targets.

    Returns ``(works, failed, placements)`` where ``placements`` holds
    ``(cell_index, x, y)`` for every cell the shard actually *touched*
    (placed targets plus shifted obstacles) — the parent applies only
    the entries that changed, so shipping the untouched majority of the
    layout back over the pipe would be pure overhead.
    """
    works = []
    failed: List[int] = []
    touched = set()
    orig_move = layout.move_obstacle
    orig_mark = layout.mark_legalized

    def recording_move(cell, new_x):
        touched.add(cell.index)
        orig_move(cell, new_x)

    def recording_mark(cell, x, y):
        touched.add(cell.index)
        orig_mark(cell, x, y)

    layout.move_obstacle = recording_move
    layout.mark_legalized = recording_mark
    try:
        for index in cell_indices:
            target = layout.cells[index]
            if target.legalized:
                continue
            placed, work = legalizer._legalize_cell(layout, target)
            works.append(work)
            if not placed:
                failed.append(index)
    finally:
        layout.move_obstacle = orig_move
        layout.mark_legalized = orig_mark
    placements = [
        (index, layout.cells[index].x, layout.cells[index].y)
        for index in sorted(touched)
        if layout.cells[index].legalized and not layout.cells[index].fixed
    ]
    return works, failed, placements


def _apply_commits(layout, commits, move_fn=None, place_fn=None) -> None:
    """Replay committed mutations onto a layout.

    ``commits`` entries are ``("move", cell_index, new_x)`` or
    ``("place", cell_index, x, y)``; the optional function overrides let
    callers bypass recording wrappers.
    """
    move_fn = move_fn or layout.move_obstacle
    place_fn = place_fn or layout.mark_legalized
    for entry in commits:
        if entry[0] == "move":
            move_fn(layout.cells[entry[1]], entry[2])
        else:
            place_fn(layout.cells[entry[1]], entry[2], entry[3])


#: Transport field order of :class:`repro.perf.counters.InsertionPointWork`
#: (tuples pickle several times faster than dataclass instances).
_WORK_FIELDS = (
    "n_local_cells",
    "n_subcells",
    "shift_passes",
    "shift_cell_visits",
    "chain_left",
    "chain_right",
    "n_breakpoints",
    "n_merged_breakpoints",
    "sort_size",
    "multirow_accesses",
    "tall_accesses",
    "feasible",
)


def _encode_work(work) -> Tuple:
    return tuple(getattr(work, field) for field in _WORK_FIELDS)


def _decode_work(values: Tuple):
    from repro.perf.counters import InsertionPointWork

    return InsertionPointWork(**dict(zip(_WORK_FIELDS, values)))


def _evaluate_points(payload):
    """Evaluate one insertion-point chunk with the sequential FOP stages.

    ``payload`` is ``(blob, points)`` where ``blob`` is the pickled
    ``(region, target, params)`` broadcast; returns one ``(best_x, cost,
    work_tuple)`` triple per point.  Stateless: the region travels with
    the task, so any pool worker can serve any region of any run.
    """
    from repro.core.sacs import SortAheadShifter
    from repro.kernels import get_kernel_backend
    from repro.mgl.fop import FOPConfig, evaluate_point_list
    from repro.mgl.shifting import OriginalShifter

    blob, points = payload
    region, target, params = pickle.loads(blob)
    backend = get_kernel_backend(params["inner"])
    shifter = (
        SortAheadShifter(backend=backend) if params["sacs"] else OriginalShifter()
    )
    config = FOPConfig(
        shifter=shifter,
        use_fwd_bwd_pipeline=params["fwd_bwd"],
        vertical_cost_factor=params["vcf"],
        backend=backend,
    )
    shifter.prepare(region)
    scored = evaluate_point_list(region, target, points, config, backend)
    return [(best_x, cost, _encode_work(work)) for _, best_x, cost, _, work in scored]


def _evaluate_wave(layout, legalizer, payload):
    """Speculatively evaluate one wavefront target, report, undo.

    The mirror layout tracks the *committed* state of the run: the task
    carries the commit delta since this worker's last wave task, and the
    worker's own speculative mutations are undone after reporting.
    """
    target_index, commit_delta = payload
    _apply_commits(layout, commit_delta)
    recording: List[Tuple] = []
    orig_move = layout.move_obstacle
    orig_mark = layout.mark_legalized

    def recording_move(cell, new_x):
        recording.append(("move", cell.index, cell.x, float(new_x)))
        orig_move(cell, new_x)

    def recording_mark(cell, x, y):
        recording.append(
            ("place", cell.index, cell.x, cell.y, cell.legalized, float(x), float(y))
        )
        orig_mark(cell, x, y)

    layout.move_obstacle = recording_move
    layout.mark_legalized = recording_mark
    try:
        placed, work = legalizer._legalize_cell(layout, layout.cells[target_index])
    finally:
        layout.move_obstacle = orig_move
        layout.mark_legalized = orig_mark
    commits = [
        ("move", entry[1], entry[3])
        if entry[0] == "move"
        else ("place", entry[1], entry[5], entry[6])
        for entry in recording
    ]
    for entry in reversed(recording):
        cell = layout.cells[entry[1]]
        if entry[0] == "move":
            orig_move(cell, entry[2])
        else:
            layout.unmark_legalized(cell, entry[2], entry[3], entry[4])
    return target_index, placed, work, commits


def _pool_worker(conn) -> None:
    """Persistent pool worker: serve tasks until told to quit.

    Message protocol (parent -> worker): ``None`` shuts the worker down;
    anything else is ``(kind, sync, payload)`` where ``sync`` is the
    optional shared-memory catch-up built by
    :meth:`repro.kernels.shm.SharedCellStore.build_sync` (piggybacked on
    the first task after each publish).  Every task gets exactly one
    reply: ``("ok", result, telemetry)`` or ``("err", traceback_text,
    telemetry)`` — keeping the pipe protocol in lock-step even when a
    task raises, so one bad shard cannot wedge the pool.  ``telemetry``
    is the worker's drained metrics-registry snapshot (per-task wall
    time, shm refresh counters; ``None`` when empty): the parent merges
    it into the process-wide registry, which is how worker-side metrics
    surface without any side channel.
    """
    import time as _time
    import traceback

    from repro.kernels.shm import WorkerLayoutMirror
    from repro.obs import metrics as obs_metrics
    from repro.obs import span

    # The fork copied the parent's registry contents; forget them so the
    # drained deltas below never re-ship what the parent already has.
    obs_metrics.REGISTRY.reset()
    mirror = WorkerLayoutMirror()
    legalizer = None
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            kind, sync, payload = message
            task_start = _time.perf_counter()
            try:
                with span("mp.worker_task", kind=kind):
                    if sync is not None:
                        blob = sync.pop("legalizer", None)
                        if blob is not None:
                            legalizer = pickle.loads(blob)
                        mirror.apply_sync(sync)
                    elif kind == "shard" and mirror.stale:
                        # A second shard at the same epoch: reset the mirror
                        # to the published state (shards are window-disjoint,
                        # but placements must be computed against the run's
                        # initial layout, not a sibling shard's output).
                        mirror.refresh()
                    if kind == "shard":
                        mirror.stale = True
                        result = _execute_shard(mirror.layout, legalizer, payload)
                    elif kind == "wave":
                        mirror.stale = True
                        result = _evaluate_wave(mirror.layout, legalizer, payload)
                    elif kind == "points":
                        result = _evaluate_points(payload)
                    else:
                        raise ValueError(f"unknown pool task {kind!r}")
            except BaseException:
                conn.send(("err", traceback.format_exc(), obs_metrics.REGISTRY.drain()))
                continue
            obs_metrics.observe(
                "repro_worker_task_seconds",
                _time.perf_counter() - task_start,
                kind=kind,
            )
            conn.send(("ok", result, obs_metrics.REGISTRY.drain()))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        mirror.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent-side pool state
# ----------------------------------------------------------------------
class _WorkerTaskError(Exception):
    """A pool worker's task raised; carries the worker-side traceback."""

    def __init__(self, details: str) -> None:
        super().__init__(details)
        self.details = details


class _PoolWorkerHandle:
    """One pool worker process plus what it has seen of the world."""

    __slots__ = (
        "process",
        "conn",
        "epoch",
        "design_rev",
        "n_cells",
        "shm_name",
        "legalizer_rev",
    )

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.epoch = -1
        self.design_rev = -1
        self.n_cells = 0
        self.shm_name = None
        self.legalizer_rev = -1


class _PoolState:
    """Everything :func:`_shutdown_pool` must reap.

    Kept separate from the backend object so a :mod:`weakref` finalizer
    can own it without keeping the backend alive — the old
    ``atexit.register(self.close)`` pattern pinned the backend (and its
    workers) in memory forever.
    """

    def __init__(self, use_shared_memory: Optional[bool] = None) -> None:
        from repro.kernels.shm import SharedCellStore

        self.workers: List[_PoolWorkerHandle] = []
        self.store = SharedCellStore(use_shared_memory)
        self.legalizer_blob: Optional[bytes] = None
        self.legalizer_rev = 0


def _shutdown_pool(state: _PoolState) -> None:
    """Reap a pool: polite shutdown, then join, then terminate."""
    workers, state.workers = state.workers, []
    for worker in workers:
        try:
            worker.conn.send(None)
        except (BrokenPipeError, OSError):  # pragma: no cover - worker died
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
    for worker in workers:
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
            worker.process.join(timeout=1.0)
    state.store.close()


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class MultiprocessKernelBackend(KernelBackend):
    """Shards legalization runs across worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``$REPRO_MP_WORKERS`` or
        ``min(8, cpu_count)``.  Results never depend on the worker count.
    inner:
        Sequential backend executing the numeric kernels inside each
        worker (and for all per-region delegation).  Defaults to
        ``"numpy"`` when available, else ``"python"``.
    use_processes:
        When False the static shards execute serially in-process on
        layout copies — the identical partition/merge/validation
        machinery without any :mod:`multiprocessing`, used by the
        property-based shard-invariant tests (and as the automatic
        fallback on platforms without ``fork``).
    min_parallel_targets:
        Runs with fewer pending targets go straight to the sequential
        inner backend (sharding overhead would dominate).
    strategy:
        ``"auto"`` (default) picks static sharding when the window
        components split well and the speculative wavefront otherwise;
        ``"static"`` / ``"wavefront"`` force one engine.

    The worker pool is **persistent**: forked lazily on first use and
    reused by every subsequent run until :meth:`close` (also invoked by
    ``with backend: ...``, by a finalizer when the backend is garbage
    collected, and at interpreter exit).  ``close()`` is idempotent and
    non-terminal — the next run simply forks a fresh pool.
    """

    name = "multiprocess"
    supports_layout_parallel = True
    supports_point_parallel = True

    #: ``auto``: use static sharding only when no shard exceeds this
    #: fraction of the run (otherwise one worker does nearly everything).
    STATIC_BALANCE_LIMIT = 0.6

    #: Intra-region parallelism thresholds: a region's FOP is farmed out
    #: only when it enumerates at least this many candidate points and
    #: the points x localCells product clears the work floor (below that
    #: the region/points round-trip costs more than the evaluation).
    POINT_PARALLEL_MIN_POINTS = 96
    POINT_PARALLEL_MIN_WORK = 20_000
    #: Per-region worker-side overhead (region unpickle, context rebuild,
    #: wakeup) as a fraction of one equal chunk's compute; the parent's
    #: share is biased up by this amount so parent and workers finish
    #: together.
    POINT_PARALLEL_OVERHEAD = 0.25

    def __init__(
        self,
        workers: Optional[int] = None,
        inner: Optional[object] = None,
        *,
        use_processes: bool = True,
        min_parallel_targets: int = 8,
        strategy: str = "auto",
    ) -> None:
        from repro.kernels import available_backends, resolve_backend

        if inner is None:
            inner = "numpy" if "numpy" in available_backends() else "python"
        self.inner = resolve_backend(inner)
        if self.inner.supports_layout_parallel:
            raise ValueError("inner backend must be a sequential kernel backend")
        self.workers = default_worker_count() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if strategy not in ("auto", "static", "wavefront"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.use_processes = use_processes
        self.min_parallel_targets = min_parallel_targets
        self.strategy = strategy
        #: Shard statistics of the most recent run (also recorded in the
        #: trace); useful for benchmarks and reports.
        self.last_shard_stats: Optional[Dict[str, Any]] = None
        self._pool: Optional[_PoolState] = None
        self._pool_finalizer = None
        #: Total worker processes forked over the backend's lifetime;
        #: stays flat across runs while the pool is being reused (the
        #: pool-reuse tests assert on it).
        self.workers_spawned = 0
        self._point_parallel_regions = 0

    # ------------------------------------------------------------------
    # Kernel-level delegation (per-region work is sequential)
    # ------------------------------------------------------------------
    def build_curves(self, region, target, bottom_row, outcome, vertical_cost_factor):
        return self.inner.build_curves(
            region, target, bottom_row, outcome, vertical_cost_factor
        )

    def minimize(self, curves, lo, hi, *, preferred_x=None, fwd_bwd=False):
        return self.inner.minimize(
            curves, lo, hi, preferred_x=preferred_x, fwd_bwd=fwd_bwd
        )

    def evaluate(self, curves, xs):
        return self.inner.evaluate(curves, xs)

    def minimize_batch(self, curve_sets, bounds, *, preferred_x=None, fwd_bwd=False):
        return self.inner.minimize_batch(
            curve_sets, bounds, preferred_x=preferred_x, fwd_bwd=fwd_bwd
        )

    def evaluate_batch(self, curve_sets, queries):
        return self.inner.evaluate_batch(curve_sets, queries)

    def build_sacs_context(self, region):
        return self.inner.build_sacs_context(region)

    def shift_sacs(self, region, target, insertion, context):
        return self.inner.shift_sacs(region, target, insertion, context)

    # ------------------------------------------------------------------
    # Persistent pool management
    # ------------------------------------------------------------------
    def _ensure_pool(self, n_workers: Optional[int] = None) -> _PoolState:
        """Fork the pool up to the needed size (never past ``workers``)."""
        target = (
            self.workers
            if n_workers is None
            else max(1, min(self.workers, n_workers))
        )
        if self._pool is None:
            self._pool = _PoolState()
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        state = self._pool
        if len(state.workers) < target:
            try:
                # Start the parent's resource tracker *before* forking:
                # workers attach shared memory, and a child that inherits
                # no live tracker fd spawns its own tracker, which
                # "cleans up" (unlinks) the parent's segment when the
                # worker exits.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - platform-specific
                pass
            ctx = multiprocessing.get_context("fork")
            while len(state.workers) < target:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_pool_worker, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                state.workers.append(_PoolWorkerHandle(process, parent_conn))
                self.workers_spawned += 1
        return state

    def _publish(self, state: _PoolState, layout, worker_legalizer) -> None:
        """Stage the layout into shared memory and version the legalizer.

        The legalizer blob is pickled first so an unpicklable
        configuration fails *before* the store's epoch moves (callers
        fall back to a non-pool path on :data:`_UNPICKLABLE_ERRORS`).
        Workers never call the ordering, so it is normalised to the
        default before pickling — closure orderings must not break the
        pool path.
        """
        from repro.mgl.legalizer import size_descending_order

        if hasattr(worker_legalizer, "ordering"):
            worker_legalizer.ordering = size_descending_order
        with span("mp.publish") as sp:
            blob = pickle.dumps(worker_legalizer, pickle.HIGHEST_PROTOCOL)
            state.store.publish(layout)
            if blob != state.legalizer_blob:
                state.legalizer_blob = blob
                state.legalizer_rev += 1
            sp.set(epoch=state.store.epoch, n_cells=state.store.n_cells)

    def _send_task(
        self, state: _PoolState, worker: _PoolWorkerHandle, kind: str, payload
    ) -> None:
        """Send one task, piggybacking the sync if the worker is behind."""
        sync = None
        if kind != "points" and worker.epoch != state.store.epoch:
            sync = state.store.build_sync(worker)
            if worker.legalizer_rev != state.legalizer_rev:
                sync["legalizer"] = state.legalizer_blob
                worker.legalizer_rev = state.legalizer_rev
            worker.epoch = state.store.epoch
            worker.design_rev = state.store.design_rev
            worker.n_cells = state.store.n_cells
            worker.shm_name = state.store.shm_name
        worker.conn.send((kind, sync, payload))

    def _recv_reply(self, worker: _PoolWorkerHandle):
        """Receive one task reply; tear the pool down on transport death.

        Every reply piggybacks the worker's drained metrics snapshot;
        merging it here (on both the ok and the err path) is what makes
        worker-side wall times visible in the process-wide registry.
        """
        try:
            status, payload, telemetry = worker.conn.recv()
        except (EOFError, OSError) as exc:
            self.close()
            raise RuntimeError(
                "multiprocess pool worker died mid-task; pool torn down"
            ) from exc
        obs_metrics.REGISTRY.merge(telemetry)
        if status == "err":
            raise _WorkerTaskError(payload)
        return payload

    def close(self) -> None:
        """Tear down the persistent worker pool and its shared memory.

        Idempotent, and not terminal: the next sharded run (or
        point-parallel region) lazily forks a fresh pool.  Also invoked
        by the context-manager exit, by a finalizer when the backend is
        garbage collected, and at interpreter exit — so dropped
        backends and aborted runs cannot leak worker processes.
        """
        state, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if state is not None:
            _shutdown_pool(state)

    def __enter__(self) -> "MultiprocessKernelBackend":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Intra-region insertion-point parallelism (the paper's FOP-PE axis)
    # ------------------------------------------------------------------
    def should_parallelize_fop(self, region, points) -> bool:
        """Farm out only regions whose FOP dwarfs the shipping cost."""
        if self.workers < 2 or not self.use_processes or not _fork_available():
            return False
        n_points = len(points)
        return (
            n_points >= self.POINT_PARALLEL_MIN_POINTS
            and n_points * max(1, len(region.local_cells))
            >= self.POINT_PARALLEL_MIN_WORK
        )

    def evaluate_points_parallel(self, region, target, points, config):
        """Chunk one region's candidate loop across the worker pool.

        The parent evaluates one chunk itself (no idle coordinator, and
        the chunk holding the region's first point keeps the parent
        shifter's once-per-region sort report); workers run the exact
        sequential FOP stages on theirs, against a region blob that is
        pickled once and broadcast.  Chunks are dealt round-robin so
        systematically expensive stretches of the enumeration spread
        across workers, and the reassembled results are index-aligned
        with ``points`` — work records match the sequential
        single-context run bit for bit.  Shift outcomes of worker points
        are not shipped back (the caller re-derives the winner's);
        unknown shifter types fall back to the sequential path.
        """
        from repro.core.sacs import SortAheadShifter
        from repro.mgl.fop import evaluate_point_list
        from repro.mgl.shifting import OriginalShifter

        if isinstance(config.shifter, SortAheadShifter):
            sacs = True
        elif isinstance(config.shifter, OriginalShifter):
            sacs = False
        else:
            return evaluate_point_list(region, target, points, config, self)
        state = self._ensure_pool()
        pool = state.workers
        # Chunk 0 runs in-parent; the fan-out honours the *configured*
        # worker count — a 2-worker backend (REPRO_MP_WORKERS=2 or
        # "multiprocess:2") must chunk for 2 workers regardless of how
        # many cores the machine has.  Results are chunking-independent.
        n_chunks = max(2, min(len(pool) + 1, len(points)))
        n_chunks = min(n_chunks, len(points))
        # Deal the points into fine stride groups and give the parent a
        # biased share: workers pay the region unpickle / context rebuild
        # / wakeup latency, so equal shares would leave the parent idle
        # at the end of every region.
        n_groups = 8 * n_chunks
        groups = [list(points[i::n_groups]) for i in range(n_groups)]
        parent_groups = min(
            n_groups - (n_chunks - 1),
            max(1, round(n_groups * (1.0 + self.POINT_PARALLEL_OVERHEAD) / n_chunks)),
        )
        shares: List[List[int]] = [list(range(parent_groups))]
        remaining = list(range(parent_groups, n_groups))
        n_workers_used = n_chunks - 1
        for w in range(n_workers_used):
            shares.append(remaining[w::n_workers_used])
        params = {
            "inner": self.inner.name,
            "sacs": sacs,
            "fwd_bwd": config.use_fwd_bwd_pipeline,
            "vcf": config.vertical_cost_factor,
        }
        blob = pickle.dumps((region, target, params), pickle.HIGHEST_PROTOCOL)
        results: List[Optional[Tuple]] = [None] * len(points)

        def place(share, scored):
            pos = 0
            for g in share:
                size = len(groups[g])
                results[g::n_groups] = scored[pos : pos + size]
                pos += size

        try:
            for worker, share in zip(pool, shares[1:]):
                self._send_task(
                    state, worker, "points", (blob, [p for g in share for p in groups[g]])
                )
            self._point_parallel_regions += 1
            obs_metrics.inc("repro_mp_point_regions_total")

            place(
                shares[0],
                evaluate_point_list(
                    region,
                    target,
                    [p for g in shares[0] for p in groups[g]],
                    config,
                    self,
                ),
            )
            for worker, share in zip(pool, shares[1:]):
                part = self._recv_reply(worker)
                decoded = [
                    (insertion, best_x, cost, None, _decode_work(work))
                    for insertion, (best_x, cost, work) in zip(
                        (p for g in share for p in groups[g]), part
                    )
                ]
                if decoded:
                    # Each worker built a fresh SACS context, so each chunk's
                    # first point carries a sort report; sequentially only the
                    # region's very first point (in the parent's chunk) does.
                    decoded[0][4].sort_size = 0
                place(share, decoded)
        except _WorkerTaskError as exc:
            self.close()
            raise RuntimeError(
                "multiprocess point worker failed:\n" + exc.details
            ) from None
        except BaseException:
            self.close()
            raise
        return results

    # ------------------------------------------------------------------
    # Layout-level sharded execution
    # ------------------------------------------------------------------
    def legalize_sharded(self, legalizer, layout, ordered, trace, *, clusters=None) -> List[int]:
        """Legalize ``ordered`` targets of ``layout``, sharded over workers.

        Called by :meth:`repro.mgl.legalizer.MGLLegalizer.legalize` (and
        by ``legalize_subset`` for incremental/ECO runs — ``ordered`` is
        always an explicit target subset and is never widened here)
        after pre-move and ordering; fills ``trace`` exactly like the
        sequential path and returns the failed cell indices.

        ``clusters`` optionally carries the spatial dirty clusters of an
        ECO subset (lists of cell indices); the static shard planner
        uses them as seeds so each dirty neighbourhood stays on one
        worker.  Results are cluster-independent — seeding only changes
        the packing, never the outcome.
        """
        stats: Dict[str, Any] = {
            "inner_backend": self.inner.name,
            "workers": self.workers,
            "mode": "sequential",
            "sequential_rerun": False,
            "escaped_targets": 0,
            "speculation_rejects": 0,
        }
        self.last_shard_stats = stats
        trace.shard_stats = stats
        self._point_parallel_regions = 0
        try:
            with span("mp.legalize_sharded", targets=len(ordered)) as sp:
                failed = self._legalize_sharded_impl(
                    legalizer, layout, ordered, trace, stats, clusters
                )
                sp.set(mode=stats["mode"], workers=self.workers)
            obs_metrics.inc("repro_mp_dispatches_total", mode=stats["mode"])
            return failed
        finally:
            stats["point_parallel_regions"] = self._point_parallel_regions
            stats["pool_workers_spawned"] = self.workers_spawned
            # Report the processes that actually executed FOP work: 1 for
            # runs that short-circuited to the sequential path end to end
            # (and for the in-process test mode, which forks nothing).
            pool_ran = (
                stats["mode"] in ("static", "wavefront")
                or self._point_parallel_regions > 0
            )
            trace.worker_count = self.workers if pool_ran else 1

    def _legalize_sharded_impl(
        self, legalizer, layout, ordered, trace, stats, clusters=None
    ) -> List[int]:
        from repro.core.task_assignment import plan_shards

        n_workers = min(self.workers, max(1, len(ordered)))
        parallel_viable = (
            n_workers > 1
            and len(ordered) >= self.min_parallel_targets
            and (not self.use_processes or _fork_available())
        )
        if not parallel_viable:
            return legalizer._legalize_ordered(layout, ordered, trace)

        plan = plan_shards(
            layout,
            ordered,
            n_workers,
            cluster_seeds=clusters,
            **legalizer.window_params(),
        )
        stats.update(plan.stats())

        largest = max((len(s) for s in plan.shards), default=0)
        static_splits_well = (
            plan.parallelism() >= 2
            and largest <= self.STATIC_BALANCE_LIMIT * len(ordered)
        )
        if self.strategy == "static" or not self.use_processes:
            engine = "static"
        elif self.strategy == "wavefront":
            engine = "wavefront"
        else:
            # auto: shard statically when the windows split into balanced
            # independent groups; otherwise drive sequentially and let
            # the intra-region point-parallel hook carry the heavy
            # regions (dense designs serialise both across-region modes,
            # exactly the paper's Sec. 5.4 observation about CPU
            # region-level threading).
            engine = "static" if static_splits_well else "points"

        if engine == "points":
            stats["mode"] = "point-parallel"
            return legalizer._legalize_ordered(layout, ordered, trace)
        worker_legalizer = legalizer.with_backend(self.inner)
        if engine == "static":
            if plan.parallelism() <= 1:
                # One connected component: nothing to shard statically.
                stats["mode"] = "point-parallel"
                return legalizer._legalize_ordered(layout, ordered, trace)
            return self._run_static(
                legalizer, layout, worker_legalizer, ordered, trace, plan, stats
            )
        return self._run_wavefront(
            legalizer, layout, worker_legalizer, ordered, trace, stats
        )

    # ------------------------------------------------------------------
    # Static sharding engine
    # ------------------------------------------------------------------
    def _run_static(self, legalizer, layout, worker_legalizer, ordered, trace, plan, stats):
        stats["mode"] = "static" if self.use_processes else "in-process"
        with span("mp.shards", n_shards=len(plan.shards)):
            shard_results = self._execute_shards(
                layout, worker_legalizer, plan.shard_descriptors()
            )

        conflicts = self._validate_static(plan, shard_results)
        stats["escaped_targets"] = len(conflicts)
        if conflicts:
            # A window expansion crossed into another worker: the parallel
            # results may differ from the sequential interleaving.  The
            # parent layout is untouched, so the deterministic answer is
            # one sequential pass over the original input.
            stats["sequential_rerun"] = True
            return legalizer._legalize_ordered(layout, ordered, trace)
        return self._merge_static(layout, ordered, trace, shard_results)

    def _execute_shards(self, layout, worker_legalizer, shards):
        """Run every static shard, on the persistent pool or in-process."""
        if not self.use_processes or not _fork_available():
            return [
                _execute_shard(layout.copy(), worker_legalizer, shard)
                for shard in shards
            ]
        nonempty = [pos for pos, shard in enumerate(shards) if len(shard)]
        results: List[Tuple] = [([], [], []) for _ in shards]
        if not nonempty:
            return results
        try:
            # The pool is sized by the *configured* worker count, capped
            # at the number of non-empty shards — a planner emitting more
            # shards than workers queues them round-robin instead of
            # oversubscribing the host with one process per shard.
            state = self._ensure_pool(len(nonempty))
            self._publish(state, layout, worker_legalizer)
        except _UNPICKLABLE_ERRORS:
            return [
                _execute_shard(layout.copy(), worker_legalizer, shard)
                for shard in shards
            ]
        active = state.workers[: min(len(state.workers), len(nonempty))]
        pending = {worker_id: deque() for worker_id in range(len(active))}
        conn_index = {active[i].conn: i for i in range(len(active))}
        try:
            for k, pos in enumerate(nonempty):
                worker_id = k % len(active)
                self._send_task(state, active[worker_id], "shard", shards[pos])
                pending[worker_id].append(pos)
            outstanding = len(nonempty)
            while outstanding:
                busy = [
                    active[i].conn for i in range(len(active)) if pending[i]
                ]
                for conn in mp_connection.wait(busy):
                    worker_id = conn_index[conn]
                    payload = self._recv_reply(active[worker_id])
                    results[pending[worker_id].popleft()] = payload
                    outstanding -= 1
        except _WorkerTaskError as exc:
            self.close()
            raise RuntimeError(
                "multiprocess shard worker failed:\n" + exc.details
            ) from None
        except BaseException:
            # Shard exception, transport death or KeyboardInterrupt: reap
            # the whole pool so no worker is left mid-protocol (the next
            # run forks a fresh one).
            self.close()
            raise
        return results

    @staticmethod
    def _validate_static(plan, shard_results) -> List[int]:
        """Cross-worker escape check over the windows actually used."""
        from repro.core.task_assignment import TargetWindowRect, find_escaped_conflicts

        final_windows: Dict[int, TargetWindowRect] = {}
        for works, _failed, _placements in shard_results:
            for work in works:
                rect = work.final_window
                if rect is None:  # pragma: no cover - defensive
                    rect = (0.0, float("inf"), 0, 1 << 30)
                final_windows[work.cell_index] = TargetWindowRect(
                    work.cell_index, rect[0], rect[1], rect[2], rect[3]
                )
        return find_escaped_conflicts(plan, final_windows)

    @staticmethod
    def _merge_static(layout, ordered, trace, shard_results) -> List[int]:
        """Apply shard placements and rebuild the trace in global order."""
        updates: Dict[int, Tuple[float, float]] = {}
        works_by_cell = {}
        failed_set = set()
        for works, failed, placements in shard_results:
            for work in works:
                works_by_cell[work.cell_index] = work
            failed_set.update(failed)
            for index, x, y in placements:
                cell = layout.cells[index]
                if not cell.legalized or cell.x != x or cell.y != y:
                    updates[index] = (x, y)
        for index, (x, y) in updates.items():
            cell = layout.cells[index]
            cell.x = x
            cell.y = y
            cell.legalized = True
        layout.rebuild_index()

        failed: List[int] = []
        for target in ordered:
            work = works_by_cell.get(target.index)
            if work is None:
                continue
            trace.add_target(work)
            trace.region_build_ops += work.region_transfer_words
            trace.update_ops += work.update_moved_cells + 1
            if target.index in failed_set:
                failed.append(target.index)
        return failed

    # ------------------------------------------------------------------
    # Speculative wavefront engine
    # ------------------------------------------------------------------
    def _run_wavefront(self, legalizer, layout, worker_legalizer, ordered, trace, stats):
        from repro.core.task_assignment import TargetWindowRect

        stats["mode"] = "wavefront"
        targets = [cell.index for cell in ordered if not cell.legalized]
        n = len(targets)
        n_workers = min(self.workers, n)

        try:
            state = self._ensure_pool(n_workers)
            self._publish(state, layout, worker_legalizer)
        except _UNPICKLABLE_ERRORS:
            stats["mode"] = "point-parallel"
            return legalizer._legalize_ordered(layout, ordered, trace)
        active = state.workers[: min(len(state.workers), n_workers)]
        n_workers = len(active)
        rank_of: List[Optional[int]] = [None] * n_workers
        conn_index = {active[i].conn: i for i in range(n_workers)}

        #: Commit log: one entry per accepted target, ``(hazard_rects,
        #: commits)`` in global processing order.  ``hazard_rects`` holds
        #: one rectangle per position the commit touched (old and new spot
        #: of every moved cell) — a rect *list*, not a bounding box: a
        #: premove position far from the final placement must not smear
        #: the hazard area across the chip.
        commit_log: List[Tuple[List[TargetWindowRect], List[Tuple]]] = []
        #: Never speculate more than this many ranks past the commit
        #: frontier: deeper results are near-certain to be invalidated by
        #: the commits that must land before their turn, so evaluating
        #: them early only burns a second evaluation.
        max_depth = n_workers + 2
        sync_pos = [0] * n_workers  # commit-log position each worker has seen
        sent_pos: Dict[int, int] = {}  # rank -> log position at dispatch
        buffered: Dict[int, Tuple] = {}  # rank -> (placed, work, commits)
        retry_rank: Optional[int] = None
        next_dispatch = 0
        frontier = 0
        failed: List[int] = []
        rejects = 0

        def hazard_rects_of(work, commits) -> List[TargetWindowRect]:
            """One rectangle per position a commit touched (old and new)."""
            rects: List[TargetWindowRect] = []

            def add(x, y, width, height):
                rects.append(
                    TargetWindowRect(
                        work.cell_index, x, x + width, int(y), -int(-(y + height))
                    )
                )

            for entry in commits:
                cell = layout.cells[entry[1]]
                if entry[0] == "move":
                    add(cell.x, cell.y, cell.width, cell.height)  # old spot
                    add(entry[2], cell.y, cell.width, cell.height)  # new spot
                else:
                    add(cell.x, cell.y, cell.width, cell.height)  # pre-move spot
                    add(entry[2], entry[3], cell.width, cell.height)  # placement
            return rects

        def dispatch(worker_id: int) -> bool:
            nonlocal next_dispatch, retry_rank
            if retry_rank is not None:
                rank = retry_rank
                retry_rank = None
            elif next_dispatch < n and next_dispatch < frontier + max_depth:
                rank = next_dispatch
                next_dispatch += 1
            else:
                return False
            delta = [
                move
                for _, commits in commit_log[sync_pos[worker_id] :]
                for move in commits
            ]
            sync_pos[worker_id] = len(commit_log)
            sent_pos[rank] = len(commit_log)
            self._send_task(
                state, active[worker_id], "wave", (targets[rank], delta)
            )
            rank_of[worker_id] = rank
            return True

        try:
            while frontier < n:
                for worker_id in range(n_workers):
                    if rank_of[worker_id] is None:
                        dispatch(worker_id)
                busy = [
                    active[i].conn
                    for i in range(n_workers)
                    if rank_of[i] is not None
                ]
                if not busy:  # pragma: no cover - defensive
                    raise RuntimeError("wavefront stalled with work pending")
                for conn in mp_connection.wait(busy):
                    worker_id = conn_index[conn]
                    _target_index, placed, work, commits = self._recv_reply(
                        active[worker_id]
                    )
                    buffered[rank_of[worker_id]] = (placed, work, commits)
                    rank_of[worker_id] = None
                while frontier in buffered:
                    placed, work, commits = buffered.pop(frontier)
                    rect = work.final_window
                    window = TargetWindowRect(
                        work.cell_index, rect[0], rect[1], rect[2], rect[3]
                    )
                    hazard = any(
                        window.overlaps(rect)
                        for rects, _ in commit_log[sent_pos[frontier] :]
                        for rect in rects
                    )
                    if hazard:
                        # Stale state: re-evaluate at the frontier, where
                        # no further commits can intrude.
                        rejects += 1
                        retry_rank = frontier
                        break
                    commit_rects = hazard_rects_of(work, commits)
                    _apply_commits(layout, commits)
                    commit_log.append((commit_rects, commits))
                    trace.add_target(work)
                    trace.region_build_ops += work.region_transfer_words
                    trace.update_ops += work.update_moved_cells + 1
                    if not placed:
                        failed.append(work.cell_index)
                    frontier += 1
        except _WorkerTaskError as exc:
            self.close()
            raise RuntimeError(
                "multiprocess wavefront worker failed:\n" + exc.details
            ) from None
        except BaseException:
            self.close()
            raise

        stats["speculation_rejects"] = rejects
        stats["commits"] = len(commit_log)
        return failed
