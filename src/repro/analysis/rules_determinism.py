"""Determinism-hazard rules (``det-*``).

These guard the headline contract: placements must be bit-for-bit
identical across backends, worker counts and runs.  They are scoped to
the modules whose outputs feed placements — the kernel backends, the
incremental (ECO) engine, the MGL algorithm stack and the core
shard-planning/ordering code.  Telemetry and benchmark-generation
modules are deliberately out of scope: wall clocks and RNGs are fine
where they cannot reach a placement.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    collect_import_aliases,
    is_self_attribute,
    iter_functions,
    resolve_call_target,
    walk_shallow,
)
from repro.analysis.core import FileContext, Finding, Rule, register_rule

#: Modules whose computations feed placements.
PLACEMENT_SCOPES: Tuple[str, ...] = (
    "repro/kernels",
    "repro/incremental",
    "repro/mgl",
    "repro/core",
)

#: Call targets whose result is the host's wall clock.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_CPU_COUNT_CALLS = {
    "os.cpu_count",
    "os.process_cpu_count",
    "multiprocessing.cpu_count",
}

#: ``set``-producing call targets (builtin names).
_SET_CONSTRUCTORS = {"set", "frozenset"}

#: Methods of set objects that return sets.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


def _is_set_expr(node: ast.AST, set_names: Set[str], set_attrs: Set[str]) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, set_names, set_attrs)
        ):
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if is_self_attribute(node):
        return isinstance(node, ast.Attribute) and node.attr in set_attrs
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names, set_attrs) and _is_set_expr(
            node.right, set_names, set_attrs
        )
    return False


def _set_typed_self_attrs(tree: ast.Module) -> Set[str]:
    """``self.X`` attributes assigned a set anywhere in the module."""
    attrs: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        if not _is_set_expr(value, set(), set()):
            continue
        for target in targets:
            if is_self_attribute(target) and isinstance(target, ast.Attribute):
                attrs.add(target.attr)
    return attrs


@register_rule
class SetIterationRule(Rule):
    """Iterating a set (or frozenset) yields an unspecified order.

    Any ordered output derived from it — placements, shard packing,
    dirty lists — silently depends on hash seeding and insertion
    history.  Wrap the iteration in ``sorted(...)`` (every dirty-set and
    shard-planning path in this repo already does) or keep a parallel
    ordered container.
    """

    id = "det-set-iter"
    severity = "error"
    description = "iteration over an unordered set feeds ordered output"
    scopes = PLACEMENT_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        set_attrs = _set_typed_self_attrs(ctx.tree)
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(fn for fn, _cls in iter_functions(ctx.tree))
        for scope in scopes:
            set_names = self._local_set_names(scope)
            for node in walk_shallow(scope):
                yield from self._check_iteration(ctx, node, set_names, set_attrs)

    @staticmethod
    def _local_set_names(scope: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in walk_shallow(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, names, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, names, set())
            ):
                names.add(node.target.id)
        return names

    def _check_iteration(
        self,
        ctx: FileContext,
        node: ast.AST,
        set_names: Set[str],
        set_attrs: Set[str],
    ) -> Iterator[Finding]:
        iter_exprs: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            # Only the outermost generator's iterable matters here; inner
            # ones are re-visited as their own nodes by the walk? They are
            # part of this node, so check all generators.
            iter_exprs.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"list", "tuple", "enumerate", "iter", "reversed"}:
                iter_exprs.extend(node.args[:1])
        for expr in iter_exprs:
            if _is_set_expr(expr, set_names, set_attrs):
                yield self.finding(
                    ctx,
                    expr,
                    "iteration over a set has unspecified order; sort it "
                    "(sorted(...)) before it can feed ordered output",
                )


@register_rule
class CpuCountRule(Rule):
    """``os.cpu_count()`` varies per host; results must not."""

    id = "det-cpu-count"
    severity = "error"
    description = "host CPU count used inside placement-feeding code"
    scopes = PLACEMENT_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = collect_import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in _CPU_COUNT_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() depends on the host; anything derived from "
                    "it must be provably result-neutral (worker counts are "
                    "only sanctioned because every engine is worker-count "
                    "independent by construction)",
                )


@register_rule
class UnseededRandomRule(Rule):
    """Module-level RNG calls use hidden, unseeded global state."""

    id = "det-unseeded-random"
    severity = "error"
    description = "unseeded / global-state randomness in placement code"
    scopes = PLACEMENT_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = collect_import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target is None:
                continue
            if target.startswith("random."):
                if target == "random.Random" and node.args:
                    continue  # explicitly seeded instance
                if target == "random.SystemRandom":
                    # OS entropy is nondeterministic by design; flag it too.
                    pass
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() draws from hidden global RNG state; pass a "
                    "seeded random.Random / numpy Generator explicitly",
                )
            elif target.startswith("numpy.random."):
                fn = target.rsplit(".", 1)[1]
                if fn in {"default_rng", "Generator", "SeedSequence", "RandomState"}:
                    if node.args or node.keywords:
                        continue  # seeded construction
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() is unseeded (or global-state) numpy "
                    "randomness; construct np.random.default_rng(seed) and "
                    "thread it through",
                )


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads inside placement-feeding code.

    ``time.perf_counter``/``monotonic`` are *not* flagged: durations are
    telemetry, and the obs layer's guards keep them off the result path.
    """

    id = "det-wall-clock"
    severity = "error"
    description = "wall-clock read inside placement-feeding code"
    scopes = PLACEMENT_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = collect_import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() reads the wall clock; placement-feeding "
                    "code must be a pure function of its inputs",
                )


@register_rule
class IdKeyRule(Rule):
    """``id()`` values change run to run; containers keyed (or ordered)
    by them are nondeterministic across processes and executions."""

    id = "det-id-key"
    severity = "error"
    description = "id()-derived value used inside placement-feeding code"
    scopes = PLACEMENT_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
                and not node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "id() is an address, different every run; key containers "
                    "by a stable identity (cell index, name, or the object "
                    "itself) instead",
                )


# Rules are registered at import; re-export for introspection.
DETERMINISM_RULES = (
    SetIterationRule,
    CpuCountRule,
    UnseededRandomRule,
    WallClockRule,
    IdKeyRule,
)
