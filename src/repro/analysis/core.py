"""Core types of the ``repro lint`` static analyzer.

The analyzer is a small AST-based rule engine purpose-built for this
repository's contracts: every backend must stay bit-for-bit
deterministic, shared state must be touched under its declared lock,
and nothing fork-unsafe may be reachable from pool-worker closures.
Rules prove the *absence* of whole hazard classes that the dynamic
equivalence suites can only sample.

A :class:`Rule` declares an id, a severity, the path scopes it applies
to, and a ``run`` method producing :class:`Finding` objects from a
parsed :class:`FileContext`.  Findings can be silenced per line with::

    hazardous_call()  # repro: allow[rule-id] why this one is sanctioned

(multiple ids comma-separated; ``allow[*]`` silences every rule on the
line).  Suppression comments are read from real COMMENT tokens, so
string literals containing the marker are inert.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple, Type

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "register_rule",
    "all_rules",
    "parse_suppressions",
]

#: Ordered severities; ``error`` always fails the run, ``warning`` only
#: fails under ``--strict``.
SEVERITIES = ("warning", "error")

Severity = str

_ALLOW_MARKER = "repro:"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def format_human(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def format_github(self) -> str:
        kind = "error" if self.severity == "error" else "warning"
        # GitHub annotation commands; commas/newlines in properties are
        # escaped per the workflow-command grammar.
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::{kind} file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str]:
        """Baselines match per ``(path, rule)`` — line numbers churn."""
        return (self.path, self.rule)


@dataclass
class FileContext:
    """One parsed source file, shared by every rule that runs on it.

    ``rel`` is the posix-style path the findings report and the scope
    predicates match against (relative to the lint invocation's root).
    """

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, rel: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    def suppressed(self, line: int, rule: str) -> bool:
        ids = self.suppressions.get(line)
        if ids is None:
            return False
        return "*" in ids or rule in ids


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids allowed by ``# repro: allow[...]``."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string.lstrip("#").strip()
        if not text.startswith(_ALLOW_MARKER):
            continue
        directive = text[len(_ALLOW_MARKER):].strip()
        if not directive.startswith("allow["):
            continue
        closing = directive.find("]")
        if closing < 0:
            continue
        ids = {
            entry.strip()
            for entry in directive[len("allow["):closing].split(",")
            if entry.strip()
        }
        if ids:
            out.setdefault(tok.start[0], set()).update(ids)
    return out


class Rule:
    """Base class: subclasses register with :func:`register_rule`.

    ``scopes`` restricts where the rule fires: each entry is a
    ``/``-separated path fragment (``"repro/kernels"`` or a file like
    ``"repro/core/sacs.py"``) that must appear segment-aligned in the
    linted file's relative path.  An empty tuple means every file.
    """

    id: str = ""
    severity: Severity = "error"
    description: str = ""
    scopes: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if not self.scopes:
            return True
        haystack = "/" + rel.strip("/") + "/"
        for scope in self.scopes:
            needle = "/" + scope.strip("/")
            if haystack.rstrip("/").endswith(needle) or (needle + "/") in haystack:
                return True
        return False

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id}: unknown severity {cls.severity!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in families on demand."""
    # Importing the rule modules registers them; done lazily so core has
    # no import cycle with the rule files.
    from repro.analysis import (  # noqa: F401
        rules_determinism,
        rules_float,
        rules_fork,
        rules_locks,
    )

    return dict(_REGISTRY)
