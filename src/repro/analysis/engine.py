"""The lint driver: discover files, run rules, filter, report.

:func:`run_lint` is the library entry point (the CLI in
:mod:`repro.analysis.cli` is a thin argparse shim over it): it walks
the requested paths, parses every ``.py`` file once, runs each
registered rule whose scope matches, drops per-line-suppressed
findings, folds the baseline in, and returns a :class:`LintResult`
carrying everything the formatters and exit-code logic need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.core import FileContext, Finding, Rule, all_rules

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}

#: Rule id used for files that fail to parse at all.
PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    absorbed: int = 0
    #: Findings before baseline subtraction (what --update-baseline saves).
    raw_findings: List[Finding] = field(default_factory=list)

    def counts(self) -> Tuple[int, int]:
        errors = sum(1 for f in self.findings if f.severity == "error")
        return errors, len(self.findings) - errors

    def failed(self, *, strict: bool) -> bool:
        errors, warnings = self.counts()
        return errors > 0 or (strict and warnings > 0)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(out)


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def instantiate_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """All registered rules, optionally filtered to the selected ids."""
    registry = all_rules()
    if select:
        unknown = sorted(set(select) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}"
            )
        return [registry[rule_id]() for rule_id in sorted(set(select))]
    return [cls() for cls in registry.values()]


def lint_file(path: Path, rel: str, rules: Sequence[Rule]) -> List[Finding]:
    """All non-suppressed findings for one file."""
    try:
        ctx = FileContext.load(path, rel)
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return [
            Finding(
                path=rel,
                line=int(line),
                col=1,
                rule=PARSE_ERROR_RULE,
                severity="error",
                message=f"file does not parse: {exc}",
            )
        ]
    findings: Set[Finding] = set()
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        for finding in rule.run(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.add(finding)
    return sorted(findings)


def run_lint(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` and return the full result.

    ``root`` anchors the relative paths findings report (defaults to the
    current directory); ``baseline_path`` (when given and existing) is
    loaded and subtracted — the raw findings stay available on the
    result for ``--update-baseline``.
    """
    root = root or Path.cwd()
    rules = instantiate_rules(select)
    files = iter_python_files(paths)
    raw: List[Finding] = []
    for path in files:
        raw.extend(lint_file(path, _relative_to_root(path, root), rules))
    raw.sort()
    baseline: Dict[Tuple[str, str], int] = (
        load_baseline(baseline_path) if baseline_path is not None else {}
    )
    surfaced, absorbed = apply_baseline(raw, baseline)
    return LintResult(
        findings=surfaced,
        files_checked=len(files),
        absorbed=absorbed,
        raw_findings=raw,
    )
