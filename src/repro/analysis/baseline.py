"""Finding baselines: ratchet pre-existing debt without hiding new debt.

The baseline file records *counts* per ``(path, rule)`` — line numbers
churn with every edit, so a positional baseline would rot instantly.
At lint time, up to ``count`` findings of each baselined ``(path,
rule)`` pair are absorbed; anything beyond the count is new debt and
fails the run.  ``--update-baseline`` rewrites the file from the
current findings (an empty run writes an empty baseline — which is the
committed state this repo's CI asserts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that exists but cannot be used (usage error)."""


def load_baseline(path: Path) -> Dict[Tuple[str, str], int]:
    """``(path, rule) -> allowed count``; a missing file is empty."""
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"{path}: unreadable baseline: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise BaselineError(
            f"{path}: not a v{BASELINE_VERSION} lint baseline "
            '(expected {"version": 1, "entries": [...]})'
        )
    out: Dict[Tuple[str, str], int] = {}
    for entry in payload["entries"]:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("rule"), str)
            or not isinstance(entry.get("count"), int)
            or entry["count"] < 1
        ):
            raise BaselineError(f"{path}: malformed baseline entry {entry!r}")
        out[(entry["path"], entry["rule"])] = entry["count"]
    return out


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline covering exactly the given findings."""
    counts: Dict[Tuple[str, str], int] = {}
    for finding in findings:
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"path": p, "rule": r, "count": n}
        for (p, r), n in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[Tuple[str, str], int]
) -> Tuple[List[Finding], int]:
    """Split findings into (surfaced, absorbed-count).

    Findings are absorbed in source order, up to the baselined count per
    ``(path, rule)``; the remainder surfaces as new debt.
    """
    remaining = dict(baseline)
    surfaced: List[Finding] = []
    absorbed = 0
    for finding in sorted(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            surfaced.append(finding)
    return surfaced, absorbed
