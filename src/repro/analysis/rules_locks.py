"""Lock-discipline rules (``lck-*``).

A class declares its guarded state with a class-level ``_GUARDED_BY``
dict literal mapping attribute names to the ``self.<lock>`` attribute
that must be held::

    class Session:
        _GUARDED_BY = {
            "_queue": "_mutex",
            "dispatches": "_mutex",
        }

The analyzer then walks every method scope-aware: a read or write of
``self.<attr>`` (including mutation through a method call such as
``self._queue.append(...)``) counts as guarded only inside an active
``with self.<lock>:`` block of *that* function.  ``__init__`` and
``__del__`` are exempt — the object is not shared before publication
nor during finalization.  Helper methods that are documented to be
called with the lock already held declare it by naming convention
(``*_locked``) or suppress per line with the reason.

The rules fire anywhere a ``_GUARDED_BY`` map is declared, so they are
not path-scoped: declaring the map *is* opting in.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import FunctionNode, is_self_attribute
from repro.analysis.core import FileContext, Finding, Rule, register_rule

#: Methods where unguarded access is sanctioned by construction.
_EXEMPT_METHODS = {"__init__", "__del__", "__post_init__"}

#: Suffix marking a helper documented to run with the lock already held.
_LOCKED_SUFFIX = "_locked"


def _guarded_by_map(cls: ast.ClassDef) -> Optional[Dict[str, str]]:
    """The class's ``_GUARDED_BY`` dict literal, if declared."""
    for stmt in cls.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            not isinstance(target, ast.Name)
            or target.id != "_GUARDED_BY"
            or not isinstance(value, ast.Dict)
        ):
            continue
        out: Dict[str, str] = {}
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Constant)
                and isinstance(val.value, str)
            ):
                out[key.value] = val.value
        return out
    return None


def _with_lock_names(node: ast.With) -> Set[str]:
    """Lock attribute names acquired by ``with self.<lock>[, ...]:``."""
    names: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if is_self_attribute(expr) and isinstance(expr, ast.Attribute):
            names.add(expr.attr)
    return names


class _MethodWalker:
    """Scope-aware walk of one method: tracks the held-lock set.

    Nested functions reset the held set (they may run on another thread,
    after the lock was released); comprehensions keep it (they execute
    synchronously in the enclosing frame's dynamic extent).
    """

    def __init__(self, guarded: Dict[str, str]) -> None:
        self.guarded = guarded
        #: (node, attr, lock, nested) access records lacking the lock.
        self.unguarded: List[Tuple[ast.Attribute, str, str]] = []
        #: (with-node, lock) re-acquisitions of an already-held lock.
        self.reacquired: List[Tuple[ast.With, str]] = []

    def walk(self, fn: FunctionNode) -> None:
        for stmt in fn.body:
            self._visit(stmt, held=frozenset())

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable may outlive the lock scope: analyze its
            # body with nothing held.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._visit(child, held=frozenset())
            return
        if isinstance(node, ast.With):
            locks = _with_lock_names(node)
            for lock in locks & held:
                self.reacquired.append((node, lock))
            # The context expressions themselves evaluate before acquisition.
            for item in node.items:
                self._visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held)
            inner = held | locks
            for child in node.body:
                self._visit(child, inner)
            return
        if isinstance(node, ast.Attribute) and is_self_attribute(node):
            lock = self.guarded.get(node.attr)
            if lock is not None and lock not in held:
                self.unguarded.append((node, node.attr, lock))
            # Fall through: subscripts/calls hang off this node's parent,
            # and self has no children worth visiting.
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def _iter_guarded_classes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.ClassDef, Dict[str, str]]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            guarded = _guarded_by_map(node)
            if guarded:
                yield node, guarded


@register_rule
class UnguardedAccessRule(Rule):
    """Access to ``_GUARDED_BY`` state outside its declared lock."""

    id = "lck-unguarded"
    severity = "error"
    description = "guarded attribute accessed outside its declared lock"
    scopes = ()  # fires wherever a _GUARDED_BY map is declared

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for cls, guarded in _iter_guarded_classes(ctx.tree):
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in _EXEMPT_METHODS:
                    continue
                if stmt.name.endswith(_LOCKED_SUFFIX):
                    # Documented caller-holds-the-lock helper.
                    continue
                walker = _MethodWalker(guarded)
                walker.walk(stmt)
                for node, attr, lock in walker.unguarded:
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{attr} is guarded by self.{lock} "
                        f"(_GUARDED_BY) but accessed here without it; hold "
                        f"the lock, rename the helper to *{_LOCKED_SUFFIX}, "
                        "or suppress with the reason",
                    )


@register_rule
class NestedAcquireRule(Rule):
    """Re-acquiring a held ``self.<lock>`` — deadlock for plain Locks."""

    id = "lck-nested"
    severity = "error"
    description = "with self.<lock> nested inside itself (self-deadlock)"
    scopes = ()

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: FunctionNode
    ) -> Iterator[Finding]:
        walker = _MethodWalker({})
        walker.walk(fn)
        for node, lock in walker.reacquired:
            yield self.finding(
                ctx,
                node,
                f"self.{lock} is already held here; a plain threading.Lock "
                "self-deadlocks on re-acquisition",
            )


LOCK_RULES = (UnguardedAccessRule, NestedAcquireRule)
