"""Output formats for lint results: human, JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding

FORMATS = ("human", "json", "github")


def render(
    findings: Sequence[Finding],
    fmt: str,
    *,
    files_checked: int,
    absorbed: int,
) -> str:
    if fmt == "json":
        return render_json(findings, files_checked=files_checked, absorbed=absorbed)
    if fmt == "github":
        return render_github(findings)
    return render_human(findings, files_checked=files_checked, absorbed=absorbed)


def render_human(
    findings: Sequence[Finding], *, files_checked: int, absorbed: int
) -> str:
    lines = [f.format_human() for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    tail = (
        f"{files_checked} files checked: "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if absorbed:
        tail += f", {absorbed} baselined finding(s) absorbed"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], *, files_checked: int, absorbed: int
) -> str:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files_checked": files_checked,
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "absorbed_by_baseline": absorbed,
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=1)


def render_github(findings: Sequence[Finding]) -> str:
    """One workflow-command annotation per finding (PR file views)."""
    lines: List[str] = [f.format_github() for f in findings]
    return "\n".join(lines)
