"""``repro lint`` — the CLI face of the static analyzer.

Exit-code contract (locked by tests):

* ``0`` — clean (no findings above the baseline; warnings only fail
  under ``--strict``);
* ``1`` — findings;
* ``2`` — usage errors (bad path, unknown rule id, corrupt baseline),
  reported as one-line messages by the ``repro`` entry point.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import BaselineError, save_baseline
from repro.analysis.core import all_rules
from repro.analysis.engine import run_lint
from repro.analysis.report import FORMATS, render

#: Default baseline location, relative to the lint root.
DEFAULT_BASELINE = Path("lint-baseline.json")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s options to a subcommand parser."""
    parser.add_argument(
        "paths", type=Path, nargs="*", default=[Path("src")],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="human", dest="fmt",
        help="output format (human, json, github annotations)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not just errors",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULE-ID",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline file absorbing pre-existing findings "
             "(default: lint-baseline.json; missing file = empty)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (id, severity, scopes) and exit 0",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """The subcommand body; raises ValueError for usage errors (exit 2)."""
    if args.list_rules:
        print(format_rule_table())
        return 0
    try:
        result = run_lint(
            list(args.paths),
            select=args.select,
            baseline_path=args.baseline,
        )
    except FileNotFoundError as exc:
        raise ValueError(str(exc)) from None
    except BaselineError as exc:
        raise ValueError(str(exc)) from None
    if args.update_baseline:
        save_baseline(args.baseline, result.raw_findings)
        print(
            f"baseline     : wrote {len(result.raw_findings)} finding(s) "
            f"to {args.baseline}"
        )
        return 0
    output = render(
        result.findings,
        args.fmt,
        files_checked=result.files_checked,
        absorbed=result.absorbed,
    )
    if output:
        print(output)
    return 1 if result.failed(strict=args.strict) else 0


def format_rule_table() -> str:
    """The registered rules as an aligned id/severity/scope table."""
    rows: List[List[str]] = []
    for rule_id, cls in sorted(all_rules().items()):
        scopes = ", ".join(cls.scopes) if cls.scopes else "(all files)"
        rows.append([rule_id, cls.severity, scopes, cls.description])
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = [
        "  ".join(
            [row[0].ljust(widths[0]), row[1].ljust(widths[1]),
             row[2].ljust(widths[2]), row[3]]
        ).rstrip()
        for row in rows
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analyzer: determinism, "
                    "float-exactness, lock-discipline and fork-safety rules.",
    )
    add_lint_arguments(parser)
    try:
        return cmd_lint(parser.parse_args(argv))
    except ValueError as exc:
        print(f"repro lint: error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry
    import sys

    sys.exit(main())
