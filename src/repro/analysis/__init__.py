"""``repro.analysis`` — the project's static analyzer (``repro lint``).

An AST-based rule engine enforcing the repository's three standing
contracts *statically*, so whole hazard classes are proven absent
rather than sampled by tests:

* **determinism** (``det-*``) — no unordered iteration, host-dependent
  values, hidden RNG state, wall clocks or address-keyed containers in
  the code that feeds placements;
* **float exactness** (``flt-*``) — the documented left-to-right
  float64 scalar fold is the only sanctioned reduction in kernel code;
* **lock discipline** (``lck-*``) — state declared in a class's
  ``_GUARDED_BY`` map is only touched under its lock;
* **fork safety** (``frk-*``) — nothing fork-unsafe reaches pool
  workers, and shared-memory segments cannot leak.

See :mod:`repro.analysis.core` for the rule framework and per-line
``# repro: allow[rule-id]`` suppressions, :mod:`repro.analysis.engine`
for the driver, and :mod:`repro.analysis.cli` for the ``repro lint``
command (exit codes 0 clean / 1 findings / 2 usage).
"""

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    parse_suppressions,
    register_rule,
)
from repro.analysis.engine import (
    LintResult,
    iter_python_files,
    lint_file,
    run_lint,
)

__all__ = [
    "BaselineError",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "run_lint",
    "save_baseline",
]
