"""Float-exactness rules (``flt-*``).

The bit-for-bit contract means every backend must reproduce the
reference scalar fold *exactly* — same operations, same association
order, full float64 width.  These rules police the kernel code where
that fold is the only sanctioned reduction: higher-precision summation
(``math.fsum``), builtin ``sum()`` over float sequences (one refactor
away from a different association order), and dtype narrowing that
silently drops mantissa bits.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.astutil import collect_import_aliases, resolve_call_target
from repro.analysis.core import FileContext, Finding, Rule, register_rule

#: Kernel code: the backends plus the MGL algorithm stack and the SACS
#: chain solver they share.
KERNEL_SCOPES: Tuple[str, ...] = (
    "repro/kernels",
    "repro/mgl",
    "repro/core/sacs.py",
)

_NARROW_DTYPES = {"float32", "float16", "f4", "f2", "half", "single"}


def _is_int_valued(node: ast.expr) -> bool:
    """Conservative proof that an expression is integer-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int)  # bool included: sums as exact int
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"len", "int", "ord", "bool"}
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True  # bools sum as exact ints
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return True
    if isinstance(node, ast.IfExp):
        return _is_int_valued(node.body) and _is_int_valued(node.orelse)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
    ):
        return _is_int_valued(node.left) and _is_int_valued(node.right)
    return False


def _sum_argument_is_int(call: ast.Call) -> bool:
    """Is ``sum(...)``'s first argument provably an int sequence?"""
    if not call.args:
        return True  # malformed; not this rule's business
    arg = call.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return _is_int_valued(arg.elt)
    if isinstance(arg, (ast.List, ast.Tuple)):
        return all(_is_int_valued(elt) for elt in arg.elts)
    if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
        if arg.func.id == "range":
            return True
    return False


@register_rule
class FsumRule(Rule):
    """``math.fsum`` is *more* accurate than the scalar fold — and that
    is exactly the bug: it cannot be reproduced by the documented
    left-to-right float64 reduction every backend implements."""

    id = "flt-fsum"
    severity = "error"
    description = "math.fsum breaks fold-order equivalence in kernel code"
    scopes = KERNEL_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = collect_import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call_target(node.func, aliases) == "math.fsum":
                yield self.finding(
                    ctx,
                    node,
                    "math.fsum uses compensated summation; the sanctioned "
                    "reduction is the plain left-to-right float64 fold "
                    "(use an explicit accumulation loop or builtin sum "
                    "with a documented order)",
                )


@register_rule
class FloatSumRule(Rule):
    """Builtin ``sum()`` over floats in kernel code.

    ``sum()`` happens to be the left fold today, but it reads as "any
    reduction" and gets swapped for np.sum/fsum in refactors, changing
    association order.  Int sums (counts, ``sum(1 for ...)``,
    ``sum(len(x) ...)``) are exempt — integer addition is exact in any
    order.  A genuine float ``sum()`` that *is* the documented reference
    fold gets an explicit ``# repro: allow[flt-sum]`` with the reason.
    """

    id = "flt-sum"
    severity = "warning"
    description = "builtin sum() over a (possibly) float sequence in kernel code"
    scopes = KERNEL_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and not _sum_argument_is_int(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "sum() over a float sequence: the reduction order is an "
                    "exactness contract here — make the fold explicit, or "
                    "suppress with the reason if this call *is* the "
                    "documented reference fold",
                )


@register_rule
class DtypeNarrowingRule(Rule):
    """float32/float16 narrowing drops mantissa bits placements depend on."""

    id = "flt-narrow"
    severity = "error"
    description = "dtype narrowing below float64 in kernel code"
    scopes = KERNEL_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            # np.float32(...) constructor or np.float32 dtype reference.
            if isinstance(node, ast.Attribute) and node.attr in _NARROW_DTYPES:
                yield self.finding(
                    ctx,
                    node,
                    f"{node.attr} narrows below float64; every kernel "
                    "quantity that can reach a placement must stay float64",
                )
            # .astype("float32") / dtype="float32" string spellings.
            elif isinstance(node, ast.Call):
                checked: list[ast.expr] = []
                if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                    checked.extend(node.args[:1])
                checked.extend(
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                )
                for arg in checked:
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.lstrip("<>=") in _NARROW_DTYPES
                    ):
                        yield self.finding(
                            ctx,
                            arg,
                            f"dtype {arg.value!r} narrows below float64; "
                            "kernel arrays must stay float64",
                        )


FLOAT_RULES = (FsumRule, FloatSumRule, DtypeNarrowingRule)
