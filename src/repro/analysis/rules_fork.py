"""Fork-safety rules (``frk-*``).

The multiprocess backend forks persistent pool workers.  Objects that
cross the fork boundary — the worker entry function's closure, its
``args``, and any module global it reads — must not capture resources
whose kernel-side state does not survive a fork: threads (only the
forking thread exists in the child), locks (can be inherited *held* by
a thread that does not exist), sockets and open file handles (shared
descriptor offsets, double-close hazards).

Shared-memory blocks are the other side: every ``SharedMemory``
acquisition must have an owner responsible for ``close()`` (and
``unlink()`` for creators) on all exits — a local binding with no
``try/finally`` is a leak on the first exception.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.astutil import (
    collect_import_aliases,
    dotted_name,
    is_self_attribute,
    resolve_call_target,
)
from repro.analysis.core import FileContext, Finding, Rule, register_rule

FORK_SCOPES: Tuple[str, ...] = ("repro/kernels",)

#: Constructors whose instances must not cross a fork boundary.
_FORK_UNSAFE_CALLS = {
    "threading.Thread": "a thread",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Event": "an event",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "socket.create_server": "a socket",
    "open": "an open file handle",
}

#: Conventional worker-entry names checked even without a visible
#: ``Process(target=...)`` call site in the same module.
_WORKER_ENTRY_NAMES = {"_pool_worker"}


def _risky_kind(call: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    if not isinstance(call, ast.Call):
        return None
    target = resolve_call_target(call.func, aliases)
    if target is None:
        return None
    return _FORK_UNSAFE_CALLS.get(target)


def _module_level_risky_names(
    tree: ast.Module, aliases: Dict[str, str]
) -> Dict[str, str]:
    """Module globals bound to fork-unsafe resources."""
    out: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            kind = _risky_kind(stmt.value, aliases)
            if kind is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = kind
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            kind = _risky_kind(stmt.value, aliases)
            if kind is not None and isinstance(stmt.target, ast.Name):
                out[stmt.target.id] = kind
    return out


def _self_risky_attrs(tree: ast.Module, aliases: Dict[str, str]) -> Dict[str, str]:
    """``self.X`` attributes assigned fork-unsafe resources anywhere."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        kind = _risky_kind(node.value, aliases)
        if kind is None:
            continue
        for target in node.targets:
            if is_self_attribute(target) and isinstance(target, ast.Attribute):
                out[target.attr] = kind
    return out


def _process_spawn_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every ``Process(...)`` / ``ctx.Process(...)`` construction."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "Process":
            yield node


@register_rule
class ForkCaptureRule(Rule):
    """Fork-unsafe objects reachable from pool-worker task closures."""

    id = "frk-capture"
    severity = "error"
    description = "thread/lock/socket/file capture across the fork boundary"
    scopes = FORK_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = collect_import_aliases(ctx.tree)
        risky_globals = _module_level_risky_names(ctx.tree, aliases)
        risky_attrs = _self_risky_attrs(ctx.tree, aliases)
        target_names: Set[str] = set(_WORKER_ENTRY_NAMES)

        for call in _process_spawn_calls(ctx.tree):
            target = next(
                (kw.value for kw in call.keywords if kw.arg == "target"),
                call.args[0] if call.args else None,
            )
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    ctx,
                    target,
                    "a lambda Process target captures its defining frame "
                    "across the fork; use a module-level worker function "
                    "taking explicit picklable arguments",
                )
            elif isinstance(target, ast.Name):
                target_names.add(target.id)
            elif target is not None and is_self_attribute(target):
                yield self.finding(
                    ctx,
                    target,
                    "a bound method Process target drags its whole instance "
                    "(locks, pipes, pools) across the fork; use a "
                    "module-level worker function",
                )
            # Args that smuggle fork-unsafe state into the child.
            args_kw = next(
                (kw.value for kw in call.keywords if kw.arg == "args"), None
            )
            if isinstance(args_kw, (ast.Tuple, ast.List)):
                for arg in args_kw.elts:
                    yield from self._check_task_value(ctx, arg, risky_attrs)

        # Worker entry functions must not read fork-unsafe globals.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in target_names
            ):
                yield from self._check_worker_body(ctx, node, risky_globals)

    def _check_task_value(
        self, ctx: FileContext, arg: ast.expr, risky_attrs: Dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Name) and arg.id == "self":
            yield self.finding(
                ctx,
                arg,
                "passing self to a worker process captures every attribute "
                "— including pre-fork locks, pipes and threads",
            )
        elif is_self_attribute(arg) and isinstance(arg, ast.Attribute):
            kind = risky_attrs.get(arg.attr)
            if kind is not None:
                yield self.finding(
                    ctx,
                    arg,
                    f"self.{arg.attr} holds {kind} created pre-fork; it "
                    "must not be handed to a worker process",
                )

    def _check_worker_body(
        self,
        ctx: FileContext,
        fn: ast.AST,
        risky_globals: Dict[str, str],
    ) -> Iterator[Finding]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_names: Set[str] = {a.arg for a in fn.args.args}
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in risky_globals
                and node.id not in local_names
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"worker entry reads module global {node.id!r}, which "
                    f"holds {risky_globals[node.id]} created pre-fork",
                )


@register_rule
class ShmLifecycleRule(Rule):
    """``SharedMemory`` acquisitions must pair with close()/unlink().

    A segment bound to a *local* name must be released on all exits —
    the function needs a ``try/finally`` (or ``with closing(...)``)
    whose cleanup calls ``close()``/``unlink()`` on that name.  Results
    stored on ``self`` escape to an owner object whose own lifecycle
    methods are responsible (and are themselves linted wherever they
    live in scope).
    """

    id = "frk-shm-lifecycle"
    severity = "error"
    description = "SharedMemory acquired without close()/unlink() on all exits"
    scopes = FORK_SCOPES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext, fn: ast.AST) -> Iterator[Finding]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        cleanup_names = self._finally_cleanup_names(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "SharedMemory":
                continue
            binding = self._binding_for(fn, node)
            if binding == "self":
                continue  # escapes to the owner object's lifecycle
            if binding is not None and binding in cleanup_names:
                continue
            if binding is None:
                yield self.finding(
                    ctx,
                    node,
                    "SharedMemory(...) result is dropped; the segment (and "
                    "its file-descriptor mapping) leaks — bind it and "
                    "close()/unlink() it in a finally block",
                )
            else:
                yield self.finding(
                    ctx,
                    node,
                    f"SharedMemory(...) bound to local {binding!r} has no "
                    "try/finally releasing it; an exception between here "
                    "and the close() leaks the segment",
                )

    @staticmethod
    def _binding_for(fn: ast.AST, call: ast.Call) -> Optional[str]:
        """How the call's result is bound: local name, 'self', or None."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is call:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    return target.id
                if is_self_attribute(target):
                    return "self"
            elif isinstance(node, ast.AnnAssign) and node.value is call:
                if isinstance(node.target, ast.Name):
                    return node.target.id
                if is_self_attribute(node.target):
                    return "self"
            elif isinstance(node, ast.withitem) and node.context_expr is call:
                # ``with closing(SharedMemory(...))`` style is handled by
                # the with-statement's own exit; treat as cleaned.
                if node.optional_vars is None or isinstance(
                    node.optional_vars, ast.Name
                ):
                    return "self"
        return None

    @staticmethod
    def _finally_cleanup_names(fn: ast.AST) -> Set[str]:
        """Local names close()d or unlink()ed inside a finally block."""
        names: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in {"close", "unlink"}
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        names.add(sub.func.value.id)
        return names


FORK_RULES = (ForkCaptureRule, ShmLifecycleRule)
