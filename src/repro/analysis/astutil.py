"""Shared AST helpers for the lint rules.

Small, deliberately conservative building blocks: import-alias
resolution (so ``import numpy as np`` and ``from math import fsum``
both resolve to their canonical dotted names), dotted-attribute
flattening, and per-function walks that do not descend into nested
``def``/``lambda`` bodies (each function is analyzed in its own right).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "FunctionNode",
    "collect_import_aliases",
    "dotted_name",
    "resolve_call_target",
    "iter_functions",
    "walk_shallow",
    "is_self_attribute",
]


def collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted name for every top-level import.

    ``import numpy as np`` maps ``np -> numpy``; ``from math import
    fsum as f`` maps ``f -> math.fsum``.  Only module-level imports are
    collected — function-local imports are resolved by the same map
    because shadowing an import with a different module inside one
    function is not a pattern this codebase uses.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_target(
    func: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted name a call resolves to, alias-expanded.

    ``np.random.default_rng`` with ``np -> numpy`` becomes
    ``numpy.random.default_rng``; a bare ``fsum`` imported from math
    becomes ``math.fsum``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{tail}" if tail else expanded


def iter_functions(tree: ast.Module) -> Iterator[Tuple[FunctionNode, Optional[ast.ClassDef]]]:
    """Every function definition with its directly enclosing class."""

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator[
        Tuple[FunctionNode, Optional[ast.ClassDef]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, cls)

    return visit(tree, None)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies.

    The roots' own body is walked; any ``def``/``lambda`` encountered
    inside is yielded but not entered — nested functions run on their
    own schedule and must be analyzed with their own context.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def is_self_attribute(node: ast.AST, attr: Optional[str] = None) -> bool:
    """``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )
