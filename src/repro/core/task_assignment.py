"""CPU / FPGA task assignment (paper Sec. 3.1.1, evaluated in Fig. 10).

The MGL flow has five steps (Fig. 3(e)).  FLEX assigns

* step (a) *input & pre-move* — CPU (inherently serial),
* step (b) *process ordering* — CPU (dynamic scheduling),
* step (c) *define localRegion* — CPU (only ~3 % of runtime, and its
  density output feeds step (b); keeping it on the CPU avoids a
  round-trip),
* step (d) *FOP* — FPGA (the irregular, compute-dominant kernel),
* step (e) *insert & update* — CPU (offloading it would require
  streaming every updated cell position back to the host).

:class:`TaskAssignment` turns a recorded
:class:`~repro.perf.counters.LegalizationTrace` into per-target work
items for the host and the device under a chosen partition, including the
data that must cross the link — the quantities the co-execution timeline
needs to model Fig. 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.perf.counters import LegalizationTrace, TargetCellWork


class TaskPartition(enum.Enum):
    """Which steps execute on the FPGA."""

    ALL_CPU = "all-cpu"
    """Everything on the CPU — the software MGL baseline."""

    FOP_ON_FPGA = "fop-on-fpga"
    """Step (d) on the FPGA, steps (a)(b)(c)(e) on the CPU — FLEX's choice."""

    FOP_AND_UPDATE_ON_FPGA = "fop+update-on-fpga"
    """Steps (d) and (e) on the FPGA — the alternative compared in Fig. 10."""


#: Estimated words returned by the FPGA per moved cell when insert &
#: update runs on the device (position writes that must reach the host).
UPDATE_WORDS_PER_MOVED_CELL = 2
#: Result words per target when only FOP runs on the device (winning row,
#: x position, cost and the per-cell shift summary header).
FOP_RESULT_WORDS = 6


@dataclass(frozen=True)
class TargetAssignment:
    """Host/device split of the work for one target cell."""

    cell_index: int
    cpu_steps: Tuple[str, ...]
    fpga_steps: Tuple[str, ...]
    host_to_fpga_words: int
    fpga_to_host_words: int
    preloadable: bool


@dataclass
class AssignmentSummary:
    """Aggregate link traffic and step placement for a whole run."""

    partition: TaskPartition
    targets: List[TargetAssignment]

    @property
    def total_host_to_fpga_words(self) -> int:
        return sum(t.host_to_fpga_words for t in self.targets)

    @property
    def total_fpga_to_host_words(self) -> int:
        return sum(t.fpga_to_host_words for t in self.targets)

    @property
    def total_transfer_words(self) -> int:
        return self.total_host_to_fpga_words + self.total_fpga_to_host_words

    def cpu_step_set(self) -> Tuple[str, ...]:
        return self.targets[0].cpu_steps if self.targets else ()


class TaskAssignment:
    """Maps a legalization trace onto a CPU/FPGA partition."""

    def __init__(self, partition: TaskPartition = TaskPartition.FOP_ON_FPGA) -> None:
        self.partition = partition

    # ------------------------------------------------------------------
    def steps_on_cpu(self) -> Tuple[str, ...]:
        """Step labels executed by the host under this partition."""
        if self.partition is TaskPartition.ALL_CPU:
            return ("premove", "ordering", "region", "fop", "update")
        if self.partition is TaskPartition.FOP_ON_FPGA:
            return ("premove", "ordering", "region", "update")
        return ("premove", "ordering", "region")

    def steps_on_fpga(self) -> Tuple[str, ...]:
        """Step labels executed by the device under this partition."""
        if self.partition is TaskPartition.ALL_CPU:
            return ()
        if self.partition is TaskPartition.FOP_ON_FPGA:
            return ("fop",)
        return ("fop", "update")

    # ------------------------------------------------------------------
    def assign_target(self, work: TargetCellWork, *, preloadable: bool) -> TargetAssignment:
        """Host/device split for one target cell."""
        cpu_steps = self.steps_on_cpu()
        fpga_steps = self.steps_on_fpga()
        if self.partition is TaskPartition.ALL_CPU:
            to_fpga = 0
            to_host = 0
        else:
            to_fpga = work.region_transfer_words
            if self.partition is TaskPartition.FOP_ON_FPGA:
                to_host = FOP_RESULT_WORDS
            else:
                # The device owns the committed positions: every moved cell's
                # final location must be returned to keep the host layout and
                # the ordering/density bookkeeping coherent.
                to_host = FOP_RESULT_WORDS + UPDATE_WORDS_PER_MOVED_CELL * (
                    work.update_moved_cells + 1
                )
        return TargetAssignment(
            cell_index=work.cell_index,
            cpu_steps=cpu_steps,
            fpga_steps=fpga_steps,
            host_to_fpga_words=to_fpga,
            fpga_to_host_words=to_host,
            preloadable=preloadable,
        )

    def assign_trace(
        self, trace: LegalizationTrace, *, preload_flags: Iterable[bool] = ()
    ) -> AssignmentSummary:
        """Host/device split for every target of a run.

        ``preload_flags`` optionally marks, per target, whether its region
        could be preloaded while the previous target was processed (from
        the sliding-window ordering stats); missing entries default to
        preloadable, matching the paper's observation that the visible
        communication cost reduces to the first region's transfer.
        """
        flags = list(preload_flags)
        targets = []
        for i, work in enumerate(trace.targets):
            preloadable = flags[i] if i < len(flags) else True
            targets.append(self.assign_target(work, preloadable=preloadable))
        return AssignmentSummary(partition=self.partition, targets=targets)
