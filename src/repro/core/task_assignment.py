"""CPU / FPGA task assignment (paper Sec. 3.1.1, evaluated in Fig. 10).

The MGL flow has five steps (Fig. 3(e)).  FLEX assigns

* step (a) *input & pre-move* — CPU (inherently serial),
* step (b) *process ordering* — CPU (dynamic scheduling),
* step (c) *define localRegion* — CPU (only ~3 % of runtime, and its
  density output feeds step (b); keeping it on the CPU avoids a
  round-trip),
* step (d) *FOP* — FPGA (the irregular, compute-dominant kernel),
* step (e) *insert & update* — CPU (offloading it would require
  streaming every updated cell position back to the host).

:class:`TaskAssignment` turns a recorded
:class:`~repro.perf.counters.LegalizationTrace` into per-target work
items for the host and the device under a chosen partition, including the
data that must cross the link — the quantities the co-execution timeline
needs to model Fig. 10.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.perf.counters import LegalizationTrace, TargetCellWork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.cell import Cell
    from repro.geometry.layout import Layout


class TaskPartition(enum.Enum):
    """Which steps execute on the FPGA."""

    ALL_CPU = "all-cpu"
    """Everything on the CPU — the software MGL baseline."""

    FOP_ON_FPGA = "fop-on-fpga"
    """Step (d) on the FPGA, steps (a)(b)(c)(e) on the CPU — FLEX's choice."""

    FOP_AND_UPDATE_ON_FPGA = "fop+update-on-fpga"
    """Steps (d) and (e) on the FPGA — the alternative compared in Fig. 10."""


#: Estimated words returned by the FPGA per moved cell when insert &
#: update runs on the device (position writes that must reach the host).
UPDATE_WORDS_PER_MOVED_CELL = 2
#: Result words per target when only FOP runs on the device (winning row,
#: x position, cost and the per-cell shift summary header).
FOP_RESULT_WORDS = 6


@dataclass(frozen=True)
class TargetAssignment:
    """Host/device split of the work for one target cell."""

    cell_index: int
    cpu_steps: Tuple[str, ...]
    fpga_steps: Tuple[str, ...]
    host_to_fpga_words: int
    fpga_to_host_words: int
    preloadable: bool


@dataclass
class AssignmentSummary:
    """Aggregate link traffic and step placement for a whole run."""

    partition: TaskPartition
    targets: List[TargetAssignment]

    @property
    def total_host_to_fpga_words(self) -> int:
        return sum(t.host_to_fpga_words for t in self.targets)

    @property
    def total_fpga_to_host_words(self) -> int:
        return sum(t.fpga_to_host_words for t in self.targets)

    @property
    def total_transfer_words(self) -> int:
        return self.total_host_to_fpga_words + self.total_fpga_to_host_words

    def cpu_step_set(self) -> Tuple[str, ...]:
        return self.targets[0].cpu_steps if self.targets else ()


class TaskAssignment:
    """Maps a legalization trace onto a CPU/FPGA partition."""

    def __init__(self, partition: TaskPartition = TaskPartition.FOP_ON_FPGA) -> None:
        self.partition = partition

    # ------------------------------------------------------------------
    def steps_on_cpu(self) -> Tuple[str, ...]:
        """Step labels executed by the host under this partition."""
        if self.partition is TaskPartition.ALL_CPU:
            return ("premove", "ordering", "region", "fop", "update")
        if self.partition is TaskPartition.FOP_ON_FPGA:
            return ("premove", "ordering", "region", "update")
        return ("premove", "ordering", "region")

    def steps_on_fpga(self) -> Tuple[str, ...]:
        """Step labels executed by the device under this partition."""
        if self.partition is TaskPartition.ALL_CPU:
            return ()
        if self.partition is TaskPartition.FOP_ON_FPGA:
            return ("fop",)
        return ("fop", "update")

    # ------------------------------------------------------------------
    def assign_target(self, work: TargetCellWork, *, preloadable: bool) -> TargetAssignment:
        """Host/device split for one target cell."""
        cpu_steps = self.steps_on_cpu()
        fpga_steps = self.steps_on_fpga()
        if self.partition is TaskPartition.ALL_CPU:
            to_fpga = 0
            to_host = 0
        else:
            to_fpga = work.region_transfer_words
            if self.partition is TaskPartition.FOP_ON_FPGA:
                to_host = FOP_RESULT_WORDS
            else:
                # The device owns the committed positions: every moved cell's
                # final location must be returned to keep the host layout and
                # the ordering/density bookkeeping coherent.
                to_host = FOP_RESULT_WORDS + UPDATE_WORDS_PER_MOVED_CELL * (
                    work.update_moved_cells + 1
                )
        return TargetAssignment(
            cell_index=work.cell_index,
            cpu_steps=cpu_steps,
            fpga_steps=fpga_steps,
            host_to_fpga_words=to_fpga,
            fpga_to_host_words=to_host,
            preloadable=preloadable,
        )

    def assign_trace(
        self, trace: LegalizationTrace, *, preload_flags: Iterable[bool] = ()
    ) -> AssignmentSummary:
        """Host/device split for every target of a run.

        ``preload_flags`` optionally marks, per target, whether its region
        could be preloaded while the previous target was processed (from
        the sliding-window ordering stats); missing entries default to
        preloadable, matching the paper's observation that the visible
        communication cost reduces to the first region's transfer.
        """
        flags = list(preload_flags)
        targets = []
        for i, work in enumerate(trace.targets):
            preloadable = flags[i] if i < len(flags) else True
            targets.append(self.assign_target(work, preloadable=preloadable))
        return AssignmentSummary(partition=self.partition, targets=targets)


# ======================================================================
# Shard partitioning for the multiprocess host backend
# ======================================================================
#
# The paper's parallelism argument (and the CPU baselines of Sec. 5.4) is
# that legalization parallelises across *independent local regions*: two
# target cells whose search windows never touch cannot influence each
# other, because every read (region extraction, density) and every write
# (cell shifts, the committed target position) of a target stays inside
# its window.  ``plan_shards`` turns that observation into a partition:
# initial search windows are grouped into connected components by
# rectangle overlap, and components are packed onto worker processes.
# Targets in different workers provably do not interact as long as each
# stays inside its initial window; window *expansions* (retries) are
# detected after the fact against the recorded ``final_window`` rects and
# invalidate the packing only when they cross into another worker.

#: Safety margin (sites/rows) added to every window-overlap test, large
#: enough to absorb the geometric epsilons used by region extraction.
WINDOW_OVERLAP_MARGIN = 1e-6


@dataclass(frozen=True)
class TargetWindowRect:
    """The influence rectangle of one target cell (its search window)."""

    cell_index: int
    x_lo: float
    x_hi: float
    row_lo: int
    row_hi: int

    def overlaps(self, other: "TargetWindowRect", margin: float = WINDOW_OVERLAP_MARGIN) -> bool:
        """True when the two rectangles intersect (with a safety margin)."""
        return (
            self.x_lo < other.x_hi + margin
            and other.x_lo < self.x_hi + margin
            and self.row_lo < other.row_hi + margin
            and other.row_lo < self.row_hi + margin
        )

    @property
    def area(self) -> float:
        return max(0.0, self.x_hi - self.x_lo) * max(0, self.row_hi - self.row_lo)


@dataclass
class ShardPlan:
    """A conflict-free partition of a run's target cells onto workers.

    ``shards[w]`` lists the cell indices assigned to worker ``w`` in the
    *global* processing order, so each worker is exactly the sequential
    legalizer restricted to its subsequence.  ``components`` are the
    window-overlap connected components (the atomic units of the
    packing); all targets of a component land on the same worker.
    """

    n_workers: int
    shards: List[List[int]] = field(default_factory=list)
    components: List[List[int]] = field(default_factory=list)
    windows: Dict[int, TargetWindowRect] = field(default_factory=dict)
    worker_of: Dict[int, int] = field(default_factory=dict)
    n_seed_clusters: int = 0
    """Number of dirty-cluster seeds the packing honoured (0 when the
    plan was built from window overlaps alone)."""

    def stats(self) -> Dict[str, object]:
        """Summary statistics recorded into ``LegalizationTrace.shard_stats``."""
        sizes = [len(s) for s in self.shards]
        return {
            "n_components": len(self.components),
            "largest_component": max((len(c) for c in self.components), default=0),
            "shard_targets": sizes,
            "n_nonempty_shards": sum(1 for s in sizes if s),
            "n_seed_clusters": self.n_seed_clusters,
        }

    def parallelism(self) -> int:
        """Number of workers that actually received targets."""
        return sum(1 for s in self.shards if s)

    def shard_descriptors(self) -> List["array.array"]:
        """The shards as compact target-index slices for pipe transport.

        With the shared-memory sync carrying all cell state, a shard
        descriptor is nothing but the target indices — packed into
        ``array('q')`` vectors, which pickle as raw int64 buffers
        (several times smaller and faster than lists of python ints).
        Order inside each descriptor is the global processing order,
        identical to :attr:`shards`.
        """
        import array

        return [array.array("q", shard) for shard in self.shards]


def target_window_rect(
    layout: "Layout",
    target: "Cell",
    *,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
    slack: Optional[float] = None,
    growth: Optional[float] = None,
    max_growths: Optional[int] = None,
    use_planner: bool = True,
) -> TargetWindowRect:
    """The planned initial search window of a (pre-moved) target.

    Delegates to :func:`repro.mgl.window_planner.plan_initial_window`
    (the occupancy-aware planner over the geometric base window) so the
    shard partition reasons about the *same floats* the legalizer will
    open — the escape validation compares planned and recorded windows
    for exact equality, so a second copy of the formula would be a trap.
    The plan is computed against the layout's *current* occupancy; the
    sharder calls it before any target commits, and per-worker replans
    that drift from it are caught by :func:`find_escaped_conflicts`
    exactly like retry expansions.  (Imported lazily to keep core free
    of a module-level mgl dependency.)
    """
    from repro.mgl.window_planner import plan_initial_window

    window, _growths = plan_initial_window(
        layout,
        target,
        width_factor=width_factor,
        min_width=min_width,
        extra_rows=extra_rows,
        slack=slack,
        growth=growth,
        max_growths=max_growths,
        use_planner=use_planner,
    )
    return TargetWindowRect(
        cell_index=target.index,
        x_lo=window.x_lo,
        x_hi=window.x_hi,
        row_lo=window.row_lo,
        row_hi=window.row_hi,
    )


def _connected_components(windows: Sequence[TargetWindowRect]) -> List[List[int]]:
    """Union-find over window-rectangle overlaps.

    Returns components as lists of *positions* into ``windows`` (which is
    ordered by processing order, so components inherit that order).  Uses
    an x-sweep so the common sparse case stays near ``O(n log n)``.
    """
    n = len(windows)
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    order = sorted(range(n), key=lambda i: (windows[i].x_lo, windows[i].cell_index))
    active: List[int] = []
    for i in order:
        w = windows[i]
        still_active: List[int] = []
        for j in active:
            if windows[j].x_hi + WINDOW_OVERLAP_MARGIN <= w.x_lo:
                continue
            still_active.append(j)
            if w.overlaps(windows[j]):
                union(i, j)
        still_active.append(i)
        active = still_active

    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    # Deterministic order: by first (processing-order) member.
    return [groups[root] for root in sorted(groups, key=lambda r: min(groups[r]))]


def cluster_targets(
    layout: "Layout",
    targets: Sequence["Cell"],
    *,
    x_radius: float = 12.0,
    row_radius: int = 3,
) -> List[List[int]]:
    """Group targets into spatial dirty clusters (ECO shard seeds).

    An ECO dirty set is not spread uniformly over the chip: it clumps
    around the footprints the delta batch touched (a moved macro's old
    and new location, a resized cell's row, an insertion's
    neighbourhood).  This groups the targets by rectangle proximity —
    two targets belong to the same cluster when their rectangles,
    expanded by ``x_radius`` sites and ``row_radius`` rows, overlap
    (transitively) — using the same deterministic union-find sweep as
    the window-overlap components.

    Returns clusters as lists of cell indices, ordered by each cluster's
    first member in ``targets`` order.  The result is a *seeding hint*
    for :func:`plan_shards`: it never overrides the window-overlap
    safety invariant, it only keeps each spatial cluster on one worker.
    """
    rects = [
        TargetWindowRect(
            cell_index=t.index,
            x_lo=t.x - x_radius,
            x_hi=t.x + t.width + x_radius,
            row_lo=int(math.floor(t.y)) - row_radius,
            row_hi=int(math.ceil(t.y + t.height)) + row_radius,
        )
        for t in targets
    ]
    return [
        [rects[pos].cell_index for pos in component]
        for component in _connected_components(rects)
    ]


def _merge_components_by_seeds(
    components: List[List[int]],
    windows: Sequence[TargetWindowRect],
    cluster_seeds: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Coarsen window components so each seed cluster stays together.

    Components already guarantee cross-worker window disjointness;
    merging two components can only *coarsen* the partition, so the
    merged grouping keeps that guarantee (and the escape validation
    unchanged).  Seeds referencing unknown cell indices are ignored.
    """
    cluster_of: Dict[int, int] = {}
    for cid, members in enumerate(cluster_seeds):
        for cell_index in members:
            cluster_of[cell_index] = cid

    parent = list(range(len(components)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    first_component_of: Dict[int, int] = {}
    for comp_id, component in enumerate(components):
        for pos in component:
            cid = cluster_of.get(windows[pos].cell_index)
            if cid is None:
                continue
            if cid in first_component_of:
                union(comp_id, first_component_of[cid])
            else:
                first_component_of[cid] = comp_id

    groups: Dict[int, List[int]] = {}
    for comp_id, component in enumerate(components):
        groups.setdefault(find(comp_id), []).extend(component)
    merged = [sorted(group) for group in groups.values()]
    merged.sort(key=min)  # deterministic: by first processing-order member
    return merged


def plan_shards(
    layout: "Layout",
    ordered_targets: Sequence["Cell"],
    n_workers: int,
    *,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
    slack: Optional[float] = None,
    growth: Optional[float] = None,
    max_growths: Optional[int] = None,
    use_planner: bool = True,
    cluster_seeds: Optional[Sequence[Sequence[int]]] = None,
) -> ShardPlan:
    """Partition an ordered target sequence into conflict-free shards.

    Components are packed greedily (largest estimated work first) onto
    the least-loaded worker; the work estimate is the summed window area,
    which tracks the FOP cost of a region far better than a plain target
    count.  Every target lands on exactly one worker and keeps its global
    processing rank, so each shard replayed sequentially is exactly the
    reference algorithm restricted to that shard.

    ``cluster_seeds`` (the ECO mode, see :func:`cluster_targets`)
    additionally merges the window components so every seed cluster's
    targets land on one worker: a dirty cluster's retries expand into
    its own spatial neighbourhood, so keeping the neighbourhood on one
    worker turns would-be cross-worker escapes (which force a sequential
    re-run) into harmless same-worker overlaps.  Merging only coarsens
    the window-disjoint partition, so results stay bit-for-bit identical
    to the sequential reference at any worker count.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    windows = [
        target_window_rect(
            layout,
            target,
            width_factor=width_factor,
            min_width=min_width,
            extra_rows=extra_rows,
            slack=slack,
            growth=growth,
            max_growths=max_growths,
            use_planner=use_planner,
        )
        for target in ordered_targets
    ]
    components = _connected_components(windows)
    if cluster_seeds:
        components = _merge_components_by_seeds(components, windows, cluster_seeds)

    plan = ShardPlan(n_workers=n_workers, shards=[[] for _ in range(n_workers)])
    plan.n_seed_clusters = len(cluster_seeds) if cluster_seeds else 0
    plan.windows = {w.cell_index: w for w in windows}
    plan.components = [
        [windows[pos].cell_index for pos in component] for component in components
    ]

    weights = [
        (sum(windows[pos].area for pos in component), comp_id)
        for comp_id, component in enumerate(components)
    ]
    # Largest first; ties broken by component id (= first-member order).
    loads = [0.0] * n_workers
    shard_positions: List[List[int]] = [[] for _ in range(n_workers)]
    for weight, comp_id in sorted(weights, key=lambda t: (-t[0], t[1])):
        worker = min(range(n_workers), key=lambda w: (loads[w], w))
        loads[worker] += weight
        shard_positions[worker].extend(components[comp_id])
    for worker, positions in enumerate(shard_positions):
        positions.sort()  # restore global processing order inside the shard
        plan.shards[worker] = [windows[pos].cell_index for pos in positions]
        for pos in positions:
            plan.worker_of[windows[pos].cell_index] = worker
    return plan


def find_escaped_conflicts(
    plan: ShardPlan,
    final_windows: Dict[int, TargetWindowRect],
) -> List[int]:
    """Validate a parallel run against the windows it actually used.

    ``final_windows`` maps each processed target to the last (largest)
    window it opened — equal to its planned initial window unless the
    target retried with an expanded window or fell back to the whole-chip
    search.  Returns the targets whose final window overlaps the final
    window of any target owned by a *different* worker; an empty list
    proves the parallel execution is equivalent to the sequential one
    (within a worker the shard is processed in global order, so
    same-worker overlaps are harmless).
    """
    expanded = [
        t
        for t, rect in final_windows.items()
        if rect != plan.windows.get(t)
    ]
    if not expanded:
        return []
    conflicts: List[int] = []
    for t in expanded:
        rect = final_windows[t]
        owner = plan.worker_of.get(t)
        for other, other_rect in final_windows.items():
            if other == t or plan.worker_of.get(other) == owner:
                continue
            if rect.overlaps(other_rect):
                conflicts.append(t)
                break
    return sorted(conflicts)
