"""The end-to-end FLEX accelerator.

:class:`FlexLegalizer` combines the two halves of the reproduction:

* **the algorithm side** — the MGL quality machinery configured with the
  FLEX contributions: Sort-Ahead Cell Shifting, the reorganised
  fwdtraverse/bwdtraverse curve pipeline and the sliding-window
  processing ordering.  This half actually legalizes the layout and
  produces the quality numbers (AveDis) reported in Table 1;
* **the runtime side** — the cycle-approximate FPGA model, the CPU cost
  model and the CPU/FPGA co-execution timeline, which together turn the
  recorded work counters into the modeled accelerator runtime (and its
  breakdown: FPGA busy time, host time, visible transfer time).

The returned :class:`FlexRunResult` carries both halves plus the
resource estimate of the configured accelerator instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import FlexConfig
from repro.core.ordering import SlidingWindowOrdering
from repro.core.pipeline import PipelineOrganization
from repro.core.sacs import SortAheadShifter
from repro.core.task_assignment import TaskAssignment, TaskPartition
from repro.geometry.layout import Layout
from repro.legality.metrics import PlacementMetrics
from repro.mgl.fop import FOPConfig
from repro.mgl.legalizer import LegalizationResult, MGLLegalizer, size_descending_order
from repro.mgl.shifting import OriginalShifter
from repro.perf.cost_model import CpuCostModel, CpuCostParameters
from repro.perf.counters import LegalizationTrace
from repro.perf.timeline import CoExecutionTimeline, TimelineEntry, TimelineResult
from repro.fpga.link import HostLink
from repro.fpga.pipeline_sim import FpgaEstimate, FpgaPipelineModel
from repro.fpga.resources import ResourceEstimator, ResourceReport


@dataclass
class FlexRunResult:
    """Quality and modeled-runtime outcome of one FLEX run."""

    legalization: LegalizationResult
    config: FlexConfig
    fpga: FpgaEstimate
    timeline: TimelineResult
    cpu_breakdown: Dict[str, float]
    resources: ResourceReport

    @property
    def average_displacement(self) -> float:
        """The S_am quality metric of the run (Eq. 2)."""
        return self.legalization.average_displacement

    @property
    def modeled_runtime_seconds(self) -> float:
        """End-to-end modeled runtime of the accelerator."""
        return self.timeline.total

    @property
    def trace(self) -> LegalizationTrace:
        return self.legalization.trace

    def summary(self) -> str:
        return (
            f"{self.legalization.layout.name}: AveDis={self.average_displacement:.3f}, "
            f"modeled time={self.modeled_runtime_seconds * 1e3:.2f} ms "
            f"(FPGA busy {self.timeline.fpga_busy * 1e3:.2f} ms, "
            f"CPU busy {self.timeline.cpu_busy * 1e3:.2f} ms, "
            f"visible transfer {self.timeline.visible_transfer * 1e3:.3f} ms)"
        )


class FlexLegalizer:
    """FPGA-CPU accelerated mixed-cell-height legalizer.

    Parameters
    ----------
    config:
        Accelerator configuration (PE count, pipeline organisation, SACS
        options, task partition, ordering).
    cpu_params:
        Host CPU cost constants shared with the baseline models so that
        speedups are computed on a common scale.
    metrics:
        Quality metric converter (defaults to the same unit conventions
        as the MGL baseline).
    """

    def __init__(
        self,
        config: Optional[FlexConfig] = None,
        *,
        cpu_params: Optional[CpuCostParameters] = None,
        metrics: Optional[PlacementMetrics] = None,
    ) -> None:
        self.config = config or FlexConfig()
        self.config.validate()
        self.cpu_model = CpuCostModel(cpu_params)
        self.metrics = metrics
        self.link = HostLink(bandwidth_gbps=self.config.pcie_gbps)
        # Result records stream back through a pre-posted buffer, so their
        # per-target latency is far below a full descriptor round-trip.
        self.result_link = HostLink(bandwidth_gbps=self.config.pcie_gbps, latency_us=0.4)
        self.resource_estimator = ResourceEstimator()

    # ------------------------------------------------------------------
    def _build_algorithm(self) -> MGLLegalizer:
        """Instantiate the MGL machinery with the FLEX algorithm choices."""
        shifter = (
            SortAheadShifter(backend=self.config.kernel_backend)
            if self.config.use_sacs
            else OriginalShifter()
        )
        fop_config = FOPConfig(
            shifter=shifter,
            use_fwd_bwd_pipeline=self.config.pipeline is PipelineOrganization.MULTI_GRANULARITY,
            backend=self.config.kernel_backend,
        )
        ordering = (
            SlidingWindowOrdering(window_size=self.config.ordering_window_size)
            if self.config.sliding_window_ordering
            else size_descending_order
        )
        return MGLLegalizer(
            fop_config,
            ordering=ordering,
            metrics=self.metrics,
            algorithm_name="flex",
        )

    # ------------------------------------------------------------------
    def legalize(self, layout: Layout) -> FlexRunResult:
        """Legalize a layout and model the accelerator's runtime."""
        algorithm = self._build_algorithm()
        legalization = algorithm.legalize(layout)
        return self.model_run(legalization)

    # ------------------------------------------------------------------
    def model_run(self, legalization: LegalizationResult) -> FlexRunResult:
        """Model the accelerator runtime of an already-executed run."""
        trace = legalization.trace
        fpga_model = FpgaPipelineModel(
            self.config, trace_used_sacs=trace.shift_algorithm == "sacs"
        )
        fpga = fpga_model.estimate(trace)
        timeline = self.build_timeline(trace, fpga)
        cpu_breakdown = self.cpu_model.breakdown(trace).as_dict()
        resources = self.resource_estimator.estimate(self.config)
        return FlexRunResult(
            legalization=legalization,
            config=self.config,
            fpga=fpga,
            timeline=timeline,
            cpu_breakdown=cpu_breakdown,
            resources=resources,
        )

    # ------------------------------------------------------------------
    def build_timeline(self, trace: LegalizationTrace, fpga: FpgaEstimate) -> TimelineResult:
        """Replay the CPU/FPGA co-execution schedule for a recorded run."""
        assignment = TaskAssignment(self.config.task_partition)
        summary = assignment.assign_trace(trace)
        host_times = self.cpu_model.per_target_host_times(trace)
        breakdown = self.cpu_model.breakdown(trace)
        per_target_fpga = fpga.per_target_seconds()

        entries: List[TimelineEntry] = []
        on_fpga = assignment.steps_on_fpga()
        for work, target_assignment in zip(trace.targets, summary.targets):
            host = host_times[work.cell_index]
            if not on_fpga:
                # Pure-CPU partition: everything is host work, no transfers.
                entries.append(
                    TimelineEntry(
                        cell_index=work.cell_index,
                        cpu_prep=host["region"] + host["fop"],
                        transfer_in=0.0,
                        fpga_compute=0.0,
                        transfer_out=0.0,
                        cpu_post=host["update"],
                        preloadable=True,
                    )
                )
                continue
            fpga_seconds = per_target_fpga.get(work.cell_index, 0.0)
            cpu_post = host["update"]
            if "update" in on_fpga:
                # Insert & update executes on the card: the device spends the
                # equivalent update time, and the host only ingests the
                # returned positions (folded into the transfer).
                fpga_seconds += host["update"] * 0.5
                cpu_post = host["update"] * 0.2
            entries.append(
                TimelineEntry(
                    cell_index=work.cell_index,
                    cpu_prep=host["region"],
                    transfer_in=self.link.transfer_seconds(target_assignment.host_to_fpga_words),
                    fpga_compute=fpga_seconds,
                    transfer_out=self.result_link.transfer_seconds(
                        target_assignment.fpga_to_host_words
                    ),
                    cpu_post=cpu_post,
                    preloadable=target_assignment.preloadable and self.config.ping_pong_preload,
                )
            )
        timeline = CoExecutionTimeline(
            serial_front_seconds=breakdown.premove + breakdown.ordering,
            prep_depends_on_results=(
                self.config.task_partition is TaskPartition.FOP_AND_UPDATE_ON_FPGA
            ),
        )
        return timeline.run(entries)
