"""Multi-granularity pipeline organisation of the FOP datapath (Sec. 3.2).

The original FOP consists of six operations executed strictly one after
another, each writing its complete intermediate result to RAM before the
next starts (the "Normal Pipeline").  FLEX reorganises the last four
operations into two streaming traversals:

* ``fwdtraverse`` = forward-merge + ``sum slopesR`` + ``calculate vR``;
* ``bwdtraverse`` = backward-merge + ``sum slopesL`` + ``calculate vL``
  and ``v``;

with **fine-grained pipelining** (stream I/O, element-at-a-time handoff)
inside each traversal and between SACS, ``sort bp`` and ``fwdtraverse``,
and **coarse-grained pipelining** between the two traversals (the
backward traversal can only start once the forward traversal has seen all
breakpoints).  This module describes the organisation; the cycle-level
consequences are computed by :mod:`repro.fpga.pipeline_sim`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class PipelineOrganization(enum.Enum):
    """FOP datapath organisation evaluated in Fig. 8."""

    NORMAL = "normal"
    """Every operation waits for its predecessor and round-trips its
    intermediate results through RAM."""

    SACS_ONLY = "sacs"
    """SACS replaces the multi-pass cell shifting, but the remaining
    operations still execute sequentially."""

    MULTI_GRANULARITY = "multi-granularity"
    """SACS + stream I/O + the fwdtraverse/bwdtraverse reorganisation."""


@dataclass(frozen=True)
class StageSpec:
    """Static description of one pipeline stage.

    ``per_item_cycles`` is the initiation interval of the stage (cycles
    per streamed element); ``fixed_cycles`` is its fill/flush latency;
    ``memory_roundtrip`` marks stages that, in the *normal* organisation,
    write their full output to RAM and force the successor to read it
    back (costing extra cycles per element).
    """

    name: str
    per_item_cycles: float
    fixed_cycles: float
    memory_roundtrip: bool = True


#: Stage parameters of the FOP datapath.  The absolute values are
#: engineering estimates for a 285 MHz Alveo U50 implementation; the
#: experiments only rely on their relative magnitudes.
FOP_STAGES_SPEC: Tuple[StageSpec, ...] = (
    StageSpec("cell_shift", per_item_cycles=2.0, fixed_cycles=8.0),
    StageSpec("sort_bp", per_item_cycles=1.0, fixed_cycles=6.0),
    StageSpec("merge_bp", per_item_cycles=1.0, fixed_cycles=4.0),
    StageSpec("sum_slopesR", per_item_cycles=1.0, fixed_cycles=4.0),
    StageSpec("sum_slopesL", per_item_cycles=1.0, fixed_cycles=4.0),
    StageSpec("calculate_value", per_item_cycles=1.0, fixed_cycles=6.0),
)

#: Extra cycles per element for a RAM round-trip between stages of the
#: normal pipeline (write by the producer + read by the consumer).
MEMORY_ROUNDTRIP_CYCLES_PER_ITEM: float = 2.0


@dataclass(frozen=True)
class StreamSchedule:
    """Cycle estimate of one insertion point under a given organisation."""

    total_cycles: float
    stage_cycles: Dict[str, float]
    organisation: PipelineOrganization

    def dominant_stage(self) -> str:
        """Name of the stage with the largest cycle share."""
        return max(self.stage_cycles, key=self.stage_cycles.get)


def stage_names() -> List[str]:
    """Names of the FOP stages in dataflow order."""
    return [s.name for s in FOP_STAGES_SPEC]


def describe_organisation(org: PipelineOrganization) -> str:
    """Human-readable description used in reports."""
    if org is PipelineOrganization.NORMAL:
        return (
            "normal pipeline: operations run sequentially, intermediate "
            "results round-trip through RAM"
        )
    if org is PipelineOrganization.SACS_ONLY:
        return "SACS cell shifting, remaining operations sequential"
    return (
        "multi-granularity pipeline: stream I/O between SACS, sort and "
        "fwdtraverse; coarse-grained handoff to bwdtraverse"
    )
