"""Configuration of the FLEX accelerator.

:class:`FlexConfig` gathers every knob evaluated in the paper's
breakdown analyses so that the experiment harness can sweep them:

* the FOP PE parallelism (Fig. 8, "1P"/"2P"),
* the pipeline organisation (normal / SACS / multi-granularity, Fig. 8),
* the SACS architecture and bandwidth optimisations (Fig. 9),
* the CPU/FPGA task partition (Fig. 10),
* the sliding-window processing ordering (Sec. 3.1.2).

The default configuration reproduces the full FLEX design: 2 FOP PEs,
multi-granularity pipeline, all SACS optimisations, step (d) on the FPGA
and steps (a)(b)(c)(e) on the CPU, 285 MHz FPGA clock.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.pipeline import PipelineOrganization
from repro.core.task_assignment import TaskPartition


@dataclass(frozen=True)
class FlexConfig:
    """Full configuration of a FLEX instance."""

    # --- FPGA platform ---------------------------------------------------
    fpga_clock_mhz: float = 285.0
    """FPGA kernel clock (the Alveo U50 design runs at 285 MHz)."""

    memory_clock_multiplier: float = 2.0
    """The SACS tables (LCT/LCPT/CST/LSC) run in a clock domain at twice
    the PE frequency when the bandwidth optimisation is enabled."""

    bram_read_ports: int = 2
    """Read ports per BRAM bank (true dual port)."""

    # --- FOP datapath ------------------------------------------------------
    fop_pe_parallelism: int = 2
    """Number of FOP PEs evaluating insertion points of the same region
    concurrently (Fig. 8: 2 PEs give ~1.7x)."""

    pipeline: PipelineOrganization = PipelineOrganization.MULTI_GRANULARITY
    """FOP datapath organisation."""

    use_sacs: bool = True
    """Use Sort-Ahead Cell Shifting instead of the multi-pass original."""

    # --- SACS architecture options (Fig. 9) --------------------------------
    sacs_architecture_opt: bool = True
    """Dedicated LCT/LCPT/CST/LSC dataflow ("SACS-Ar")."""

    sacs_bandwidth_opt: bool = True
    """Odd/even RAM split, LCT duplication and the doubled memory clock
    ("SACS-ImpBW"); mainly helps designs with cells taller than 3 rows."""

    sacs_parallel_moves: bool = True
    """Run the left-move and right-move phases in parallel ("SACS-Paral")."""

    # --- Host-side options ---------------------------------------------------
    task_partition: TaskPartition = TaskPartition.FOP_ON_FPGA
    """Which steps run on the FPGA (Fig. 10 compares FOP-only against
    FOP+update)."""

    sliding_window_ordering: bool = True
    """Use the sliding-window processing ordering instead of plain size order."""

    kernel_backend: str = "python"
    """Kernel backend executing the host-side numeric hot paths (curve
    construction/minimization and SACS chains): a name registered in
    :mod:`repro.kernels` (``"python"`` reference, vectorized ``"numpy"``,
    or process-parallel ``"multiprocess"`` / ``"multiprocess:N"`` with a
    pinned worker count).  Backends are bit-for-bit equivalent, so this
    only changes measured wall time, never results or recorded work."""

    ordering_window_size: int = 8
    """Size of the sliding window W_s."""

    ping_pong_preload: bool = True
    """Preload the next non-overlapping region into the free ping-pong RAM."""

    pcie_gbps: float = 12.0
    """Effective host-to-card bandwidth in Gbit/s (PCIe Gen3 x16 after
    protocol overhead, conservative)."""

    # --- CPU host ------------------------------------------------------------
    cpu_name: str = "Intel Core i5"
    cpu_ghz: float = 3.1

    # --------------------------------------------------------------------
    def with_updates(self, **kwargs) -> "FlexConfig":
        """Return a modified copy (convenience for ablation sweeps)."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check the configuration; raises ``ValueError`` on issues."""
        if self.fpga_clock_mhz <= 0:
            raise ValueError("fpga_clock_mhz must be positive")
        if self.fop_pe_parallelism < 1:
            raise ValueError("fop_pe_parallelism must be at least 1")
        if self.ordering_window_size < 2:
            raise ValueError("ordering_window_size must be at least 2")
        from repro.kernels import available_backends, get_kernel_backend

        try:
            get_kernel_backend(self.kernel_backend)
        except KeyError:
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"available: {available_backends()}"
            ) from None
        except ValueError as exc:
            raise ValueError(f"invalid kernel_backend: {exc}") from None
        if self.pipeline is PipelineOrganization.MULTI_GRANULARITY and not self.use_sacs:
            raise ValueError(
                "the multi-granularity pipeline requires SACS: the original "
                "cell shifting cannot stream its outputs (paper Sec. 3.2.1)"
            )

    def label(self) -> str:
        """Short human-readable description of the configuration."""
        parts = [
            f"{self.fop_pe_parallelism}PE",
            self.pipeline.value,
            "sacs" if self.use_sacs else "orig-shift",
            self.task_partition.value,
        ]
        if self.kernel_backend != "python":
            parts.append(self.kernel_backend)
        return "+".join(parts)


#: The configuration used for the paper's headline results.
DEFAULT_FLEX_CONFIG = FlexConfig()

#: An FPGA baseline without any of the FLEX contributions: original cell
#: shifting on a normal (operation-at-a-time) pipeline with a single PE.
NORMAL_PIPELINE_CONFIG = FlexConfig(
    fop_pe_parallelism=1,
    pipeline=PipelineOrganization.NORMAL,
    use_sacs=False,
    sacs_architecture_opt=False,
    sacs_bandwidth_opt=False,
    sacs_parallel_moves=False,
    sliding_window_ordering=False,
)
