"""Sliding-window target-cell processing ordering (paper Sec. 3.1.2).

The processing order of target cells strongly influences the quality of
heuristic legalization.  The common baseline sorts cells by size
(larger first); FLEX additionally accounts for the density of each cell's
localRegion: placing a cell into a dense region displaces more
neighbours, so dense regions should be handled while the layout is still
flexible.

The ordering works on an initial size-descending sequence ``S`` over
which a sliding window ``W_s`` moves:

* the first cell of ``W_s`` (``C_cur``) is processed next;
* the second cell (``C_next``) is kept fixed so that its localRegion can
  be preloaded into the free ping-pong RAM while ``C_cur`` is processed;
* the remaining cells of ``W_s`` are reordered by their localRegion
  density, descending.

Region densities are estimated from a coarse occupancy grid built over
the pre-moved cell positions; the grid is cheap to evaluate per window
and is a faithful stand-in for the density computed by step (c), because
the cell area inside a window barely changes while legalization replaces
floating cells with legal ones in the same neighbourhood.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout


@dataclass
class OrderingStats:
    """Work and bookkeeping recorded by the ordering (for the CPU model)."""

    comparisons: int = 0
    window_slides: int = 0
    preloadable_pairs: int = 0
    """Number of consecutive (C_cur, C_next) pairs whose windows do not
    overlap, i.e. for which the ping-pong preload can hide the transfer."""


class DensityGrid:
    """Coarse occupancy grid used to estimate localRegion densities."""

    def __init__(self, layout: Layout, *, bin_sites: float = 8.0, bin_rows: float = 2.0) -> None:
        self.bin_sites = max(1.0, bin_sites)
        self.bin_rows = max(1.0, bin_rows)
        self.nx = max(1, int(math.ceil(layout.width / self.bin_sites)))
        self.ny = max(1, int(math.ceil(layout.height / self.bin_rows)))
        self.area = np.zeros((self.ny, self.nx))
        self.bin_area = self.bin_sites * self.bin_rows
        for cell in layout.cells:
            cx = min(self.nx - 1, max(0, int((cell.x + cell.width / 2.0) / self.bin_sites)))
            cy = min(self.ny - 1, max(0, int((cell.y + cell.height / 2.0) / self.bin_rows)))
            self.area[cy, cx] += cell.area

    def window_density(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float) -> float:
        """Approximate cell-area density of a rectangular window."""
        ix_lo = max(0, int(x_lo / self.bin_sites))
        ix_hi = min(self.nx, int(math.ceil(x_hi / self.bin_sites)))
        iy_lo = max(0, int(y_lo / self.bin_rows))
        iy_hi = min(self.ny, int(math.ceil(y_hi / self.bin_rows)))
        if ix_hi <= ix_lo or iy_hi <= iy_lo:
            return 0.0
        occupied = float(self.area[iy_lo:iy_hi, ix_lo:ix_hi].sum())
        covered = (ix_hi - ix_lo) * (iy_hi - iy_lo) * self.bin_area
        return occupied / covered


class SlidingWindowOrdering:
    """FLEX's processing ordering: size first, density-aware inside a window.

    Instances are callables compatible with the
    :data:`repro.mgl.legalizer.OrderingFn` protocol, so they plug directly
    into :class:`~repro.mgl.legalizer.MGLLegalizer`.

    Parameters
    ----------
    window_size:
        Number of cells in the sliding window ``W_s``.
    width_factor / min_width / extra_rows:
        Sizing of the per-cell region window used for the density
        estimate; should match the legalizer's window parameters.
    """

    def __init__(
        self,
        *,
        window_size: int = 8,
        width_factor: float = 5.0,
        min_width: float = 24.0,
        extra_rows: int = 3,
    ) -> None:
        if window_size < 2:
            raise ValueError("window_size must be at least 2")
        self.window_size = window_size
        self.width_factor = width_factor
        self.min_width = min_width
        self.extra_rows = extra_rows
        self.stats = OrderingStats()

    # ------------------------------------------------------------------
    def _cell_window(self, layout: Layout, cell: Cell) -> tuple:
        half_width = max(self.min_width, self.width_factor * cell.width) / 2.0
        centre = cell.x + cell.width / 2.0
        bottom = cell.y
        return (
            max(0.0, centre - half_width),
            min(layout.width, centre + half_width),
            max(0.0, bottom - self.extra_rows),
            min(layout.height, bottom + cell.height + self.extra_rows),
        )

    def _densities(self, layout: Layout, cells: Sequence[Cell]) -> dict:
        grid = DensityGrid(layout)
        densities = {}
        for cell in cells:
            densities[cell.index] = grid.window_density(*self._cell_window(layout, cell))
        return densities

    # ------------------------------------------------------------------
    def __call__(self, layout: Layout, cells: List[Cell]) -> List[Cell]:
        """Produce the full processing order for the given cells."""
        self.stats = OrderingStats()
        if not cells:
            return []
        n = len(cells)
        initial = sorted(cells, key=lambda c: (-c.area, -c.height, -c.width, c.index))
        self.stats.comparisons += int(n * max(1.0, math.log2(n)))
        densities = self._densities(layout, cells)

        window: List[Cell] = list(initial[: self.window_size])
        upcoming = initial[self.window_size :]
        upcoming_pos = 0
        order: List[Cell] = []

        while window:
            current = window.pop(0)
            order.append(current)
            self.stats.window_slides += 1
            # C_next (window[0]) stays fixed; the rest reorders by density.
            if len(window) > 2:
                tail = window[1:]
                tail.sort(key=lambda c: (-densities[c.index], -c.area, c.index))
                self.stats.comparisons += int(len(tail) * max(1.0, math.log2(len(tail))))
                window[1:] = tail
            # Refill the window from the remaining sequence.
            if upcoming_pos < len(upcoming):
                window.append(upcoming[upcoming_pos])
                upcoming_pos += 1
            # Track whether the next region could be preloaded (windows of
            # consecutive targets not overlapping).
            if window:
                cur_win = self._cell_window(layout, current)
                nxt_win = self._cell_window(layout, window[0])
                disjoint = cur_win[1] <= nxt_win[0] or nxt_win[1] <= cur_win[0] or (
                    cur_win[3] <= nxt_win[2] or nxt_win[3] <= cur_win[2]
                )
                if disjoint:
                    self.stats.preloadable_pairs += 1
        return order

    @property
    def last_op_count(self) -> int:
        """Comparison count of the most recent ordering run."""
        return self.stats.comparisons
