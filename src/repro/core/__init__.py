"""FLEX: the paper's core contributions.

* :mod:`repro.core.sacs` — the Sort-Ahead Cell Shifting algorithm
  (Sec. 4.2), a single-pass replacement for the multi-pass cell shifting
  of the original MGL implementation;
* :mod:`repro.core.ordering` — the sliding-window processing ordering
  that combines cell size with localRegion density (Sec. 3.1.2);
* :mod:`repro.core.task_assignment` — the CPU/FPGA task-partition
  strategies compared in Fig. 10 (Sec. 3.1.1);
* :mod:`repro.core.pipeline` — the multi-granularity pipeline schedule
  of the FOP datapath (Sec. 3.2);
* :mod:`repro.core.flex_legalizer` — the end-to-end FLEX accelerator:
  MGL quality machinery + SACS + sliding-window ordering on the
  algorithm side, and the CPU/FPGA co-execution model on the runtime
  side.
"""

from repro.core.config import FlexConfig
from repro.core.sacs import SortAheadShifter, shift_cells_sacs
from repro.core.ordering import SlidingWindowOrdering
from repro.core.task_assignment import TaskAssignment, TaskPartition
from repro.core.pipeline import PipelineOrganization
from repro.core.flex_legalizer import FlexLegalizer, FlexRunResult

__all__ = [
    "FlexConfig",
    "SortAheadShifter",
    "shift_cells_sacs",
    "SlidingWindowOrdering",
    "TaskAssignment",
    "TaskPartition",
    "PipelineOrganization",
    "FlexLegalizer",
    "FlexRunResult",
]
