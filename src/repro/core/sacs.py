"""Sort-Ahead Cell Shifting (SACS) — paper Section 4.2, Algorithm 4.

The original cell shifting resolves overlaps by repeatedly traversing all
subcells of the localRegion until a full pass makes no change; the number
of passes is unpredictable because constraints propagate across rows
through multi-row cells (Fig. 6(a)–(f)).

SACS removes the multi-pass loop by *pre-sorting* the localCells by their
x-coordinates.  Cells are then processed right-to-left for the left-move
phase (left-to-right for the right-move phase); because every cell that
could constrain the current one lies strictly to its right (left), its
push threshold is already final when it is visited, so a single pass
suffices and each cell's result can be streamed out immediately — the
property that enables the fine-grained pipeline between cell shifting and
``sort bp`` on the FPGA.

The per-segment cursor structures of the paper (``CurSegPtr`` /
``CurSegEnd``, CSP/CSE) are modelled explicitly so that the behavioural
FPGA model can count the BRAM accesses they generate, but the algorithm's
results are identical to :func:`repro.mgl.shifting.shift_cells_original`
(a property enforced by the test-suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.region import LocalRegion
from repro.mgl.insertion import InsertionPoint
from repro.mgl.shifting import ShiftOutcome, _finalize_outcome

_INF = math.inf
_EPS = 1e-9


@dataclass
class SACSContext:
    """Pre-sorted view of a localRegion, shared by its insertion points.

    Attributes
    ----------
    order_desc / order_asc:
        LocalCell indices sorted by snapshot x, descending / ascending
        (the left-move and right-move processing orders).
    position_in_row:
        ``(local_index, row) -> position`` of the cell's subcell in the
        row's x-sorted list (the information CSP provides in hardware).
    row_indices:
        Per-row x-sorted localCell indices (a shared reference, not a
        per-call copy).
    sort_size:
        Number of cells sorted (reported once per region in the work
        counters; pre-sorting is ~10 % of FOP runtime, Fig. 6(g)).
    multirow_cells / tall_cells:
        Number of localCells spanning more than one row / more than three
        rows; used to account the per-phase BRAM accesses in bulk.
    """

    order_desc: List[int] = field(default_factory=list)
    order_asc: List[int] = field(default_factory=list)
    position_in_row: Dict[Tuple[int, int], int] = field(default_factory=dict)
    row_indices: Dict[int, List[int]] = field(default_factory=dict)
    sort_size: int = 0
    multirow_cells: int = 0
    tall_cells: int = 0
    consumed_sort_report: bool = False


def build_sacs_context(region: LocalRegion) -> SACSContext:
    """Pre-sort the localCells of a region (the "Ahead Sorter" input)."""
    ctx = SACSContext()
    ctx.order_asc = [lc.local_index for lc in region.sorted_by_x()]
    ctx.order_desc = list(reversed(ctx.order_asc))
    for row, indices in region.row_cells.items():
        ctx.row_indices[row] = indices
        for pos, idx in enumerate(indices):
            ctx.position_in_row[(idx, row)] = pos
    ctx.sort_size = len(region.local_cells)
    ctx.multirow_cells = sum(1 for lc in region.local_cells if lc.height > 1)
    ctx.tall_cells = sum(1 for lc in region.local_cells if lc.height > 3)
    return ctx


# ----------------------------------------------------------------------
def shift_cells_sacs(
    region: LocalRegion,
    target: Cell,
    insertion: InsertionPoint,
    context: Optional[SACSContext] = None,
) -> ShiftOutcome:
    """Single-pass cell shifting using the sort-ahead order.

    Produces exactly the same thresholds and feasibility interval as the
    original multi-pass algorithm, in one left-move pass plus one
    right-move pass over the sorted cells.
    """
    ctx = context or build_sacs_context(region)
    outcome = ShiftOutcome()
    outcome.passes = 2  # one pass per phase, by construction
    if not ctx.consumed_sort_report:
        outcome.sorted_cells = ctx.sort_size
        ctx.consumed_sort_report = True
    split = insertion.split_map()
    local_cells = region.local_cells
    # Each phase touches every (sorted) localCell exactly once; multi-row
    # cells additionally require one CST/LSC access per covered row.
    outcome.cell_visits = 2 * ctx.sort_size
    outcome.multirow_accesses = 2 * ctx.multirow_cells
    outcome.tall_accesses = 2 * ctx.tall_cells

    # ------------------------------------------------------------------
    # Left-move phase: process cells right-to-left.  In hardware CSP[row]
    # tracks the next unprocessed cell per segment and CSE[row] flags a
    # fully-processed segment; here the pre-computed per-row positions
    # provide the same adjacency information.
    # ------------------------------------------------------------------
    left: Dict[int, float] = {}
    for row in insertion.rows:
        indices = ctx.row_indices.get(row, [])
        k = split[row]
        if k > 0:
            boundary = local_cells[indices[k - 1]]
            left[boundary.local_index] = max(left.get(boundary.local_index, -_INF), boundary.right)
    if left:
        for idx in ctx.order_desc:
            b = left.get(idx)
            if b is None:
                continue
            cell = local_cells[idx]
            for row in cell.rows:
                pos = ctx.position_in_row[(idx, row)]
                if pos == 0:
                    continue
                limit = split.get(row)
                if limit is not None and pos >= limit:
                    # Right-side subcell of a spanned row: never pushes left.
                    continue
                neighbour_idx = ctx.row_indices[row][pos - 1]
                neighbour = local_cells[neighbour_idx]
                candidate = b - (cell.x - neighbour.right)
                if candidate > left.get(neighbour_idx, -_INF) + _EPS:
                    left[neighbour_idx] = candidate

    # ------------------------------------------------------------------
    # Right-move phase: process cells left-to-right.
    # ------------------------------------------------------------------
    right: Dict[int, float] = {}
    for row in insertion.rows:
        indices = ctx.row_indices.get(row, [])
        k = split[row]
        if k < len(indices):
            boundary = local_cells[indices[k]]
            right[boundary.local_index] = min(right.get(boundary.local_index, _INF), boundary.x)
    if right:
        for idx in ctx.order_asc:
            r = right.get(idx)
            if r is None:
                continue
            cell = local_cells[idx]
            for row in cell.rows:
                indices = ctx.row_indices[row]
                pos = ctx.position_in_row[(idx, row)]
                if pos == len(indices) - 1:
                    continue
                limit = split.get(row)
                if limit is not None and pos < limit:
                    continue
                neighbour_idx = indices[pos + 1]
                neighbour = local_cells[neighbour_idx]
                candidate = r + (neighbour.x - cell.right)
                if candidate < right.get(neighbour_idx, _INF) - _EPS:
                    right[neighbour_idx] = candidate

    return _finalize_outcome(outcome, region, target, insertion, left, right)


class SortAheadShifter:
    """Shifter object plugging SACS into the FOP driver.

    ``prepare`` builds the sorted context once per localRegion (the sort
    is shared by all insertion points of the region, as in the hardware
    where the Ahead Sorter runs once per region).

    ``backend`` selects the kernel backend executing the chain
    evaluation (a :mod:`repro.kernels` name or instance; ``None`` means
    the default ``"python"`` reference).  All backends produce
    bit-identical :class:`~repro.mgl.shifting.ShiftOutcome` records.
    """

    name = "sacs"

    def __init__(self, backend: object = None) -> None:
        self._backend_spec = backend
        self._backend = None
        self._context: Optional[SACSContext] = None
        self._region_id: Optional[int] = None

    def set_backend(self, backend: object) -> None:
        """Switch the kernel backend (drops any cached region context)."""
        self._backend_spec = backend
        self._backend = None
        self._context = None
        self._region_id = None

    def _resolve(self):
        if self._backend is None:
            # Imported lazily: repro.kernels' backends import this module.
            from repro.kernels import resolve_backend

            self._backend = resolve_backend(self._backend_spec)
        return self._backend

    def prepare(self, region: LocalRegion) -> None:
        """Pre-sort the localCells of the region about to be processed."""
        self._context = self._resolve().build_sacs_context(region)
        # Identity token for cache invalidation only — never ordered,
        # iterated or persisted, so the address is safe here.
        self._region_id = id(region)  # repro: allow[det-id-key]

    def shift(self, region: LocalRegion, target: Cell, insertion: InsertionPoint) -> ShiftOutcome:
        """Run single-pass SACS for one insertion point."""
        if self._context is None or self._region_id != id(region):  # repro: allow[det-id-key]
            self.prepare(region)
        assert self._context is not None
        return self._resolve().shift_sacs(region, target, insertion, self._context)
