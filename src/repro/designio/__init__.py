"""Design and result serialization.

Two formats are provided:

* a simple bookshelf-like plain-text format (``.cells`` files) carrying
  the chip dimensions and one line per cell — convenient for inspecting
  and diffing small designs;
* JSON round-tripping of layouts and of legalization summaries, used by
  the experiment harness to persist results.
"""

from repro.designio.bookshelf import load_cells, save_cells
from repro.designio.serialize import (
    layout_fingerprint,
    layout_from_dict,
    layout_to_dict,
    load_layout_json,
    save_layout_json,
    summary_to_dict,
)

__all__ = [
    "load_cells",
    "save_cells",
    "layout_to_dict",
    "layout_from_dict",
    "layout_fingerprint",
    "save_layout_json",
    "load_layout_json",
    "summary_to_dict",
]
