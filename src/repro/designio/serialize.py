"""JSON serialization of layouts and experiment summaries."""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout


def layout_to_dict(layout: Layout) -> Dict[str, Any]:
    """Convert a layout into a JSON-serialisable dictionary."""
    return {
        "name": layout.name,
        "num_rows": layout.num_rows,
        "num_sites": layout.num_sites,
        "site_width": layout.site_width,
        "row_height": layout.row_height,
        "cells": [
            {
                "name": c.name,
                "width": c.width,
                "height": c.height,
                "gp_x": c.gp_x,
                "gp_y": c.gp_y,
                "x": c.x,
                "y": c.y,
                "fixed": c.fixed,
                "legalized": c.legalized,
            }
            for c in layout.cells
        ],
    }


def layout_from_dict(data: Dict[str, Any]) -> Layout:
    """Rebuild a layout from :func:`layout_to_dict` output."""
    layout = Layout(
        data["num_rows"],
        data["num_sites"],
        name=data.get("name", "design"),
        site_width=data.get("site_width", 1.0),
        row_height=data.get("row_height", 1.0),
    )
    for index, entry in enumerate(data["cells"]):
        layout.add_cell(
            Cell(
                index=index,
                name=entry.get("name", f"c{index}"),
                width=entry["width"],
                height=entry["height"],
                gp_x=entry["gp_x"],
                gp_y=entry["gp_y"],
                # Explicit positions are kept exactly (an explicit (0, 0)
                # is a real position), so save -> load is the identity.
                x=float(entry.get("x", entry["gp_x"])),
                y=float(entry.get("y", entry["gp_y"])),
                fixed=entry.get("fixed", False),
                legalized=entry.get("legalized", False),
            )
        )
    return layout


def layout_fingerprint(layout: Layout) -> str:
    """Order-stable SHA-256 digest of a layout's exact placement state.

    Two layouts have equal fingerprints iff every cell agrees bit for bit
    on geometry, desired and placed positions and flags (floats hash via
    ``repr``, so 0.1 + 0.2 and 0.3 differ — that exactness is the point:
    the service layer compares a served session's final layout against an
    offline replay without shipping whole layouts over the wire).
    """
    digest = hashlib.sha256()
    digest.update(
        f"{layout.num_rows}|{layout.num_sites}|{layout.site_width!r}|"
        f"{layout.row_height!r}\n".encode()
    )
    for c in layout.cells:
        digest.update(
            f"{c.index}|{c.name}|{c.width!r}|{c.height}|{c.gp_x!r}|{c.gp_y!r}|"
            f"{c.x!r}|{c.y!r}|{int(c.fixed)}|{int(c.legalized)}\n".encode()
        )
    return digest.hexdigest()


def save_layout_json(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout to a JSON file."""
    Path(path).write_text(json.dumps(layout_to_dict(layout), indent=1), encoding="utf-8")


def load_layout_json(path: Union[str, Path]) -> Layout:
    """Read a layout from a JSON file."""
    return layout_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def summary_to_dict(**fields: Any) -> Dict[str, Any]:
    """Normalise arbitrary scalar experiment fields for JSON output.

    Non-serialisable values are converted to strings so that experiment
    summaries can always be dumped without surprises.
    """
    out: Dict[str, Any] = {}
    for key, value in fields.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        elif isinstance(value, dict):
            out[key] = {str(k): (v if isinstance(v, (int, float, str, bool)) else str(v)) for k, v in value.items()}
        else:
            out[key] = str(value)
    return out
