"""A minimal bookshelf-like text format for mixed-cell-height designs.

The format is intentionally simple (one header line, one line per cell)
so that generated designs and legalization results can be inspected,
diffed and re-loaded without external tooling::

    # repro-cells 1
    chip <num_rows> <num_sites> [<name> [<site_width> <row_height>]]
    cell <name> <width> <height> <gp_x> <gp_y> <x> <y> <fixed> <legalized>
    ...

Parsing conveniences (round-trippable files stay canonical, hand-written
ones get slack):

* blank lines are ignored anywhere, and lines starting with ``#`` after
  the header are comments;
* a cell line may end with a bookshelf-style ``/FIXED`` marker, which
  forces the cell fixed; with the marker the two trailing flag fields
  may be omitted entirely (``cell n w h gpx gpy x y /FIXED``);
* malformed input raises :class:`ValueError` naming the file, the line
  number and the offending text.

Floats are written with ``repr`` so every position survives a save /
load round trip exactly (``repr`` is the shortest exact decimal form).
The format is whitespace-delimited, so whitespace inside a design name
is replaced with ``_`` on save (use the JSON format when exact names
matter).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout

_HEADER = "# repro-cells 1"
#: Bookshelf ``.pl``-style marker accepted at the end of a cell line.
_FIXED_MARKER = "/FIXED"


def save_cells(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout to a ``.cells`` text file."""
    path = Path(path)
    # The chip line is whitespace-delimited, so the (user-controlled)
    # design name must be a single token or the trailing site/row
    # dimensions would be unparseable.
    name = "_".join(str(layout.name).split()) or "design"
    lines = [
        _HEADER,
        f"chip {layout.num_rows} {layout.num_sites} {name} "
        f"{layout.site_width!r} {layout.row_height!r}",
    ]
    for cell in layout.cells:
        lines.append(
            "cell {name} {w!r} {h} {gpx!r} {gpy!r} {x!r} {y!r} {fixed:d} {leg:d}".format(
                name=cell.name,
                w=cell.width,
                h=cell.height,
                gpx=cell.gp_x,
                gpy=cell.gp_y,
                x=cell.x,
                y=cell.y,
                fixed=cell.fixed,
                leg=cell.legalized,
            )
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_error(path: Path, lineno: int, message: str, line: str) -> ValueError:
    return ValueError(f"{path}:{lineno}: {message}: {line!r}")


def _parse_cell_line(path: Path, lineno: int, line: str, index: int) -> Cell:
    parts = line.split()
    fixed_marker = False
    if parts and parts[-1].upper() == _FIXED_MARKER:
        fixed_marker = True
        parts = parts[:-1]
    if not parts or parts[0] != "cell":
        raise _parse_error(path, lineno, "expected a 'cell' line", line)
    if len(parts) == 8 and fixed_marker:
        # Short macro form: flags come from the marker.
        flag_fixed, flag_legalized = True, False
    elif len(parts) == 10:
        if parts[8] not in ("0", "1") or parts[9] not in ("0", "1"):
            raise _parse_error(
                path, lineno, "fixed/legalized flags must be 0 or 1", line
            )
        flag_fixed = parts[8] == "1" or fixed_marker
        flag_legalized = parts[9] == "1"
    else:
        raise _parse_error(
            path,
            lineno,
            "malformed cell line (expected 'cell <name> <w> <h> <gp_x> <gp_y> "
            "<x> <y> <fixed> <legalized>' or 'cell <name> <w> <h> <gp_x> "
            "<gp_y> <x> <y> /FIXED')",
            line,
        )
    try:
        width = float(parts[2])
        height = int(parts[3])
        gp_x, gp_y, x, y = (float(v) for v in parts[4:8])
    except ValueError:
        raise _parse_error(path, lineno, "non-numeric cell geometry", line) from None
    try:
        cell = Cell(
            index=index,
            name=parts[1],
            width=width,
            height=height,
            gp_x=gp_x,
            gp_y=gp_y,
            x=x,
            y=y,
            fixed=flag_fixed,
            legalized=flag_legalized,
        )
    except ValueError as exc:
        raise _parse_error(path, lineno, str(exc), line) from None
    return cell


def load_cells(path: Union[str, Path]) -> Layout:
    """Read a layout from a ``.cells`` text file.

    Blank lines and ``#`` comments are skipped; malformed lines raise
    :class:`ValueError` with the file name and line number.
    """
    path = Path(path)
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1)
        if line.strip()
    ]
    if not numbered or numbered[0][1] != _HEADER:
        raise ValueError(f"{path}: not a repro-cells file (missing '{_HEADER}' header)")
    body = [(no, line) for no, line in numbered[1:] if not line.startswith("#")]
    if not body:
        raise ValueError(f"{path}: missing 'chip' line after the header")
    chip_no, chip_line = body[0]
    chip_parts = chip_line.split()
    if chip_parts[0] != "chip" or len(chip_parts) < 3:
        raise _parse_error(path, chip_no, "malformed chip line", chip_line)
    try:
        num_rows, num_sites = int(chip_parts[1]), int(chip_parts[2])
    except ValueError:
        raise _parse_error(
            path, chip_no, "chip dimensions must be integers", chip_line
        ) from None
    name = chip_parts[3] if len(chip_parts) > 3 else path.stem
    try:
        site_width = float(chip_parts[4]) if len(chip_parts) > 4 else 1.0
        row_height = float(chip_parts[5]) if len(chip_parts) > 5 else 1.0
    except ValueError:
        raise _parse_error(
            path, chip_no, "site_width/row_height must be numeric", chip_line
        ) from None
    layout = Layout(
        num_rows, num_sites, name=name, site_width=site_width, row_height=row_height
    )
    for index, (lineno, line) in enumerate(body[1:]):
        layout.add_cell(_parse_cell_line(path, lineno, line, index))
    return layout
