"""A minimal bookshelf-like text format for mixed-cell-height designs.

The format is intentionally simple (one header line, one line per cell)
so that generated designs and legalization results can be inspected,
diffed and re-loaded without external tooling::

    # repro-cells 1
    chip <num_rows> <num_sites>
    cell <name> <width> <height> <gp_x> <gp_y> <x> <y> <fixed> <legalized>
    ...
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout

_HEADER = "# repro-cells 1"


def save_cells(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout to a ``.cells`` text file."""
    path = Path(path)
    lines = [_HEADER, f"chip {layout.num_rows} {layout.num_sites} {layout.name}"]
    for cell in layout.cells:
        lines.append(
            "cell {name} {w:g} {h} {gpx:.10g} {gpy:.10g} {x:.10g} {y:.10g} {fixed:d} {leg:d}".format(
                name=cell.name,
                w=cell.width,
                h=cell.height,
                gpx=cell.gp_x,
                gpy=cell.gp_y,
                x=cell.x,
                y=cell.y,
                fixed=cell.fixed,
                leg=cell.legalized,
            )
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_cells(path: Union[str, Path]) -> Layout:
    """Read a layout from a ``.cells`` text file."""
    path = Path(path)
    lines = [line.strip() for line in path.read_text(encoding="utf-8").splitlines() if line.strip()]
    if not lines or lines[0] != _HEADER:
        raise ValueError(f"{path}: not a repro-cells file (missing header)")
    chip_parts = lines[1].split()
    if chip_parts[0] != "chip" or len(chip_parts) < 3:
        raise ValueError(f"{path}: malformed chip line: {lines[1]!r}")
    num_rows, num_sites = int(chip_parts[1]), int(chip_parts[2])
    name = chip_parts[3] if len(chip_parts) > 3 else path.stem
    layout = Layout(num_rows, num_sites, name=name)
    for index, line in enumerate(lines[2:]):
        parts = line.split()
        if parts[0] != "cell" or len(parts) != 10:
            raise ValueError(f"{path}: malformed cell line: {line!r}")
        cell = Cell(
            index=index,
            name=parts[1],
            width=float(parts[2]),
            height=int(parts[3]),
            gp_x=float(parts[4]),
            gp_y=float(parts[5]),
            x=float(parts[6]),
            y=float(parts[7]),
            fixed=bool(int(parts[8])),
            legalized=bool(int(parts[9])),
        )
        layout.add_cell(cell)
    return layout
