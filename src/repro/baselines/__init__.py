"""Baseline legalizers and their runtime models.

The paper compares FLEX against three published systems plus the classic
single-row legalizer from Related Work.  Quality numbers are obtained by
*running* the reimplementations below on the same synthetic designs;
runtime numbers come from the calibrated models in :mod:`repro.perf`
driven by the recorded work:

* :class:`~repro.baselines.multithread.MultiThreadedMglBaseline` — the
  TCAD'22 multi-threaded CPU legalizer (MGL with size ordering; runtime
  scaled by the published thread-scaling curve);
* :class:`~repro.baselines.cpu_gpu.CpuGpuBaseline` — the DATE'22 CPU-GPU
  legalizer (MGL with a region-batch processing order plus the
  GPU/CPU/synchronisation runtime model);
* :class:`~repro.baselines.analytical.AnalyticalLegalizer` — a quadratic
  penalty / row-assignment analytical legalizer standing in for the
  ISPD'25 LEGALM GPU legalizer;
* :class:`~repro.baselines.abacus.AbacusLegalizer` — the classic
  single-row Abacus algorithm (dynamic programming per row), used in
  examples and ablations;
* :class:`~repro.baselines.greedy.GreedyLegalizer` — a tetris-style
  greedy legalizer, a simple lower bound on quality.
"""

from repro.baselines.abacus import AbacusLegalizer
from repro.baselines.greedy import GreedyLegalizer
from repro.baselines.analytical import AnalyticalLegalizer, AnalyticalResult
from repro.baselines.multithread import MultiThreadedMglBaseline
from repro.baselines.cpu_gpu import CpuGpuBaseline, region_batch_order

__all__ = [
    "AbacusLegalizer",
    "GreedyLegalizer",
    "AnalyticalLegalizer",
    "AnalyticalResult",
    "MultiThreadedMglBaseline",
    "CpuGpuBaseline",
    "region_batch_order",
]
