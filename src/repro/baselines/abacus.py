"""Abacus: single-row legalization by dynamic programming (Spindler et al.).

Abacus legalizes one row at a time: cells assigned to a row are processed
in x order and clustered; whenever two clusters overlap they are merged
and the merged cluster is placed at its weighted-average optimal
position, clamped to the row.  It is optimal per row for minimal total
(quadratic or weighted-linear) movement of single-row cells but, as the
paper's Related Work notes, it cannot handle multi-row cells — moving a
multi-deck cell drags overlaps into neighbouring rows.

This implementation follows the classic cluster formulation and handles
mixed-height designs by *fixing* multi-row cells first (placing them with
the greedy nearest-free-slot strategy and treating them as blockages),
then running Abacus on the remaining single-row cells.  It serves as an
additional baseline for the examples and the ablation benchmarks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.legality.metrics import DisplacementStats, PlacementMetrics
from repro.mgl.premove import premove
from repro.baselines.greedy import GreedyLegalizer


@dataclass
class _Cluster:
    """A maximal group of abutting cells placed as one block."""

    x: float = 0.0
    total_weight: float = 0.0
    q: float = 0.0
    width: float = 0.0
    cells: List[Cell] = field(default_factory=list)

    def add_cell(self, cell: Cell, desired_x: float, weight: float) -> None:
        self.cells.append(cell)
        self.q += weight * (desired_x - self.width)
        self.total_weight += weight
        self.width += cell.width

    def merge(self, other: "_Cluster") -> None:
        for cell in other.cells:
            self.cells.append(cell)
        self.q += other.q - other.total_weight * self.width
        self.total_weight += other.total_weight
        self.width += other.width

    def optimal_x(self) -> float:
        if self.total_weight <= 0:
            return self.x
        return self.q / self.total_weight


@dataclass
class AbacusResult:
    """Outcome of an Abacus run."""

    layout: Layout
    stats: DisplacementStats
    failed_cells: List[int]
    wall_seconds: float

    @property
    def average_displacement(self) -> float:
        return self.stats.average_displacement

    @property
    def success(self) -> bool:
        return not self.failed_cells


class AbacusLegalizer:
    """Row-based Abacus legalizer with greedy pre-placement of multi-row cells."""

    def __init__(self, *, metrics: Optional[PlacementMetrics] = None) -> None:
        self.metrics = metrics or PlacementMetrics()

    # ------------------------------------------------------------------
    def legalize(self, layout: Layout) -> AbacusResult:
        """Legalize the layout: multi-row cells greedily, single-row via Abacus."""
        start = time.perf_counter()
        premove(layout)
        layout.rebuild_index()

        failed: List[int] = []
        multi = [c for c in layout.unlegalized_cells() if c.height > 1]
        if multi:
            greedy = GreedyLegalizer(metrics=self.metrics)
            # Place multi-row cells directly in the main layout via the
            # greedy position search (reusing its free-slot logic).
            for cell in sorted(multi, key=lambda c: (-c.area, c.index)):
                position = greedy._best_position(layout, cell)
                if position is None:
                    failed.append(cell.index)
                else:
                    layout.mark_legalized(cell, position[0], float(position[1]))

        singles = [c for c in layout.unlegalized_cells() if c.height == 1]
        row_assignment = self._assign_rows(layout, singles)
        unplaced: List[int] = []
        for row, cells in row_assignment.items():
            unplaced.extend(self._legalize_row(layout, row, cells))

        # Cells whose assigned row had no segment wide enough fall back to a
        # direct nearest-free-slot search (the same repair a production
        # Abacus flow would apply before declaring failure).
        if unplaced:
            greedy = GreedyLegalizer(metrics=self.metrics)
            by_index = {c.index: c for c in layout.cells}
            for index in unplaced:
                cell = by_index[index]
                position = greedy._best_position(layout, cell)
                if position is None:
                    failed.append(index)
                else:
                    layout.mark_legalized(cell, position[0], float(position[1]))

        stats = self.metrics.compute(layout)
        return AbacusResult(
            layout=layout,
            stats=stats,
            failed_cells=failed,
            wall_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _assign_rows(self, layout: Layout, cells: List[Cell]) -> Dict[int, List[Cell]]:
        """Assign every single-row cell to its nearest row (greedy capacity-aware)."""
        capacity = {row: layout.width - sum(c.width for c in layout.obstacles_in_row(row))
                    for row in range(layout.num_rows)}
        assignment: Dict[int, List[Cell]] = {row: [] for row in range(layout.num_rows)}
        for cell in sorted(cells, key=lambda c: c.gp_x):
            best_row = None
            best_cost = math.inf
            base = int(round(cell.gp_y))
            for offset in range(layout.num_rows):
                for row in {base + offset, base - offset}:
                    if row < 0 or row >= layout.num_rows:
                        continue
                    if capacity[row] < cell.width:
                        continue
                    cost = abs(row - cell.gp_y)
                    if cost < best_cost:
                        best_cost, best_row = cost, row
                if best_row is not None and offset > best_cost + 1:
                    break
            if best_row is None:
                best_row = max(capacity, key=capacity.get)
            capacity[best_row] -= cell.width
            assignment[best_row].append(cell)
        return assignment

    # ------------------------------------------------------------------
    def _legalize_row(self, layout: Layout, row: int, cells: List[Cell]) -> List[int]:
        """Run the Abacus cluster DP for one row, around existing obstacles.

        Returns the indices of cells that could not be placed legally.
        """
        if not cells:
            return []
        # Free sub-intervals of the row between fixed obstacles / multi-row cells.
        obstacles = layout.obstacles_in_row(row)
        free: List[Tuple[float, float]] = []
        cursor = 0.0
        for obs in obstacles:
            if obs.x > cursor:
                free.append((cursor, obs.x))
            cursor = max(cursor, obs.right)
        if cursor < layout.width:
            free.append((cursor, layout.width))

        failed: List[int] = []
        remaining = sorted(cells, key=lambda c: c.gp_x)
        for seg_lo, seg_hi in free:
            seg_cells: List[Cell] = []
            seg_width = 0.0
            rest: List[Cell] = []
            for cell in remaining:
                centre = cell.gp_x + cell.width / 2.0
                if seg_lo <= centre <= seg_hi and seg_width + cell.width <= seg_hi - seg_lo:
                    seg_cells.append(cell)
                    seg_width += cell.width
                else:
                    rest.append(cell)
            remaining = rest
            self._place_segment(layout, row, seg_lo, seg_hi, seg_cells)
        for cell in remaining:
            # Cells that fit in no free segment of their assigned row.
            failed.append(cell.index)
        return failed

    def _place_segment(
        self, layout: Layout, row: int, seg_lo: float, seg_hi: float, cells: List[Cell]
    ) -> None:
        """Classic Abacus clustering inside one free segment of a row."""
        clusters: List[_Cluster] = []
        for cell in cells:
            desired = min(max(cell.gp_x, seg_lo), seg_hi - cell.width)
            cluster = _Cluster(x=desired)
            cluster.add_cell(cell, desired, weight=cell.width)
            clusters.append(cluster)
            # Collapse overlapping clusters.
            while len(clusters) > 1:
                last = clusters[-1]
                prev = clusters[-2]
                last.x = min(max(last.optimal_x(), seg_lo), seg_hi - last.width)
                if prev.x + prev.width <= last.x + 1e-9:
                    break
                prev.merge(last)
                clusters.pop()
                clusters[-1].x = min(
                    max(clusters[-1].optimal_x(), seg_lo), seg_hi - clusters[-1].width
                )
        # Commit positions, snapped to the site grid inside the segment.
        site_lo = math.ceil(seg_lo - 1e-9)
        for cluster in clusters:
            cluster.x = min(max(cluster.optimal_x(), seg_lo), seg_hi - cluster.width)
            site_hi = math.floor(seg_hi - cluster.width + 1e-9)
            x = float(min(max(round(cluster.x), site_lo), max(site_lo, site_hi)))
            for cell in cluster.cells:
                layout.mark_legalized(cell, x, float(row))
                x += cell.width
