"""The TCAD'22 multi-threaded CPU legalizer baseline.

Quality-wise this baseline *is* the MGL algorithm with the plain
size-descending processing order and the original multi-pass cell
shifting — exactly what :class:`~repro.mgl.legalizer.MGLLegalizer`
implements.  Runtime-wise, the published implementation processes several
unlegalized cells concurrently on up to 8 CPU threads with the scaling
saturation of Fig. 2(a); :class:`~repro.perf.thread_model.MultiThreadModel`
converts the recorded single-thread work into the multi-threaded runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.geometry.layout import Layout
from repro.legality.metrics import PlacementMetrics
from repro.mgl.fop import FOPConfig
from repro.mgl.legalizer import LegalizationResult, MGLLegalizer
from repro.perf.cost_model import CpuCostModel, CpuCostParameters
from repro.perf.thread_model import MultiThreadModel


@dataclass
class MultiThreadedRunResult:
    """Quality + modeled runtime of the multi-threaded CPU baseline."""

    legalization: LegalizationResult
    threads: int
    modeled_runtime_seconds: float
    single_thread_seconds: float
    scaling_curve: Dict[int, float] = field(default_factory=dict)

    @property
    def average_displacement(self) -> float:
        return self.legalization.average_displacement


class MultiThreadedMglBaseline:
    """Runs MGL and models its multi-threaded CPU runtime (TCAD'22)."""

    def __init__(
        self,
        *,
        threads: int = 8,
        cpu_params: Optional[CpuCostParameters] = None,
        metrics: Optional[PlacementMetrics] = None,
    ) -> None:
        self.threads = threads
        self.cost_model = CpuCostModel(cpu_params)
        self.thread_model = MultiThreadModel(threads=threads, cost_model=self.cost_model)
        self.metrics = metrics

    def legalize(self, layout: Layout) -> MultiThreadedRunResult:
        """Legalize with MGL and attach the modeled multi-threaded runtime."""
        legalizer = MGLLegalizer(FOPConfig(), metrics=self.metrics, algorithm_name="mgl-tcad22")
        result = legalizer.legalize(layout)
        return self.model_run(result)

    def model_run(self, result: LegalizationResult) -> MultiThreadedRunResult:
        """Attach the runtime model to an existing MGL run."""
        single = self.cost_model.total_seconds(result.trace)
        return MultiThreadedRunResult(
            legalization=result,
            threads=self.threads,
            modeled_runtime_seconds=self.thread_model.runtime_seconds(result.trace),
            single_thread_seconds=single,
            scaling_curve=self.thread_model.scaling_curve(result.trace),
        )
