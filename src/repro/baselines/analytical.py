"""An analytical mixed-cell-height legalizer (ISPD'25 LEGALM stand-in).

LEGALM formulates legalization as a continuous optimisation solved with a
linearized augmented Lagrangian method on a GPU.  The closed-source
system is substituted here by an analytical legalizer in the same family:

1. cells keep their pre-moved row assignment (vertical movement is
   penalised exactly as in the MGL-family legalizers);
2. horizontal overlap removal is solved per row-group with an iterative
   projected relaxation of the quadratic program

   .. math::

       \\min_x \\sum_i w_i (x_i - x_i^{gp})^2
       \\quad \\text{s.t.} \\quad x_{\\sigma(i)} + w_{\\sigma(i)} \\le x_{\\sigma(i+1)}

   where the ordering constraints couple rows through multi-row cells.
   Each iteration pulls cells toward their global-placement position and
   then projects out pairwise overlaps (a Gauss–Seidel sweep over the
   ordering constraints) — the standard structure of Lagrangian /
   splitting methods for this QP;
3. a final snapping pass rounds to sites and resolves residual overlaps.

Quality is *measured* by running this legalizer; its GPU runtime is
modeled from the iteration count and problem size via
:class:`AnalyticalGpuRuntimeModel` (an A800-class throughput assumption),
which is what the Acc(I) column of Table 1 consumes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional


from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.legality.metrics import DisplacementStats, PlacementMetrics
from repro.mgl.premove import premove
from repro.baselines.greedy import GreedyLegalizer


@dataclass
class AnalyticalResult:
    """Outcome of the analytical legalizer."""

    layout: Layout
    stats: DisplacementStats
    iterations: int
    num_cells: int
    failed_cells: List[int]
    wall_seconds: float

    @property
    def average_displacement(self) -> float:
        return self.stats.average_displacement

    @property
    def success(self) -> bool:
        return not self.failed_cells


@dataclass(frozen=True)
class AnalyticalGpuRuntimeModel:
    """Runtime model of the analytical legalizer on an A800-class GPU.

    Each iteration is a handful of vectorised kernels over all cells
    (gradient pull, pairwise projection sweep, bound clamping) plus a
    kernel-launch overhead; LEGALM-style methods need hundreds of
    iterations to converge on constrained designs, which is why the
    paper's Table 1 shows it losing to the heuristic-analytical methods
    on runtime despite the much larger GPU.
    """

    seconds_per_cell_iteration: float = 9.0e-8
    kernel_launch_seconds: float = 1.2e-4
    setup_seconds: float = 0.005

    def runtime_seconds(self, num_cells: int, iterations: int) -> float:
        per_iter = num_cells * self.seconds_per_cell_iteration + self.kernel_launch_seconds
        return self.setup_seconds + iterations * per_iter


class AnalyticalLegalizer:
    """Iterative quadratic-penalty legalizer for mixed-cell-height designs."""

    def __init__(
        self,
        *,
        max_iterations: int = 400,
        convergence_tol: float = 1e-3,
        pull_strength: float = 0.35,
        metrics: Optional[PlacementMetrics] = None,
    ) -> None:
        self.max_iterations = max_iterations
        self.convergence_tol = convergence_tol
        self.pull_strength = pull_strength
        self.metrics = metrics or PlacementMetrics()

    # ------------------------------------------------------------------
    def legalize(self, layout: Layout) -> AnalyticalResult:
        """Legalize the layout with the iterative analytical method."""
        start = time.perf_counter()
        premove(layout)
        layout.rebuild_index()
        movable = layout.unlegalized_cells()
        iterations = self._relax(layout, movable)
        failed = self._snap_and_commit(layout, movable)
        stats = self.metrics.compute(layout)
        return AnalyticalResult(
            layout=layout,
            stats=stats,
            iterations=iterations,
            num_cells=len(movable),
            failed_cells=failed,
            wall_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _row_groups(self, layout: Layout, cells: List[Cell]) -> Dict[int, List[Cell]]:
        """Cells per row (multi-row cells appear in each covered row)."""
        groups: Dict[int, List[Cell]] = {row: [] for row in range(layout.num_rows)}
        for cell in cells:
            for row in cell.rows_covered():
                if 0 <= row < layout.num_rows:
                    groups[row].append(cell)
        for row_cells in groups.values():
            row_cells.sort(key=lambda c: (c.gp_x, c.index))
        return groups

    def _relax(self, layout: Layout, cells: List[Cell]) -> int:
        """Projected relaxation sweeps until the overlap movement converges."""
        if not cells:
            return 0
        groups = self._row_groups(layout, cells)
        width = layout.width
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Gradient pull toward the global-placement x.
            for cell in cells:
                cell.x += self.pull_strength * (cell.gp_x - cell.x)
            # Gauss-Seidel projection of the ordering constraints per row.
            max_move = 0.0
            for row_cells in groups.values():
                for left, right in zip(row_cells, row_cells[1:]):
                    overlap = (left.x + left.width) - right.x
                    if overlap > 0:
                        shift = overlap / 2.0
                        left.x -= shift
                        right.x += shift
                        max_move = max(max_move, shift)
            # Chip bounds.
            for cell in cells:
                clamped = min(max(cell.x, 0.0), width - cell.width)
                max_move = max(max_move, abs(clamped - cell.x))
                cell.x = clamped
            if max_move < self.convergence_tol:
                break
        return iterations

    # ------------------------------------------------------------------
    def _snap_and_commit(self, layout: Layout, cells: List[Cell]) -> List[int]:
        """Round to sites, resolve residual overlaps, and commit positions.

        Cells are committed in ascending relaxed-x order with a per-row
        packing cursor, which guarantees that movable cells never overlap
        each other after rounding; cells that would collide with a fixed
        blockage or overflow the chip fall back to the greedy
        nearest-free-slot search.
        """
        failed: List[int] = []
        deferred: List[Cell] = []
        cursor = [0.0] * layout.num_rows
        for cell in sorted(cells, key=lambda c: (c.x, c.index)):
            bottom = int(round(cell.y))
            rows = range(bottom, bottom + cell.height)
            lo = max(cursor[r] for r in rows)
            x = float(max(round(cell.x), math.ceil(lo - 1e-9)))
            if x + cell.width > layout.width + 1e-9:
                deferred.append(cell)
                continue
            blocked = False
            for r in rows:
                for obs in layout.obstacles_in_row_window(r, x, x + cell.width):
                    if obs.fixed:
                        blocked = True
                        break
                if blocked:
                    break
            if blocked:
                deferred.append(cell)
                continue
            layout.mark_legalized(cell, x, float(bottom))
            for r in rows:
                cursor[r] = x + cell.width
        # Deferred cells fall back to the greedy nearest-free-slot search.
        greedy = GreedyLegalizer(metrics=self.metrics)
        for cell in deferred:
            position = greedy._best_position(layout, cell)
            if position is None:
                failed.append(cell.index)
            else:
                layout.mark_legalized(cell, position[0], float(position[1]))
        return failed
