"""A tetris-style greedy legalizer.

Cells are processed in size-descending order and each one is placed at
the free position closest (in Manhattan distance, with the vertical
component weighted by the row height) to its global-placement location.
No cell already placed is ever moved again, so quality is clearly worse
than MGL-family legalizers — which is exactly why it is useful as a
sanity baseline in the examples and ablations.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.interval import Interval, gaps_between, intersect_interval_lists
from repro.geometry.layout import Layout
from repro.geometry.row import legal_bottom_rows
from repro.legality.metrics import DisplacementStats, PlacementMetrics
from repro.mgl.premove import premove
from repro.perf.counters import LegalizationTrace, TargetCellWork


@dataclass
class GreedyResult:
    """Outcome of a greedy legalization run."""

    layout: Layout
    stats: DisplacementStats
    failed_cells: List[int]
    wall_seconds: float
    trace: LegalizationTrace

    @property
    def average_displacement(self) -> float:
        return self.stats.average_displacement

    @property
    def success(self) -> bool:
        return not self.failed_cells


class GreedyLegalizer:
    """Greedy (tetris-style) mixed-cell-height legalizer."""

    def __init__(
        self,
        *,
        vertical_cost_factor: float = 10.0,
        row_search_limit: int = 24,
        metrics: Optional[PlacementMetrics] = None,
    ) -> None:
        self.vertical_cost_factor = vertical_cost_factor
        self.row_search_limit = row_search_limit
        self.metrics = metrics or PlacementMetrics(site_width_units=1.0 / vertical_cost_factor)

    # ------------------------------------------------------------------
    def legalize(self, layout: Layout) -> GreedyResult:
        """Legalize every movable cell greedily, nearest free slot first."""
        start = time.perf_counter()
        trace = LegalizationTrace(
            design_name=layout.name, algorithm="greedy", num_cells=len(layout.cells),
            num_movable=len(layout.movable_cells()),
        )
        trace.premove_cells = premove(layout)
        layout.rebuild_index()
        cells = sorted(
            layout.unlegalized_cells(), key=lambda c: (-c.area, -c.height, c.index)
        )
        n = max(1, len(cells))
        trace.ordering_ops = int(n * max(1.0, math.log2(n)))
        failed: List[int] = []
        for cell in cells:
            work = TargetCellWork(cell_index=cell.index, height=cell.height, width=cell.width)
            position = self._best_position(layout, cell)
            if position is None:
                failed.append(cell.index)
            else:
                layout.mark_legalized(cell, position[0], float(position[1]))
            trace.add_target(work)
        stats = self.metrics.compute(layout)
        return GreedyResult(
            layout=layout,
            stats=stats,
            failed_cells=failed,
            wall_seconds=time.perf_counter() - start,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _best_position(self, layout: Layout, cell: Cell) -> Optional[Tuple[float, int]]:
        """Nearest completely-free slot for a cell (row-by-row scan)."""
        best: Optional[Tuple[float, int, float]] = None
        rows = sorted(
            legal_bottom_rows(cell.height, layout.num_rows),
            key=lambda r: abs(r - cell.gp_y),
        )
        for count, bottom in enumerate(rows):
            vertical_cost = abs(bottom - cell.gp_y) * self.vertical_cost_factor
            if best is not None and vertical_cost >= best[2]:
                break
            if count >= self.row_search_limit and best is not None:
                break
            free: List[Interval] = [Interval(0.0, layout.width)]
            for row in range(bottom, bottom + cell.height):
                occupied = [(c.x, c.right) for c in layout.obstacles_in_row(row)]
                row_free = gaps_between(occupied, layout.row_span_interval(row))
                free = intersect_interval_lists(free, row_free)
                if not free:
                    break
            for interval in free:
                if interval.length + 1e-9 < cell.width:
                    continue
                lo = math.ceil(interval.lo - 1e-9)
                hi = math.floor(interval.hi - cell.width + 1e-9)
                if lo > hi:
                    continue
                x = float(min(max(round(cell.gp_x), lo), hi))
                cost = abs(x - cell.gp_x) + vertical_cost
                if best is None or cost < best[2]:
                    best = (x, bottom, cost)
        if best is None:
            return None
        return best[0], best[1]
