"""The DATE'22 CPU-GPU legalizer baseline.

The CPU-GPU legalizer keeps the MGL quality machinery but changes *when*
cells are processed: to expose region-level parallelism it repeatedly
forms batches of target cells whose localRegions do not overlap and
legalizes each batch "in parallel".  Within a batch the intended
size-descending priority is not preserved — lower-priority cells in other
parts of the chip are legalized before higher-priority cells that had to
wait for a conflicting region (paper Fig. 2(e)) — which is why its
average displacement is slightly worse than the sequential CPU baseline
(Table 1: ratio 1.04 vs 1.01).

Quality is measured by running MGL with exactly this batch order
(:func:`region_batch_order`); runtime comes from the
:class:`~repro.perf.gpu_model.CpuGpuModel` which reproduces the
GPU-compute / synchronisation / tough-cell-on-CPU structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry.cell import Cell
from repro.geometry.layout import Layout
from repro.legality.metrics import PlacementMetrics
from repro.mgl.fop import FOPConfig
from repro.mgl.legalizer import LegalizationResult, MGLLegalizer
from repro.perf.cost_model import CpuCostModel, CpuCostParameters
from repro.perf.gpu_model import CpuGpuBreakdown, CpuGpuModel, GpuModelParameters


def _window_rect(layout: Layout, cell: Cell, *, width_factor: float, min_width: float,
                 extra_rows: int) -> Tuple[float, float, float, float]:
    half = max(min_width, width_factor * cell.width) / 2.0
    centre = cell.x + cell.width / 2.0
    return (
        max(0.0, centre - half),
        min(layout.width, centre + half),
        max(0.0, cell.y - extra_rows),
        min(layout.height, cell.y + cell.height + extra_rows),
    )


def _rects_overlap(a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]) -> bool:
    return a[0] < b[1] and b[0] < a[1] and a[2] < b[3] and b[2] < a[3]


def region_batch_order(
    layout: Layout,
    cells: List[Cell],
    *,
    max_batch: int = 448,
    width_factor: float = 5.0,
    min_width: float = 24.0,
    extra_rows: int = 3,
) -> List[Cell]:
    """Region-level parallel processing order of the CPU-GPU legalizer.

    Starting from the size-descending sequence, cells are greedily packed
    into batches of mutually non-overlapping regions; batches are emitted
    one after another.  Within a batch the original priority is only a
    tie-break, so the resulting global order deviates from strict
    size-descending priority — the quality effect the paper highlights.
    """
    pending = sorted(cells, key=lambda c: (-c.area, -c.height, -c.width, c.index))
    order: List[Cell] = []
    while pending:
        batch: List[Cell] = []
        batch_rects: List[Tuple[float, float, float, float]] = []
        remaining: List[Cell] = []
        for cell in pending:
            rect = _window_rect(
                layout, cell, width_factor=width_factor, min_width=min_width, extra_rows=extra_rows
            )
            if len(batch) < max_batch and not any(_rects_overlap(rect, r) for r in batch_rects):
                batch.append(cell)
                batch_rects.append(rect)
            else:
                remaining.append(cell)
        order.extend(batch)
        pending = remaining
    return order


class _BatchOrdering:
    """Callable ordering object recording its comparison count."""

    def __init__(self, max_batch: int) -> None:
        self.max_batch = max_batch
        self.last_op_count = 0

    def __call__(self, layout: Layout, cells: List[Cell]) -> List[Cell]:
        n = max(1, len(cells))
        # Sorting plus the pairwise window-overlap checks of batch forming.
        self.last_op_count = int(n * max(1.0, math.log2(n)) + 4 * n)
        return region_batch_order(layout, cells, max_batch=self.max_batch)


@dataclass
class CpuGpuRunResult:
    """Quality + modeled runtime of the CPU-GPU baseline."""

    legalization: LegalizationResult
    modeled_runtime_seconds: float
    breakdown: CpuGpuBreakdown
    achievable_parallelism: int

    @property
    def average_displacement(self) -> float:
        return self.legalization.average_displacement


class CpuGpuBaseline:
    """Runs the DATE'22-style legalizer and models its runtime."""

    def __init__(
        self,
        *,
        gpu_params: Optional[GpuModelParameters] = None,
        cpu_params: Optional[CpuCostParameters] = None,
        metrics: Optional[PlacementMetrics] = None,
    ) -> None:
        self.gpu_params = gpu_params or GpuModelParameters()
        self.cost_model = CpuCostModel(cpu_params)
        self.gpu_model = CpuGpuModel(self.gpu_params, self.cost_model)
        self.metrics = metrics

    def legalize(self, layout: Layout) -> CpuGpuRunResult:
        """Legalize with the region-batch order and model the runtime."""
        ordering = _BatchOrdering(self.gpu_params.max_parallel_regions)
        legalizer = MGLLegalizer(
            FOPConfig(),
            ordering=ordering,
            metrics=self.metrics,
            algorithm_name="cpu-gpu-date22",
        )
        result = legalizer.legalize(layout)
        return self.model_run(result)

    def model_run(self, result: LegalizationResult) -> CpuGpuRunResult:
        """Attach the runtime model to an existing run."""
        breakdown = self.gpu_model.breakdown(result.trace)
        return CpuGpuRunResult(
            legalization=result,
            modeled_runtime_seconds=breakdown.total,
            breakdown=breakdown,
            achievable_parallelism=self.gpu_model.achievable_parallelism(result.trace),
        )
