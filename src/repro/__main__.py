"""``repro`` console entry point: drive the system without writing Python.

These subcommands cover the daily workflows::

    repro legalize design.json [-o out.json] [--backend numpy]
        Load a design (JSON or .cells), legalize it, verify legality,
        print the quality / feasibility summaries, optionally save the
        legalized layout.

    repro bench [--cells 800 --density 0.65 --seed 42 --backend numpy]
        Generate a synthetic mixed-cell-height design, legalize it, and
        print the quality, wall-time and work-counter summary — a quick
        smoke/benchmark of the installed configuration.

    repro eco design.json deltas.json [--backend numpy]
        Load a legal(izable) design plus an ECO delta stream, replay the
        stream through the incremental engine, and print one
        dirty-set/reuse summary line per batch.  With ``--generate`` the
        deltas file is *written* instead (a seeded stream at the
        requested churn), so a full round trip needs no Python at all::

            repro eco design.json deltas.json --generate --churn 0.05 --batches 3
            repro eco design.json deltas.json

    repro serve [--host 127.0.0.1 --port 7733 --backend numpy
                 --max-sessions 8 --max-inflight 64 --port-file port.txt]
        Run the legalization daemon: a long-running threaded server
        holding per-design incremental-legalizer sessions and accepting
        delta batches over length-prefixed JSON frames (see
        :mod:`repro.service`).  ``--port 0`` binds an ephemeral port;
        ``--port-file`` writes the bound port for scripts to pick up.

    repro submit design.json deltas.json [--host ... --port ...]
        Open a session on a running daemon, stream the delta batches to
        it, print one summary line per batch, close the session — and
        with ``--verify`` replay the served ledger offline and assert
        the daemon's final placement is bit-for-bit identical.

    repro top [--host ... --port ...] [--interval 2.0] [--once] [--prometheus]
        Live dashboard over a running daemon's ``metrics`` op: server
        gauges (sessions, in-flight), per-op request counts and latency
        quantiles, per-session queue depth and engine counters.
        ``--prometheus`` dumps the raw exposition text instead.

    repro trace spans.jsonl [--session NAME] [--run ID]
        Fold a ``REPRO_TRACE`` span log (JSONL emitted by
        :mod:`repro.obs`) into a per-phase wall-time timeline table.

    repro lint [paths...] [--strict] [--format human|json|github]
               [--select RULE-ID] [--baseline FILE] [--update-baseline]
        Run the project's static analyzer (:mod:`repro.analysis`):
        determinism, float-exactness, lock-discipline and fork-safety
        rules over the source tree.  Exit 0 clean, 1 findings, 2 usage
        errors; per-line suppressions via ``# repro: allow[rule-id]``.

The module is installed as the ``repro`` console script via
``[project.scripts]`` and is equally runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.geometry.layout import Layout


def _load_layout(path: Path) -> Layout:
    """Load a design file, reporting corruption as one-line user errors.

    A missing file surfaces as :class:`OSError`; corrupt JSON is
    reported ``file:line:col: message`` (no traceback), and a JSON file
    whose *shape* is wrong (missing keys, wrong types) is wrapped into a
    :class:`ValueError` naming the file instead of leaking a bare
    ``KeyError`` traceback to the terminal.
    """
    from repro.designio import load_cells, load_layout_json

    try:
        if path.suffix == ".cells":
            return load_cells(path)
        return load_layout_json(path)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}:{exc.lineno}:{exc.colno}: invalid JSON: {exc.msg}"
        ) from None
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path}: malformed design file: {exc}") from None
    except ValueError as exc:
        # Value-level errors (e.g. a negative cell width) already carry
        # file:line context from the bookshelf parser; bare ones from
        # the JSON path still need the file named.
        if str(exc).startswith(str(path)):
            raise
        raise ValueError(f"{path}: {exc}") from None


def _load_stream(path: Path):
    """Load a delta stream with the same error reporting as designs."""
    from repro.incremental import load_delta_stream

    try:
        return load_delta_stream(path)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}:{exc.lineno}:{exc.colno}: invalid JSON: {exc.msg}"
        ) from None
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path}: malformed delta stream: {exc}") from None
    except ValueError as exc:
        if str(exc).startswith(str(path)):
            raise
        raise ValueError(f"{path}: {exc}") from None


def _save_layout(layout: Layout, path: Path) -> None:
    from repro.designio import save_cells, save_layout_json

    if path.suffix == ".cells":
        save_cells(layout, path)
    else:
        save_layout_json(layout, path)


def _make_legalizer(backend: str):
    from repro.mgl.legalizer import fast_mgl_legalizer

    return fast_mgl_legalizer(backend)


def _print_run(layout: Layout, result, *, check: bool = True) -> int:
    from repro.legality import LegalityChecker
    from repro.perf.report import feasibility_summary, shard_summary

    print(f"result       : AveDis {result.average_displacement:.4f} row heights, "
          f"{len(result.trace.targets)} targets, wall {result.wall_seconds:.3f}s")
    print(f"work         : {result.trace.summary()}")
    print(f"feasibility  : {feasibility_summary(result.trace)}")
    print(f"host         : {shard_summary(result.trace)}")
    if not result.success:
        print(f"FAILED cells : {result.failed_cells}", file=sys.stderr)
        return 1
    if check:
        report = LegalityChecker().check(layout)
        print(f"legality     : {report.summary()}")
        if not report.legal:
            return 1
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_legalize(args: argparse.Namespace) -> int:
    layout = _load_layout(args.design)
    print("input design :", layout.summary())
    legalizer = _make_legalizer(args.backend)
    result = legalizer.legalize(layout)
    status = _print_run(layout, result)
    if args.output is not None:
        _save_layout(layout, args.output)
        print(f"saved        : {args.output}")
    return status


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchgen import DesignSpec, generate_design

    spec = DesignSpec(
        name="bench",
        num_cells=args.cells,
        density=args.density,
        seed=args.seed,
    )
    layout = generate_design(spec)
    print("design       :", layout.summary())
    legalizer = _make_legalizer(args.backend)
    start = time.perf_counter()
    result = legalizer.legalize(layout)
    wall = time.perf_counter() - start
    status = _print_run(layout, result)
    rate = len(result.trace.targets) / wall if wall > 0 else float("inf")
    print(f"throughput   : {rate:.1f} cells/s on backend {args.backend!r}")
    return status


def _drift_knobs(args: argparse.Namespace) -> dict:
    """Displacement-budget knobs shared by the replay and soak modes.

    Negative values disable a knob (argparse has no None spelling), so
    ``--max-drift -1`` runs the pure incremental engine.
    """
    return dict(
        max_avedis_drift=(
            args.max_drift if args.max_drift is not None and args.max_drift >= 0 else None
        ),
        repack_every=(
            args.repack_every if args.repack_every and args.repack_every > 0 else None
        ),
        max_fragmentation_drift=(
            args.max_frag_drift
            if args.max_frag_drift is not None and args.max_frag_drift >= 0
            else None
        ),
    )


def cmd_eco(args: argparse.Namespace) -> int:
    from repro.incremental import IncrementalLegalizer, save_delta_stream
    from repro.legality import LegalityChecker
    from repro.perf.report import incremental_summary

    layout = _load_layout(args.design)
    if args.generate:
        from repro.benchgen import EcoSpec, generate_eco_stream

        if args.deltas is None:
            raise ValueError("eco --generate needs a DELTAS output path")
        spec = EcoSpec(
            churn=args.churn,
            batches=args.batches,
            seed=args.seed,
            macro_move_probability=args.macro_churn,
        )
        stream = generate_eco_stream(layout, spec)
        save_delta_stream(stream, args.deltas)
        print(f"wrote {sum(len(b) for b in stream)} deltas in "
              f"{len(stream)} batches to {args.deltas}")
        return 0

    if args.soak:
        return _run_soak(args, layout)

    if args.deltas is None:
        raise ValueError("eco needs a DELTAS file to replay (or --generate / --soak)")
    stream = _load_stream(args.deltas)
    print("input design :", layout.summary())
    engine = IncrementalLegalizer(
        _make_legalizer(args.backend),
        full_threshold=args.churn_threshold,
        **_drift_knobs(args),
    )
    base = engine.begin(layout)
    if base is not None:
        print(f"base run     : AveDis {base.average_displacement:.4f}, "
              f"wall {base.wall_seconds:.3f}s")
    status = 0
    for i, batch in enumerate(stream):
        result = engine.apply(batch)
        print(f"batch {i:<3}    : {incremental_summary(result.stats)}")
        if not result.success:
            print(f"FAILED cells : {result.legalization.failed_cells}", file=sys.stderr)
            status = 1
    report = LegalityChecker().check(layout)
    print(f"legality     : {report.summary()}")
    final = engine.history[-1] if engine.history else None
    if final is not None:
        total_dirty = sum(s.dirty_total for s in engine.history)
        print(f"stream total : {len(stream)} batches, {total_dirty} cells "
              f"re-legalized, {engine.repacks_total} repacks, "
              f"{sum(s.wall_seconds for s in engine.history):.3f}s")
    if args.output is not None:
        _save_layout(layout, args.output)
        print(f"saved        : {args.output}")
    return status if report.legal else 1


def _run_soak(args: argparse.Namespace, layout: Layout) -> int:
    """``repro eco --soak``: long-stream quality-drift soak of a design."""
    from repro.experiments.eco_soak import soak_layout, soak_result_table
    from repro.legality import LegalityChecker

    knobs = _drift_knobs(args)
    if args.max_drift is None:
        # The soak exists to exercise the governor: default the budget on.
        knobs["max_avedis_drift"] = 0.05
    print("input design :", layout.summary())
    payload = soak_layout(
        layout,
        batches=args.soak_batches,
        churn=args.churn,
        backend=args.backend,
        eco_seed=args.seed,
        macro_move_probability=args.macro_churn,
        full_threshold=args.churn_threshold,
        **knobs,
    )
    print(soak_result_table(payload, sample_every=args.sample_every).format())
    if args.soak_json is not None:
        Path(args.soak_json).write_text(
            json.dumps(payload, indent=1), encoding="utf-8"
        )
        print(f"trajectory   : {args.soak_json}")
    report = LegalityChecker().check(layout)
    print(f"legality     : {report.summary()}")
    if args.output is not None:
        _save_layout(layout, args.output)
        print(f"saved        : {args.output}")
    status = 0 if report.legal and not payload["final"]["failed_batches"] else 1
    return status


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LegalizationServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_inflight=args.max_inflight,
        default_backend=args.backend,
    )
    server = LegalizationServer(config).start()
    host, port = server.address
    print(f"repro serve: listening on {host}:{port} "
          f"(backend {args.backend!r}, max {args.max_sessions} sessions / "
          f"{args.max_inflight} in-flight batches)", flush=True)
    if args.port_file is not None:
        args.port_file.write_text(f"{port}\n", encoding="utf-8")
    try:
        server.serve_forever()
        print("repro serve: shutdown requested, drained", flush=True)
    except KeyboardInterrupt:
        print("repro serve: interrupt, draining sessions", file=sys.stderr)
        server.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.designio import layout_from_dict, save_layout_json
    from repro.legality import LegalityChecker
    from repro.service import ServiceClient, ServiceError

    layout = _load_layout(args.design)
    stream = _load_stream(args.deltas)
    config = {
        "backend": args.backend,
        "worker_budget": args.worker_budget,
        "full_threshold": args.churn_threshold,
        **{k: v for k, v in _drift_knobs(args).items() if v is not None},
    }
    config = {k: v for k, v in config.items() if v is not None}
    try:
        client = ServiceClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        raise ValueError(
            f"cannot reach daemon at {args.host}:{args.port}: {exc}"
        ) from None
    status = 0
    with client:
        handle = client.open_session(layout, session=args.session, config=config)
        opened = handle.opened
        print(f"session      : {handle.name} on {args.host}:{args.port} "
              f"({opened['num_movable']} movable cells, "
              f"base AveDis {opened['base_avedis']:.4f})")
        for i, batch in enumerate(stream):
            try:
                r = handle.apply(batch)
            except ServiceError as exc:
                print(f"batch {i:<3}    : REJECTED [{exc.code}] {exc.detail}",
                      file=sys.stderr)
                status = 1
                continue
            print(f"batch {i:<3}    : mode={r['mode']} deltas={r['deltas_applied']} "
                  f"dirty={r['dirty_total']}/{r['num_movable']} "
                  f"reused={r['reused_cells']} AveDis={r['avedis']:.4f} "
                  f"(drift {r['avedis_drift'] * 100.0:+.1f}%) "
                  f"wall={r['wall_seconds']:.3f}s")
            if not r["success"]:
                status = 1
        if args.repack:
            r = handle.repack(wait=True)
            print(f"repack       : AveDis={r['avedis']:.4f} wall={r['wall_seconds']:.3f}s")
        final = handle.close(return_layout=args.output is not None)
        engine = final["engine"]
        print(f"stream total : {engine['batches']} batches, "
              f"{engine['cells_relegalized']} cells re-legalized, "
              f"{engine['repacks_total']} repacks, "
              f"{final['failed_batches']} failed, "
              f"{final['coalesced_batches']} coalesced, "
              f"{engine['wall_seconds']:.3f}s engine time")
        print(f"fingerprint  : {final['fingerprint']}")
        if final["failed_batches"] or final["async_errors"]:
            status = 1
        if args.verify:
            match = handle.verify(final)
            print(f"verify       : {'bit-for-bit MATCH' if match else 'MISMATCH'} "
                  "vs offline replay of the served ledger")
            if not match:
                status = 1
        if args.output is not None:
            served = layout_from_dict(final["layout"])
            report = LegalityChecker().check(served)
            print(f"legality     : {report.summary()}")
            save_layout_json(served, args.output)
            print(f"saved        : {args.output}")
            if not report.legal:
                status = 1
        if args.shutdown:
            client.shutdown()
            print("daemon       : shutdown requested")
    return status


def _print_top(response: dict) -> None:
    """Render one ``metrics`` scrape as the ``repro top`` dashboard."""
    from repro.obs.metrics import histogram_quantile
    from repro.perf.report import format_table

    server = response.get("server", {})
    draining = " (draining)" if server.get("draining") else ""
    print(f"server       : {server.get('sessions', 0)}/{server.get('max_sessions', '?')} "
          f"sessions, {server.get('inflight', 0)}/{server.get('max_inflight', '?')} "
          f"in-flight{draining}")

    snapshot = response.get("metrics", {})
    requests: dict = {}
    for counter in snapshot.get("counters", []):
        if counter["name"] != "repro_requests_total":
            continue
        labels = dict(counter["labels"])
        entry = requests.setdefault(labels.get("op", "?"), {"total": 0.0, "errors": 0.0})
        entry["total"] += counter["value"]
        if labels.get("status") != "ok":
            entry["errors"] += counter["value"]
    latencies = {}
    for hist in snapshot.get("histograms", []):
        if hist["name"] == "repro_op_latency_seconds":
            latencies[dict(hist["labels"]).get("op", "?")] = hist
    rows = []
    for op in sorted(set(requests) | set(latencies)):
        entry = requests.get(op, {"total": 0.0, "errors": 0.0})
        hist = latencies.get(op)
        mean = hist["sum"] / hist["count"] if hist and hist["count"] else 0.0
        rows.append([
            op,
            int(entry["total"]),
            int(entry["errors"]),
            mean,
            histogram_quantile(hist, 0.5) if hist else 0.0,
            histogram_quantile(hist, 0.95) if hist else 0.0,
        ])
    if rows:
        print(format_table(
            ["op", "count", "errors", "mean_s", "p50_s", "p95_s"],
            rows, float_format="{:.4f}",
        ))

    for name, info in sorted(response.get("sessions", {}).items()):
        engine = info.get("engine", {})
        print(f"session {name}: queue={info.get('queue_depth', 0)} "
              f"dispatches={info.get('dispatches', 0)} "
              f"coalesced={info.get('coalesced_batches', 0)} "
              f"failed={info.get('failed_batches', 0)} "
              f"batches={engine.get('batches', 0)} "
              f"repacks={engine.get('repacks_total', 0)} "
              f"engine_wall={engine.get('wall_seconds', 0.0):.3f}s")


def cmd_top(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    try:
        client = ServiceClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        raise ValueError(
            f"cannot reach daemon at {args.host}:{args.port}: {exc}"
        ) from None
    with client:
        try:
            while True:
                response = client.metrics(
                    format="prometheus" if args.prometheus else None
                )
                if args.prometheus:
                    print(response["text"], end="", flush=True)
                else:
                    _print_top(response)
                if args.once:
                    return 0
                print(flush=True)
                time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_events
    from repro.perf.report import span_timeline_table

    events = load_events(args.log)
    if args.session is not None:
        events = [e for e in events if e.get("session") == args.session]
    if args.run is not None:
        events = [e for e in events if e.get("run") == args.run]
    spans = sum(1 for e in events if e.get("ev") == "span")
    points = sum(1 for e in events if e.get("ev") == "event")
    print(f"span log     : {args.log} — {spans} spans, {points} events")
    if not spans:
        print("no span records matched; was the log written with "
              f"REPRO_TRACE set{' / the given filter' if args.session or args.run else ''}?",
              file=sys.stderr)
        return 1
    print(span_timeline_table(events))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLEX legalization reproduction: legalize, bench and replay ECO streams.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_leg = sub.add_parser("legalize", help="legalize a design file (JSON or .cells)")
    p_leg.add_argument("design", type=Path, help="input design (.json or .cells)")
    p_leg.add_argument("-o", "--output", type=Path, default=None,
                       help="write the legalized layout here (.json or .cells)")
    p_leg.add_argument("--backend", default="numpy",
                       help="kernel backend (python, numpy, multiprocess[:N])")
    p_leg.set_defaults(func=cmd_legalize)

    p_bench = sub.add_parser("bench", help="generate a synthetic design and legalize it")
    p_bench.add_argument("--cells", type=int, default=800, help="movable cell count")
    p_bench.add_argument("--density", type=float, default=0.65, help="design density")
    p_bench.add_argument("--seed", type=int, default=42, help="generator seed")
    p_bench.add_argument("--backend", default="numpy",
                         help="kernel backend (python, numpy, multiprocess[:N])")
    p_bench.set_defaults(func=cmd_bench)

    p_eco = sub.add_parser(
        "eco", help="replay (or generate) an ECO delta stream against a design, "
                    "or soak it over a long stream"
    )
    p_eco.add_argument("design", type=Path, help="input design (.json or .cells)")
    p_eco.add_argument("deltas", type=Path, nargs="?", default=None,
                       help="delta-stream JSON (read, or written with --generate; "
                            "unused with --soak)")
    p_eco.add_argument("-o", "--output", type=Path, default=None,
                       help="write the final layout here (.json or .cells)")
    p_eco.add_argument("--backend", default="numpy",
                       help="kernel backend (python, numpy, multiprocess[:N])")
    p_eco.add_argument("--churn-threshold", type=float, default=0.5,
                       help="dirty fraction above which a full re-legalization runs "
                            "(default 0.5)")
    p_eco.add_argument("--max-drift", type=float, default=None,
                       help="relative AveDis drift budget triggering a repack "
                            "(e.g. 0.05; negative disables; default off, "
                            "0.05 under --soak)")
    p_eco.add_argument("--repack-every", type=int, default=None,
                       help="scheduled repack period in batches (default off)")
    p_eco.add_argument("--max-frag-drift", type=float, default=None,
                       help="absolute free-space fragmentation growth budget "
                            "triggering a repack (negative disables; default off)")
    p_eco.add_argument("--generate", action="store_true",
                       help="generate a seeded delta stream into DELTAS instead of replaying")
    p_eco.add_argument("--churn", type=float, default=0.05,
                       help="with --generate/--soak: fraction of cells touched per batch")
    p_eco.add_argument("--batches", type=int, default=3,
                       help="with --generate: number of delta batches")
    p_eco.add_argument("--seed", type=int, default=0,
                       help="with --generate/--soak: stream seed")
    p_eco.add_argument("--macro-churn", type=float, default=0.0,
                       help="with --generate/--soak: per-batch fixed-macro move probability")
    p_eco.add_argument("--soak", action="store_true",
                       help="long-stream quality-drift soak: generate and replay "
                            "--soak-batches seeded batches, record the AveDis/"
                            "fragmentation trajectory, compare the final layout "
                            "against a from-scratch full legalization")
    p_eco.add_argument("--soak-batches", type=int, default=200,
                       help="with --soak: number of delta batches (default 200)")
    p_eco.add_argument("--soak-json", type=Path, default=None,
                       help="with --soak: write the trajectory payload here "
                            "(e.g. BENCH_eco_soak.json)")
    p_eco.add_argument("--sample-every", type=int, default=10,
                       help="with --soak: trajectory table sampling period")
    p_eco.set_defaults(func=cmd_eco)

    p_serve = sub.add_parser(
        "serve", help="run the legalization daemon (sessions + ECO batches "
                      "over length-prefixed JSON frames)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=7733,
                         help="bind port (0 = ephemeral; default 7733)")
    p_serve.add_argument("--port-file", type=Path, default=None,
                         help="write the bound port here (for scripts/CI)")
    p_serve.add_argument("--backend", default="numpy",
                         help="default kernel backend of sessions that do not "
                              "choose one (python, numpy, multiprocess[:N])")
    p_serve.add_argument("--max-sessions", type=int, default=8,
                         help="admission control: max concurrently open sessions")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         help="admission control: max delta batches queued or "
                              "applying across all sessions")
    p_serve.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="stream an ECO delta file to a running daemon session"
    )
    p_sub.add_argument("design", type=Path, help="input design (.json or .cells)")
    p_sub.add_argument("deltas", type=Path, help="delta-stream JSON to replay")
    p_sub.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_sub.add_argument("--port", type=int, default=7733, help="daemon port")
    p_sub.add_argument("--timeout", type=float, default=120.0,
                       help="per-request socket timeout in seconds")
    p_sub.add_argument("--session", default=None,
                       help="session name (default: daemon-assigned)")
    p_sub.add_argument("--backend", default=None,
                       help="session kernel backend (default: daemon default)")
    p_sub.add_argument("--worker-budget", type=int, default=None,
                       help="per-session multiprocess worker cap")
    p_sub.add_argument("--churn-threshold", type=float, default=None,
                       help="dirty fraction above which the session runs a "
                            "full re-legalization")
    p_sub.add_argument("--max-drift", type=float, default=None,
                       help="relative AveDis drift budget triggering a repack "
                            "(negative disables)")
    p_sub.add_argument("--repack-every", type=int, default=None,
                       help="scheduled repack period in batches")
    p_sub.add_argument("--max-frag-drift", type=float, default=None,
                       help="absolute fragmentation growth budget (negative disables)")
    p_sub.add_argument("--repack", action="store_true",
                       help="request one explicit repack after the stream")
    p_sub.add_argument("--verify", action="store_true",
                       help="offline-replay the served ledger and require a "
                            "bit-for-bit fingerprint match")
    p_sub.add_argument("-o", "--output", type=Path, default=None,
                       help="fetch the final served layout and write it here")
    p_sub.add_argument("--shutdown", action="store_true",
                       help="ask the daemon to drain and exit afterwards")
    p_sub.set_defaults(func=cmd_submit)

    p_top = sub.add_parser(
        "top", help="live dashboard over a running daemon's metrics op"
    )
    p_top.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_top.add_argument("--port", type=int, default=7733, help="daemon port")
    p_top.add_argument("--timeout", type=float, default=10.0,
                       help="per-request socket timeout in seconds")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds (default 2.0)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (for scripts/CI)")
    p_top.add_argument("--prometheus", action="store_true",
                       help="print the Prometheus exposition text instead of "
                            "the dashboard")
    p_top.set_defaults(func=cmd_top)

    p_lint = sub.add_parser(
        "lint", help="static analysis: determinism / float-exactness / "
                     "lock-discipline / fork-safety rules"
    )
    from repro.analysis.cli import add_lint_arguments, cmd_lint

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_trace = sub.add_parser(
        "trace", help="fold a REPRO_TRACE span log into a per-phase timeline"
    )
    p_trace.add_argument("log", type=Path, help="span log (JSONL) to aggregate")
    p_trace.add_argument("--session", default=None,
                         help="only events carrying this session id")
    p_trace.add_argument("--run", default=None,
                         help="only events carrying this run id")
    p_trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (``repro`` / ``python -m repro``).

    Subcommand exit codes propagate unchanged (0 success, 1 failed
    legalization / legality); user errors — missing or corrupt design
    and delta files, bad parameter values — exit 2 with a one-line
    ``file:line``-style message instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro ... | head`): not an error.
        # Point stdout at devnull so interpreter shutdown doesn't raise
        # again while flushing the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except OSError as exc:
        # Bad paths: prefer the "path: reason" spelling over the raw
        # "[Errno 2] ..." repr.
        detail = (
            f"{exc.filename}: {exc.strerror}"
            if exc.filename and exc.strerror
            else str(exc)
        )
        print(f"repro {args.command}: error: {detail}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Malformed design/delta files and bad parameters are user
        # errors: report them in one line instead of a traceback.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # A structured daemon rejection (ServiceError) is a user-facing
        # condition, not a crash; anything else keeps its traceback.
        # Imported lazily: only the serve/submit paths load the service
        # stack at all.
        from repro.service.client import ServiceError

        if isinstance(exc, ServiceError):
            print(f"repro {args.command}: error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
