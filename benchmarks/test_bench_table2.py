"""Benchmark: regenerate Table 2 (FPGA resource consumption)."""

from __future__ import annotations

from repro.experiments.table2 import run_table2

from repro.testing.bench import run_once


def test_table2_resources(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.format())
    one, two = result.rows[0], result.rows[1]
    assert one[1:5] == [59837, 67326, 391, 8]
    assert two[1:5] == [86632, 91603, 738, 12]
    # The second PE costs less than doubling (the region sorter is shared).
    assert two[1] < 2 * one[1]
