"""Benchmark: the Sec. 5.4 scalability comparison (FLEX PEs vs CPU threads)."""

from __future__ import annotations

from repro.experiments.scalability import run_scalability

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, run_once


def test_scalability_flex_vs_cpu(benchmark):
    result = run_once(
        benchmark, run_scalability, "des_perf_b_md2", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    flex_rows = [r for r in result.rows if r[0].startswith("FLEX")]
    cpu_rows = [r for r in result.rows if r[0].startswith("CPU")]
    # FLEX: near-linear up to 2 PEs (paper: ~1.7x), still improving at 3.
    assert 1.5 <= flex_rows[1][2] <= 2.0
    assert flex_rows[2][2] > flex_rows[1][2]
    # CPU: saturates around 1.8x.
    assert cpu_rows[-1][2] <= 1.85
    # FLEX's 2-PE self-speedup beats the CPU's 8-thread self-speedup ratio
    # relative to the added hardware (2x PEs vs 8x threads).
    assert flex_rows[1][2] > cpu_rows[-1][2] / 2
