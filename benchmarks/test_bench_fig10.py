"""Benchmark: regenerate Fig. 10 — CPU/FPGA task assignment comparison."""

from __future__ import annotations

from repro.experiments.fig10 import run_fig10_task_assignment

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_fig10_task_assignment(benchmark):
    result = run_once(
        benchmark, run_fig10_task_assignment, FIGURE_NAMES, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    average = result.extras["average_speedup"]
    # Paper: keeping insert & update on the CPU is ~1.2x faster on average.
    assert 1.05 <= average <= 1.7
    for row in result.rows[:-1]:
        assert row[3] >= 1.0  # never slower to keep update on the CPU
