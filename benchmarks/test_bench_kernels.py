"""Micro-benchmarks of the core kernels (ablation-style).

These complement the table/figure regenerations with pytest-benchmark
timings of the two cell-shifting engines and the two curve-pipeline
organisations on identical inputs, plus the sliding-window ordering
against the plain size ordering — the design choices DESIGN.md calls out.

The ``test_bench_backend_*`` cases additionally compare the registered
kernel backends (:mod:`repro.kernels`) on identical inputs: the SACS
chains, the curve pipeline, full FOP, and an end-to-end legalization of
an ICCAD-2017-like design.  Backends are bit-for-bit equivalent (the
cases assert it), so the timing delta is the whole story; run e.g.::

    REPRO_BENCH_SCALE=0.008 pytest benchmarks -k backend --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.benchgen import DesignSpec, generate_design, iccad2017_design
from repro.core import FlexConfig, FlexLegalizer
from repro.core.ordering import SlidingWindowOrdering
from repro.core.sacs import SortAheadShifter, build_sacs_context, shift_cells_sacs
from repro.geometry import Cell, Window
from repro.kernels import available_backends, get_kernel_backend
from repro.mgl.curves import minimize_curves, minimize_curves_fwd_bwd
from repro.mgl.fop import FOPConfig, build_curves, find_optimal_position
from repro.mgl.insertion import enumerate_all_insertion_points
from repro.mgl.legalizer import size_descending_order
from repro.mgl.local_region import build_local_region
from repro.mgl.premove import premove
from repro.mgl.shifting import build_row_view, shift_cells_original
from repro.testing.bench import BENCH_SCALE, BENCH_SEED, run_once


def _obstacle_region(num_cells=260, density=0.65, seed=13, target_height=2):
    """A realistic localRegion over a legalized neighbourhood."""
    spec = DesignSpec(
        name="bench", num_cells=num_cells, density=density, seed=seed,
        perturbation_x=0.0, perturbation_y=0.0,
    )
    layout = generate_design(spec)
    premove(layout)
    accepted = []
    for cell in layout.movable_cells():
        if not any(cell.overlaps(o) for o in accepted):
            cell.legalized = True
            accepted.append(cell)
    layout.rebuild_index()
    target = Cell(
        index=len(layout.cells), width=4.0, height=target_height,
        gp_x=layout.width / 2, gp_y=layout.height / 2,
    )
    layout.add_cell(target)
    window = Window(
        layout.width * 0.25, layout.width * 0.75, 0, layout.num_rows
    )
    region, _ = build_local_region(layout, target, window)
    points = list(enumerate_all_insertion_points(region, target))
    return layout, target, region, points


@pytest.fixture(scope="module")
def shifting_case():
    return _obstacle_region()


def test_bench_original_cell_shifting(benchmark, shifting_case):
    """Multi-pass cell shifting over every insertion point of a region."""
    _, target, region, points = shifting_case
    view = build_row_view(region)

    def run():
        return [shift_cells_original(region, target, p, view) for p in points]

    outcomes = benchmark(run)
    assert any(o.feasible for o in outcomes)


def test_bench_sacs_cell_shifting(benchmark, shifting_case):
    """Single-pass SACS over the same insertion points (should be faster)."""
    _, target, region, points = shifting_case
    context = build_sacs_context(region)

    def run():
        return [shift_cells_sacs(region, target, p, context) for p in points]

    outcomes = benchmark(run)
    assert any(o.feasible for o in outcomes)


def test_bench_curve_pipeline_original(benchmark, shifting_case):
    """Original five-stage breakpoint pipeline over a region's curves."""
    _, target, region, points = shifting_case
    context = build_sacs_context(region)
    cases = []
    for p in points[:64]:
        outcome = shift_cells_sacs(region, target, p, context)
        if outcome.feasible:
            pieces, const = build_curves(region, target, p.bottom_row, outcome, 10.0)
            cases.append((pieces, const, outcome.xt_lo, outcome.xt_hi))

    def run():
        return [minimize_curves(p, c, lo, hi) for p, c, lo, hi in cases]

    results = benchmark(run)
    assert results


def test_bench_curve_pipeline_fwd_bwd(benchmark, shifting_case):
    """Reorganised fwdtraverse/bwdtraverse pipeline on the same curves."""
    _, target, region, points = shifting_case
    context = build_sacs_context(region)
    cases = []
    for p in points[:64]:
        outcome = shift_cells_sacs(region, target, p, context)
        if outcome.feasible:
            pieces, const = build_curves(region, target, p.bottom_row, outcome, 10.0)
            cases.append((pieces, const, outcome.xt_lo, outcome.xt_hi))

    def run():
        return [minimize_curves_fwd_bwd(p, c, lo, hi) for p, c, lo, hi in cases]

    results = benchmark(run)
    assert results


def test_bench_fop_single_target(benchmark, shifting_case):
    """Full FOP (loop1-3) for one target cell."""
    _, target, region, _ = shifting_case

    def run():
        return find_optimal_position(region, target, FOPConfig(shifter=SortAheadShifter()))

    result = benchmark(run)
    assert result.feasible


# ----------------------------------------------------------------------
# Kernel-backend comparisons (python reference vs vectorized numpy vs
# multiprocess sharding)
# ----------------------------------------------------------------------
#: Always the live registry — never hard-code backend names here, or new
#: backends silently stop being benched and equivalence-checked.
BACKENDS = available_backends()


def test_bench_parametrization_tracks_registry():
    """Guard: the bench matrix must follow the backend registry."""
    assert BACKENDS == available_backends()
    assert "python" in BACKENDS
    assert "multiprocess" in BACKENDS


def _dense_region(num_cells=700, density=0.8, seed=11, target_height=2):
    """A large, dense localRegion — the regime the vectorized kernels target."""
    return _obstacle_region(
        num_cells=num_cells, density=density, seed=seed, target_height=target_height
    )


@pytest.fixture(scope="module")
def dense_shifting_case():
    return _dense_region()


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_backend_sacs_chains(benchmark, dense_shifting_case, backend_name):
    """SACS chain evaluation over every insertion point, per backend."""
    _, target, region, points = dense_shifting_case
    backend = get_kernel_backend(backend_name)
    context = backend.build_sacs_context(region)

    def run():
        return [backend.shift_sacs(region, target, p, context) for p in points]

    outcomes = benchmark(run)
    assert any(o.feasible for o in outcomes)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_backend_curve_pipeline(benchmark, dense_shifting_case, backend_name):
    """Curve construction + minimization over feasible points, per backend."""
    _, target, region, points = dense_shifting_case
    backend = get_kernel_backend(backend_name)
    reference = get_kernel_backend("python")
    context = reference.build_sacs_context(region)
    cases = []
    for p in points:
        outcome = reference.shift_sacs(region, target, p, context)
        if outcome.feasible:
            cases.append((p, outcome))

    def run():
        out = []
        for p, outcome in cases:
            curves = backend.build_curves(region, target, p.bottom_row, outcome, 10.0)
            out.append(
                backend.minimize(
                    curves, outcome.xt_lo, outcome.xt_hi,
                    preferred_x=target.gp_x, fwd_bwd=True,
                )
            )
        return out

    results = benchmark(run)
    reference_results = [
        reference.minimize(
            reference.build_curves(region, target, p.bottom_row, o, 10.0),
            o.xt_lo, o.xt_hi, preferred_x=target.gp_x, fwd_bwd=True,
        )
        for p, o in cases
    ]
    assert results == reference_results  # backends must agree bit for bit


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_backend_fop(benchmark, dense_shifting_case, backend_name):
    """Full FOP (loop1-3) for one target on a dense region, per backend."""
    _, target, region, _ = dense_shifting_case
    config = FOPConfig(
        shifter=SortAheadShifter(backend=backend_name),
        backend=backend_name,
        use_fwd_bwd_pipeline=True,
    )

    def run():
        return find_optimal_position(region, target, config)

    result = benchmark(run)
    reference = find_optimal_position(
        region, target,
        FOPConfig(shifter=SortAheadShifter(), use_fwd_bwd_pipeline=True),
    )
    assert (result.feasible, result.bottom_row, result.x, result.cost) == (
        reference.feasible, reference.bottom_row, reference.x, reference.cost
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_backend_iccad_legalization(benchmark, backend_name):
    """End-to-end FLEX legalization of an ICCAD-2017-like design per backend.

    Uses 4x the harness scale so the regions are large enough for the
    vectorized regime while staying tractable for the python reference.
    """
    layout = iccad2017_design(
        "des_perf_1", scale=min(4 * BENCH_SCALE, 0.01), seed=BENCH_SEED
    )
    flex = FlexLegalizer(FlexConfig(kernel_backend=backend_name))

    result = run_once(benchmark, flex.legalize, layout)
    assert result.legalization.success
    assert result.trace.kernel_backend == backend_name


def test_bench_mp_worker_sweep(benchmark):
    """Measured multiprocess worker sweep on a dense ICCAD-like design.

    Runs the sequential ``numpy`` baseline and the ``multiprocess``
    backend at several pool sizes on the same dense design, asserts the
    results are bit-for-bit identical, and records the wall times and
    speedups both into the pytest-benchmark ``extra_info`` (so they land
    in ``--benchmark-json`` output) and into ``BENCH_mp_workers.json``
    in the working directory (uploaded as a CI artifact, and gated by
    ``check_regression.py --mp-sweep``).  Each configuration reports the
    best of two runs, so the multiprocess rows measure the warm
    persistent-pool path rather than first-fork latency.  The >=1.2x
    speedup assertion is gated on the host having at least 4 cores AND
    the design being large enough (>= scale 0.008) for heavy regions to
    exist — intra-region chunking cannot beat the sequential baseline on
    fewer cores or on tiny smoke-scale designs where no region clears
    the parallelization threshold.
    """
    import json
    import os

    from repro.experiments.scalability import run_worker_scalability

    scale = min(4 * BENCH_SCALE, 0.01)
    result = run_once(
        benchmark,
        run_worker_scalability,
        "des_perf_1",
        scale=scale,
        seed=BENCH_SEED,
        worker_counts=(2, 4),
        repeat=2,
    )
    print()
    print(result.format())
    baseline_row = result.rows[0]
    mp_rows = result.rows[1:]
    # Bit-for-bit: every row reports the same quality.
    assert all(row[5] == baseline_row[5] for row in mp_rows)
    payload = {
        "design": "des_perf_1",
        "cpu_count": os.cpu_count(),
        "rows": [
            dict(
                zip(
                    [
                        "backend", "workers", "wall_s", "speedup", "mode",
                        "avedis", "retry0_pct", "retries",
                    ],
                    row,
                )
            )
            for row in result.rows
        ],
    }
    benchmark.extra_info["mp_worker_sweep"] = payload
    with open("BENCH_mp_workers.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
    if (os.cpu_count() or 1) >= 4 and scale >= 0.008:
        best = max(row[3] for row in mp_rows if row[1] >= 4)
        assert best >= 1.2, (
            f"expected >=1.2x at 4+ workers on a {os.cpu_count()}-core host "
            f"(warm persistent pool, best of 2 runs); got {best:.2f}x"
        )


def test_bench_orderings(benchmark):
    """Sliding-window ordering vs plain size ordering on one design."""
    layout = generate_design(DesignSpec(name="ord", num_cells=800, density=0.6, seed=3))
    cells = layout.movable_cells()
    ordering = SlidingWindowOrdering(window_size=8)

    def run():
        return ordering(layout, cells), size_descending_order(layout, cells)

    window_order, size_order = benchmark(run)
    assert len(window_order) == len(size_order) == len(cells)
