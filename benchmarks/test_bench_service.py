"""Benchmark: the legalization service under concurrent client load.

Starts an in-process ``LegalizationServer``, drives it with N client
threads (each owning one session on its own design, streaming seeded
ECO batches over real sockets), and records request latency
percentiles, aggregate batch throughput and — the part the CI gate
actually cares about — per-session **mismatch counts**: after every
session closes, its served ledger is replayed offline and the placement
fingerprints compared.  Any daemon bug that lets concurrency, queueing
or coalescing change a single placement shows up here as a non-zero
mismatch count, and ``benchmarks/check_regression.py --service`` fails
the run.

The payload is written to ``BENCH_service.json`` (uploaded as a CI
artifact); the committed copy doubles as the latency/throughput
baseline shape for eyeballing runner drift.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from repro.benchgen import EcoSpec, generate_eco_stream
from repro.designio import layout_fingerprint, layout_to_dict
from repro.incremental import IncrementalLegalizer
from repro.obs.metrics import find_series, histogram_quantile
from repro.service import (
    LegalizationServer,
    ServeConfig,
    ServiceClient,
    SessionConfig,
    offline_replay,
)
from repro.testing import small_design
from repro.testing.bench import BENCH_SCALE, BENCH_SEED, run_once

#: Concurrent client threads (one session each).
CLIENTS = 4
#: Delta batches each client streams through its session.
BATCHES_PER_CLIENT = 12
#: Movable-cell scale of each session's design (scales with the env knob).
NUM_CELLS = max(120, int(round(100_000 * BENCH_SCALE)))
#: Per-batch churn of the generated streams.
CHURN = 0.03
#: Session config every client opens with.
SESSION_CONFIG = {
    "backend": "numpy",
    "worker_budget": 2,
    "max_avedis_drift": 0.05,
}


def _client_workload(i, design):
    """Pre-generate one client's design + delta stream (not timed)."""
    stream_base = design.copy()
    engine = IncrementalLegalizer(backend="python")
    engine.begin(stream_base)
    engine.close()
    stream = generate_eco_stream(
        stream_base,
        EcoSpec(churn=CHURN, batches=BATCHES_PER_CLIENT, seed=BENCH_SEED + i),
    )
    return [[d.to_dict() for d in batch] for batch in stream]


def run_service_bench():
    """One full concurrent-service run; returns the JSON payload."""
    designs = [
        small_design(num_cells=NUM_CELLS, density=0.55, seed=BENCH_SEED + i)
        for i in range(CLIENTS)
    ]
    streams = [_client_workload(i, designs[i]) for i in range(CLIENTS)]

    latencies = [[] for _ in range(CLIENTS)]
    finals = [None] * CLIENTS
    errors = []
    server = LegalizationServer(ServeConfig(port=0)).start()
    try:
        host, port = server.address

        def run_client(i):
            try:
                client = ServiceClient(host, port, timeout=120.0)
                try:
                    handle = client.open_session(
                        designs[i],
                        session=f"bench_service-{i}",
                        config=SESSION_CONFIG,
                    )
                    for batch in streams[i]:
                        start = time.perf_counter()
                        result = handle.apply(batch)
                        latencies[i].append(time.perf_counter() - start)
                        assert result["success"], f"client {i}: batch failed"
                    finals[i] = handle.close()
                finally:
                    client.close()
            except Exception as exc:  # surface in the calling thread
                errors.append(f"client {i}: {type(exc).__name__}: {exc}")

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=run_client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start
        # One live scrape before teardown: the daemon's own view of the
        # run via the metrics op (the registry is process-global, so the
        # absolute values are floors, not exact per-run counts).
        with ServiceClient(host, port, timeout=30.0) as scraper:
            scrape = scraper.metrics()["metrics"]
    finally:
        server.close()
    assert not errors, "; ".join(errors)

    op_hist = find_series(
        scrape, "histograms", "repro_op_latency_seconds", op="apply_deltas"
    )
    wait_hist = find_series(scrape, "histograms", "repro_queue_wait_seconds")
    daemon_metrics = {
        "apply_deltas_requests": sum(
            c["value"]
            for c in scrape["counters"]
            if c["name"] == "repro_requests_total"
            and c["labels"].get("op") == "apply_deltas"
        ),
        "apply_deltas_p95_s": histogram_quantile(op_hist, 0.95) if op_hist else 0.0,
        "queue_wait_p95_s": histogram_quantile(wait_hist, 0.95) if wait_hist else 0.0,
        "coalesced_batches_total": sum(
            c["value"]
            for c in scrape["counters"]
            if c["name"] == "repro_session_coalesced_batches_total"
        ),
    }
    assert daemon_metrics["apply_deltas_requests"] >= CLIENTS * BATCHES_PER_CLIENT
    assert op_hist is not None and op_hist["count"] >= CLIENTS * BATCHES_PER_CLIENT

    # The exactness audit: replay every session's ledger offline.
    per_session = []
    for i, final in enumerate(finals):
        config = SessionConfig(
            **{k: v for k, v in final["config"].items() if v is not None}
        )
        replayed = offline_replay(layout_to_dict(designs[i]), final["ledger"], config)
        mismatches = int(layout_fingerprint(replayed) != final["fingerprint"])
        per_session.append(
            {
                "session": final["session"],
                "mismatches": mismatches,
                "failed_batches": final["failed_batches"],
                "drift": final["engine"]["avedis_drift"],
                "repacks": final["engine"]["repacks_total"],
                "dispatches": final["dispatches"],
                "coalesced_batches": final["coalesced_batches"],
            }
        )

    flat = np.array([lat for per in latencies for lat in per], dtype=float)
    payload = {
        "design": "bench_service",
        "clients": CLIENTS,
        "batches_per_client": BATCHES_PER_CLIENT,
        "knobs": {
            "num_cells": NUM_CELLS,
            "density": 0.55,
            "seed": BENCH_SEED,
            "churn": CHURN,
            **SESSION_CONFIG,
            "full_threshold": 0.5,
            "repack_every": None,
        },
        "latency": {
            "p50_s": float(np.percentile(flat, 50)),
            "p95_s": float(np.percentile(flat, 95)),
            "mean_s": float(flat.mean()),
            "max_s": float(flat.max()),
        },
        "throughput_batches_per_s": float(len(flat) / wall) if wall > 0 else 0.0,
        "wall_seconds": wall,
        "per_session": per_session,
        "mismatches": sum(s["mismatches"] for s in per_session),
        "failed_batches": sum(s["failed_batches"] for s in per_session),
        "max_drift": max(s["drift"] for s in per_session),
        "governor_budget": SESSION_CONFIG["max_avedis_drift"],
        "daemon_metrics": daemon_metrics,
    }
    return payload


def test_bench_service_concurrent_clients(benchmark):
    payload = run_once(benchmark, run_service_bench)
    benchmark.extra_info["service"] = {
        "latency": payload["latency"],
        "throughput_batches_per_s": payload["throughput_batches_per_s"],
        "mismatches": payload["mismatches"],
    }
    with open("BENCH_service.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)

    print()
    print(
        f"service: {payload['clients']} clients x "
        f"{payload['batches_per_client']} batches, "
        f"p50 {payload['latency']['p50_s'] * 1e3:.1f}ms "
        f"p95 {payload['latency']['p95_s'] * 1e3:.1f}ms, "
        f"{payload['throughput_batches_per_s']:.1f} batches/s"
    )
    for row in payload["per_session"]:
        print(
            f"  {row['session']}: mismatches={row['mismatches']} "
            f"failed={row['failed_batches']} drift={row['drift']:+.4f} "
            f"repacks={row['repacks']} dispatches={row['dispatches']} "
            f"coalesced={row['coalesced_batches']}"
        )

    dm = payload["daemon_metrics"]
    print(
        f"  daemon: {dm['apply_deltas_requests']:.0f} apply_deltas requests, "
        f"op p95 {dm['apply_deltas_p95_s'] * 1e3:.1f}ms, "
        f"queue-wait p95 {dm['queue_wait_p95_s'] * 1e3:.1f}ms, "
        f"coalesced {dm['coalesced_batches_total']:.0f}"
    )

    # The headline contract, asserted in-bench as well as by the CI gate.
    assert payload["mismatches"] == 0, (
        "served placements diverged from offline replay: "
        f"{payload['per_session']}"
    )
    assert payload["failed_batches"] == 0
