"""Compare a pytest-benchmark JSON run against a committed baseline.

The scheduled CI benchmark job runs the dense kernel-backend benches and
the multiprocess worker sweep with ``--benchmark-json=BENCH_full.json``
and then calls::

    python benchmarks/check_regression.py BENCH_full.json

which fails (exit code 1) when any benchmark's mean time is more than
``--threshold`` (default 20 %) slower than the committed baseline
(``benchmarks/bench_baseline.json``).  Faster runs and new benchmarks
never fail; benchmarks that disappeared from the run *fail*, so a
renamed bench cannot silently drop out of regression coverage (remove
stale baseline entries with ``--update``).  Side-payload gates
(``--eco-soak`` / ``--mp-sweep`` / ``--service``) likewise fail loudly
when their ``BENCH_*.json`` file is missing, empty, corrupt, or lacks a
required section — an aborted benchmark must never read as a pass.

After an intentional performance change (or a runner-hardware change),
refresh the baseline with::

    python benchmarks/check_regression.py BENCH_full.json --update

and commit the diff.  Baselines are absolute seconds, so they are only
comparable on similar hardware — the threshold is deliberately loose to
absorb normal CI-runner jitter while still catching real (>20 %) hot-
path regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "bench_baseline.json"
DEFAULT_THRESHOLD = 0.20


class PayloadError(ValueError):
    """A gate payload that cannot be trusted (missing, empty, or corrupt)."""


def load_payload(path: Path, required: tuple, kind: str) -> dict:
    """Load a ``BENCH_*.json`` gate payload, refusing to pass silently.

    An unreadable, empty, or structurally incomplete payload means the
    benchmark that writes it crashed or was skipped — that must fail the
    gate, not sail through ``dict.get`` defaults.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PayloadError(
            f"{path}:{exc.lineno}: invalid JSON in {kind} payload: {exc.msg}"
        ) from None
    if not isinstance(payload, dict) or not payload:
        raise PayloadError(
            f"{path}: empty or non-object {kind} payload — the benchmark "
            "that writes it did not complete"
        )
    missing = [key for key in required if key not in payload]
    if missing:
        raise PayloadError(
            f"{path}: {kind} payload is missing required section(s) "
            f"{', '.join(sorted(missing))} — refusing to pass the gate on "
            "an incomplete run"
        )
    return payload


def load_means(benchmark_json: Path) -> dict:
    """Extract ``{benchmark name: mean seconds}`` from pytest-benchmark output."""
    if not benchmark_json.exists():
        raise PayloadError(f"{benchmark_json}: benchmark output file missing")
    try:
        data = json.loads(benchmark_json.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PayloadError(
            f"{benchmark_json}:{exc.lineno}: invalid JSON in benchmark "
            f"output: {exc.msg}"
        ) from None
    means = {}
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if mean is not None:
            means[bench["name"]] = float(mean)
    return means


def compare(current: dict, baseline: dict, threshold: float) -> int:
    """Print a comparison table; return the number of regressions."""
    regressions = 0
    width = max((len(name) for name in current), default=4)
    print(f"{'benchmark'.ljust(width)}  {'baseline_s':>12}  {'current_s':>12}  ratio")
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name.ljust(width)}  {'-':>12}  {mean:12.6f}  NEW (no baseline)")
            continue
        ratio = mean / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            flag = f"  REGRESSION (>{threshold * 100:.0f}%)"
            regressions += 1
        print(f"{name.ljust(width)}  {base:12.6f}  {mean:12.6f}  {ratio:5.2f}x{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(
            f"{name.ljust(width)}  MISSING from this run — a baselined bench "
            "was renamed or dropped (refresh with --update)",
            file=sys.stderr,
        )
        regressions += 1
    return regressions


def check_eco_soak(soak_json: Path, max_drift: float, min_speedup: float) -> int:
    """Gate the ECO soak's quality drift and speedup; return failure count.

    Reads the ``BENCH_eco_soak.json`` payload written by the soak
    benchmark (or ``repro eco --soak --soak-json``) and fails when the
    soaked layout's final AveDis exceeds the from-scratch re-legalization
    of the same final design by more than ``max_drift`` (one-sided:
    ending *better* than from-scratch is never a failure), or when the
    estimated incremental speedup fell below ``min_speedup``.
    """
    payload = load_payload(soak_json, ("final", "trajectory"), "eco soak")
    final = payload["final"]
    if not isinstance(final, dict) or "drift_vs_full" not in final:
        raise PayloadError(
            f"{soak_json}: eco soak 'final' section lacks drift_vs_full — "
            "the soak did not finish"
        )
    if not payload["trajectory"]:
        raise PayloadError(
            f"{soak_json}: eco soak trajectory is empty — no batches ran"
        )
    drift = float(final["drift_vs_full"])
    speedup = float(final.get("speedup_estimate", float("inf")))
    failures = 0
    print(
        f"eco soak: drift_vs_full {drift * 100:+.2f}% "
        f"(budget {max_drift * 100:.1f}%), speedup {speedup:.1f}x "
        f"(floor {min_speedup:.1f}x), repacks {final.get('repacks', 0)}"
    )
    if drift > max_drift:
        print(
            f"eco soak REGRESSION: final AveDis drifted {drift * 100:+.2f}% "
            f"over a from-scratch repack (budget {max_drift * 100:.1f}%)",
            file=sys.stderr,
        )
        failures += 1
    if speedup < min_speedup:
        print(
            f"eco soak REGRESSION: incremental speedup {speedup:.2f}x fell "
            f"below the {min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        failures += 1
    if final.get("failed_batches"):
        print(
            f"eco soak REGRESSION: {final['failed_batches']} batches failed "
            "to legalize",
            file=sys.stderr,
        )
        failures += 1
    return failures


def check_mp_sweep(sweep_json: Path, min_speedup: float, min_cores: int = 4) -> int:
    """Gate the multiprocess worker sweep; return failure count.

    Reads the ``BENCH_mp_workers.json`` payload written by the worker-
    sweep benchmark and fails when any multiprocess row at >= 2 workers
    is slower than the single-worker sequential baseline by more than
    the ``min_speedup`` floor allows (floor 1.0 = "parallel must not
    lose").  Skipped (with a notice, not a failure) when the run was
    recorded on fewer than ``min_cores`` cores — a 1-core container can
    only measure overhead, not parallel speedup.
    """
    payload = load_payload(sweep_json, ("cpu_count", "rows"), "mp sweep")
    if not payload["rows"]:
        raise PayloadError(
            f"{sweep_json}: mp sweep payload has no rows — the sweep did not run"
        )
    cpu_count = int(payload["cpu_count"])
    design = payload.get("design", "?")
    if cpu_count < min_cores:
        print(
            f"mp sweep: recorded on {cpu_count} core(s) (< {min_cores}); "
            "speedup gate skipped"
        )
        return 0
    failures = 0
    checked = 0
    for row in payload.get("rows", []):
        if row.get("backend") != "multiprocess" or int(row.get("workers", 0)) < 2:
            continue
        checked += 1
        speedup = float(row.get("speedup", 0.0))
        print(
            f"mp sweep: {design} multiprocess:{row['workers']} "
            f"{float(row.get('wall_s', 0.0)):.3f}s speedup {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x) mode={row.get('mode', '?')}"
        )
        if speedup < min_speedup:
            print(
                f"mp sweep REGRESSION: multiprocess:{row['workers']} is "
                f"{speedup:.2f}x the sequential baseline on {design} "
                f"(floor {min_speedup:.2f}x) — the parallel backend lost "
                "to single-worker execution",
                file=sys.stderr,
            )
            failures += 1
    if not checked:
        print(
            f"mp sweep REGRESSION: no multiprocess rows with >= 2 workers "
            f"in {sweep_json}",
            file=sys.stderr,
        )
        failures += 1
    return failures


def check_service(service_json: Path, max_p95: float, min_throughput: float) -> int:
    """Gate the concurrent-service benchmark; return failure count.

    Reads the ``BENCH_service.json`` payload written by
    ``benchmarks/test_bench_service.py`` and fails when any session's
    served placement mismatched its offline ledger replay (the service
    layer's headline bit-for-bit contract), when any batch failed to
    legalize, when the p95 request latency exceeded ``max_p95`` seconds,
    or when aggregate throughput fell below ``min_throughput``
    batches/s.  The latency/throughput floors are deliberately loose —
    they catch a serialized-to-death daemon, not runner jitter; the
    mismatch count is the strict part.
    """
    payload = load_payload(
        service_json,
        ("mismatches", "failed_batches", "latency",
         "throughput_batches_per_s", "per_session"),
        "service",
    )
    if "p95_s" not in (payload["latency"] or {}):
        raise PayloadError(
            f"{service_json}: service latency section lacks p95_s — "
            "no requests were timed"
        )
    if not payload["per_session"]:
        raise PayloadError(
            f"{service_json}: service payload has no per-session rows — "
            "no sessions completed"
        )
    mismatches = int(payload["mismatches"])
    failed = int(payload["failed_batches"])
    p95 = float(payload["latency"]["p95_s"])
    throughput = float(payload["throughput_batches_per_s"])
    print(
        f"service: {payload.get('clients', '?')} clients x "
        f"{payload.get('batches_per_client', '?')} batches, "
        f"p95 {p95:.3f}s (cap {max_p95:.1f}s), "
        f"{throughput:.1f} batches/s (floor {min_throughput:.1f}), "
        f"mismatches {mismatches}, failed {failed}"
    )
    failures = 0
    if mismatches:
        print(
            f"service REGRESSION: {mismatches} session(s) diverged from "
            "their offline ledger replay — the daemon changed placements",
            file=sys.stderr,
        )
        failures += 1
    if failed:
        print(
            f"service REGRESSION: {failed} batch(es) failed to legalize",
            file=sys.stderr,
        )
        failures += 1
    if p95 > max_p95:
        print(
            f"service REGRESSION: p95 request latency {p95:.3f}s exceeded "
            f"the {max_p95:.1f}s cap",
            file=sys.stderr,
        )
        failures += 1
    if throughput < min_throughput:
        print(
            f"service REGRESSION: throughput {throughput:.2f} batches/s fell "
            f"below the {min_throughput:.1f} floor",
            file=sys.stderr,
        )
        failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmark_json", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown tolerated before failing (default 0.20)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "--eco-soak", type=Path, default=None,
        help="also gate an ECO soak trajectory (BENCH_eco_soak.json): fail "
             "when final AveDis drift vs a from-scratch repack exceeds "
             "--max-eco-drift or speedup falls below --min-eco-speedup",
    )
    parser.add_argument(
        "--max-eco-drift", type=float, default=0.05,
        help="tolerated final AveDis drift of the soak vs from-scratch "
             "(default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--min-eco-speedup", type=float, default=3.0,
        help="minimum estimated incremental speedup of the soak (default 3.0)",
    )
    parser.add_argument(
        "--mp-sweep", type=Path, default=None,
        help="also gate the multiprocess worker sweep (BENCH_mp_workers.json): "
             "fail when any >= 2-worker multiprocess run is slower than the "
             "sequential baseline by more than --min-mp-speedup allows "
             "(skipped on runners with < 4 cores)",
    )
    parser.add_argument(
        "--min-mp-speedup", type=float, default=1.0,
        help="minimum multiprocess speedup over the sequential baseline "
             "(default 1.0 = parallel must not lose)",
    )
    parser.add_argument(
        "--service", type=Path, default=None,
        help="also gate the concurrent-service benchmark (BENCH_service.json): "
             "fail on any replay mismatch or failed batch, when p95 latency "
             "exceeds --max-service-p95, or when throughput falls below "
             "--min-service-throughput",
    )
    parser.add_argument(
        "--max-service-p95", type=float, default=5.0,
        help="p95 request-latency cap in seconds for the service bench "
             "(default 5.0; loose on purpose)",
    )
    parser.add_argument(
        "--min-service-throughput", type=float, default=1.0,
        help="minimum aggregate service throughput in batches/s (default 1.0)",
    )
    args = parser.parse_args(argv)

    soak_failures = 0
    try:
        if args.eco_soak is not None:
            if not args.eco_soak.exists():
                print(f"eco soak payload {args.eco_soak} missing", file=sys.stderr)
                return 1
            soak_failures = check_eco_soak(
                args.eco_soak, args.max_eco_drift, args.min_eco_speedup
            )
        if args.mp_sweep is not None:
            if not args.mp_sweep.exists():
                print(f"mp sweep payload {args.mp_sweep} missing", file=sys.stderr)
                return 1
            soak_failures += check_mp_sweep(args.mp_sweep, args.min_mp_speedup)
        if args.service is not None:
            if not args.service.exists():
                print(f"service payload {args.service} missing", file=sys.stderr)
                return 1
            soak_failures += check_service(
                args.service, args.max_service_p95, args.min_service_throughput
            )
    except PayloadError as exc:
        print(f"gate payload REGRESSION: {exc}", file=sys.stderr)
        return 1

    try:
        current = load_means(args.benchmark_json)
    except PayloadError as exc:
        print(f"gate payload REGRESSION: {exc}", file=sys.stderr)
        return 1
    if not current:
        print(f"no benchmark timings found in {args.benchmark_json}", file=sys.stderr)
        return 1

    if args.update:
        args.baseline.write_text(
            json.dumps(current, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {len(current)} baseline entries to {args.baseline}")
        return 1 if soak_failures else 0

    if not args.baseline.exists():
        print(f"baseline {args.baseline} missing; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    regressions = compare(current, baseline, args.threshold) + soak_failures
    if regressions:
        print(f"{regressions} benchmark(s) regressed beyond the threshold", file=sys.stderr)
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
