"""Benchmark: regenerate Fig. 8 — the FPGA optimisation ladder."""

from __future__ import annotations

from repro.experiments.fig8 import run_fig8_ladder

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_fig8_speedup_ladder(benchmark):
    result = run_once(
        benchmark, run_fig8_ladder, FIGURE_NAMES, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    for row in result.rows:
        _, normal, sacs, mg, two_pe, gain_2pe = row
        assert normal == 1.0
        # Paper: 2-3x from SACS.  Synthetic md3-style designs carry more
        # subcells per region than the real benchmarks, so the upper end
        # can overshoot; the lower bound and the ordering are what matter.
        assert 1.4 <= sacs <= 5.5
        assert 1.0 <= mg / sacs <= 2.2     # paper: +1-2x from the pipeline
        assert 1.5 <= gain_2pe <= 2.0      # paper: +1.6-1.9x from the 2nd PE
