"""Benchmark: regenerate the Fig. 2 motivation measurements.

* Fig. 2(a): multi-threaded CPU scaling (saturation around 1.8x);
* Fig. 2(b)(c): CPU-GPU legalizer parallelism vs CUDA cores and overheads;
* Fig. 2(g): cell-shifting share of FOP runtime (> 60 %).
"""

from __future__ import annotations

from repro.experiments.fig2 import run_fig2_parallelism, run_fig2_scaling, run_fig2_shift_share

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_fig2a_thread_scaling(benchmark):
    result = run_once(
        benchmark, run_fig2_scaling, "edit_dist_a_md3", scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    speedups = result.column("speedup")
    assert speedups[1] < 1.4  # 2 threads: only ~20-25% faster
    assert speedups[-1] <= 1.9  # saturation


def test_fig2bc_gpu_parallelism(benchmark):
    result = run_once(
        benchmark, run_fig2_parallelism, FIGURE_NAMES[:4], scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    for row in result.rows:
        assert row[2] < row[1]  # achievable parallelism below the core count


def test_fig2g_cell_shift_share(benchmark):
    result = run_once(
        benchmark, run_fig2_shift_share, FIGURE_NAMES[:4], scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    for row in result.rows:
        assert row[1] > 0.6  # cell shifting dominates FOP (paper: >60%)
