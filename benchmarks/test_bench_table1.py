"""Benchmark: regenerate Table 1 (overall comparison) on the scaled suite.

Runs the four legalizers (TCAD'22-style MGL, DATE'22-style CPU-GPU,
ISPD'25-style analytical, FLEX) on every Table 1 benchmark and prints the
AveDis / modeled-runtime / speedup rows.
"""

from __future__ import annotations

from repro.benchgen.iccad2017 import benchmark_names
from repro.experiments.table1 import run_table1

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_table1_subset(benchmark):
    """Table 1 on the six-design figure subset (fast)."""
    result = run_once(
        benchmark, run_table1, FIGURE_NAMES, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    acc_t = result.extras["geomean_acc_t"]
    assert acc_t > 1.0  # FLEX wins on runtime
    flex_col = result.headers.index("flex_avedis")
    mgl_col = result.headers.index("mgl_avedis")
    average_row = result.rows[-2]
    assert average_row[flex_col] <= average_row[mgl_col] * 1.05  # quality preserved


def test_table1_full_suite(benchmark):
    """Table 1 on all sixteen designs (slower; the headline table)."""
    result = run_once(
        benchmark,
        run_table1,
        benchmark_names(),
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    print()
    print(result.format())
    assert len(result.rows) == 18  # 16 designs + Average + Ratio
    assert result.extras["geomean_acc_t"] > 1.5
    assert result.extras["geomean_acc_d"] > result.extras["geomean_acc_t"] * 0.8
