"""Fixtures of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because a
single regeneration already runs several full legalization passes (slow
in pure Python), each benchmark executes exactly once per session
(``rounds=1``) via ``benchmark.pedantic``; pytest-benchmark then reports
that single wall time.  The result tables themselves are printed so that
``pytest benchmarks/ --benchmark-only -s`` shows the regenerated rows.

The shared constants and the ``run_once`` helper live in
:mod:`repro.testing.bench` (importable from any directory, so
``pytest tests benchmarks`` collects both suites without conftest-module
shadowing); only pytest fixtures are defined here.
"""

from __future__ import annotations

import pytest

from repro.testing.bench import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED
