"""Benchmark: regenerate Fig. 6(g) — SACS pre-sorting cost share."""

from __future__ import annotations

from repro.experiments.fig6 import run_fig6_sorting_share

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_fig6g_sorting_share(benchmark):
    result = run_once(
        benchmark, run_fig6_sorting_share, FIGURE_NAMES[:4], scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    for row in result.rows:
        presort_share, all_sorting_share = row[1], row[2]
        assert presort_share < 0.15  # an acceptable overhead (paper: ~10%)
        assert all_sorting_share < 0.35
