"""Benchmark: regenerate Fig. 9 — SACS optimisations vs tall-cell ratio."""

from __future__ import annotations

from repro.experiments.fig9 import run_fig9_sacs

from repro.testing.bench import BENCH_SCALE, BENCH_SEED, FIGURE_NAMES, run_once


def test_fig9_sacs_optimisations(benchmark):
    result = run_once(
        benchmark, run_fig9_sacs, FIGURE_NAMES, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(result.format())
    rows = {row[0]: row for row in result.rows}
    # Cumulative speedups must be monotone and in the paper's overall range.
    for row in result.rows:
        assert row[2] <= row[3] <= row[4] <= row[5] * 1.001
        assert 1.3 <= row[5] <= 3.6
    # The bandwidth-optimisation gain grows with the tall-cell proportion:
    # pci_b_a_md2 (the tallest mix) must benefit more than des_perf_b_md1
    # (no cells taller than three rows).
    assert rows["pci_b_a_md2"][6] > rows["des_perf_b_md1"][6]
