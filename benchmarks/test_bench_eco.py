"""Benchmark: ECO churn sweep (incremental engine vs full re-runs).

Regenerates the churn-sweep experiment on one dense ICCAD-like design,
records the wall times into the pytest-benchmark output *and* into
``BENCH_eco_churn.json`` (uploaded as a CI artifact, gated by
``benchmarks/check_regression.py``), and asserts the incremental
engine's headline: at <= 5 % churn it must beat the full re-run by at
least 3x — the acceptance bar of the incremental subsystem — whenever
the design is large enough for per-call overheads not to dominate.
"""

from __future__ import annotations

import json

from repro.experiments.eco_churn import run_eco_churn
from repro.testing.bench import BENCH_SCALE, BENCH_SEED, run_once

#: Speedup the incremental engine must deliver at <= 5 % churn.
MIN_LOW_CHURN_SPEEDUP = 3.0
#: Designs below this movable-cell count are too small for the assertion
#: (fixed per-call costs — metric recomputation, trace setup — dominate).
MIN_CELLS_FOR_ASSERT = 80


def test_bench_eco_churn_sweep(benchmark):
    scale = min(4 * BENCH_SCALE, 0.01)
    result = run_once(
        benchmark,
        run_eco_churn,
        "des_perf_1",
        scale=scale,
        seed=BENCH_SEED,
        churn_rates=(0.02, 0.05, 0.25),
        batches=2,
    )
    print()
    print(result.format())

    num_cells = int(round(112644 * scale))  # des_perf_1 published size x scale
    payload = {
        "design": "des_perf_1",
        "scale": scale,
        "approx_cells": num_cells,
        "rows": [
            dict(zip(result.headers, row))
            for row in result.rows
        ],
    }
    benchmark.extra_info["eco_churn"] = payload
    with open("BENCH_eco_churn.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)

    speedups = {row[0]: row[5] for row in result.rows}
    avedis = {row[0]: (row[6], row[7]) for row in result.rows}
    # Quality parity: reusing clean placements must not blow up AveDis.
    for churn, (inc, full) in avedis.items():
        assert inc <= full * 1.5 + 0.1, (
            f"AveDis parity lost at churn {churn}%: inc={inc} full={full}"
        )
    if num_cells >= MIN_CELLS_FOR_ASSERT:
        low_churn = [s for churn, s in speedups.items() if churn <= 5.0]
        assert low_churn and max(low_churn) >= MIN_LOW_CHURN_SPEEDUP, (
            f"expected >= {MIN_LOW_CHURN_SPEEDUP}x at <= 5% churn, got {speedups}"
        )


# ----------------------------------------------------------------------
# Long-stream soak: quality drift under the displacement-bounded mode
# ----------------------------------------------------------------------
#: Tolerated final AveDis drift of the soaked layout over a from-scratch
#: full legalization of the same final design (one-sided; the CI gate in
#: check_regression.py applies the same budget to the JSON artifact).
MAX_SOAK_DRIFT = 0.05
#: Movable-cell floor below which the drift/speedup assertions are noise
#: (tiny designs have sparsely populated height classes, so S_am jumps
#: when a single tall cell is deleted or inserted).
MIN_CELLS_FOR_SOAK_ASSERT = 300


def test_bench_eco_soak(benchmark):
    from repro.experiments.eco_soak import run_eco_soak

    # Dense synthetic design; scale the published des_perf_1 size like
    # the churn sweep does, but keep a workable floor so the soak always
    # exercises real multi-batch dynamics even at smoke scale.
    num_cells = max(120, int(round(112644 * min(4 * BENCH_SCALE, 0.004))))
    batches = 200 if num_cells >= MIN_CELLS_FOR_SOAK_ASSERT else 40
    result = run_once(
        benchmark,
        run_eco_soak,
        "eco_soak",
        num_cells=num_cells,
        density=0.6,
        seed=BENCH_SEED,
        batches=batches,
        churn=0.02,
        max_avedis_drift=MAX_SOAK_DRIFT,
        repack_every=25,
    )
    print()
    print(result.format())

    payload = result.extras["payload"]
    benchmark.extra_info["eco_soak"] = payload["final"]
    with open("BENCH_eco_soak.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)

    final = payload["final"]
    assert final["failed_batches"] == 0
    # Repack counter must be monotone along the trajectory.
    repacks = [entry["repacks_total"] for entry in payload["trajectory"]]
    assert repacks == sorted(repacks)
    if num_cells >= MIN_CELLS_FOR_SOAK_ASSERT:
        assert final["drift_vs_full"] <= MAX_SOAK_DRIFT, (
            f"soak drift {final['drift_vs_full']:.3f} exceeds {MAX_SOAK_DRIFT}"
        )
        assert final["speedup_estimate"] >= MIN_LOW_CHURN_SPEEDUP, (
            f"soak speedup {final['speedup_estimate']:.2f} below "
            f"{MIN_LOW_CHURN_SPEEDUP}x"
        )
