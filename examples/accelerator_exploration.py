#!/usr/bin/env python
"""Design-space exploration of the FLEX accelerator configuration.

Run with::

    python examples/accelerator_exploration.py

Legalizes one design once, then replays the recorded work under different
accelerator configurations — pipeline organisation, SACS optimisations,
FOP PE count, CPU/FPGA task partition — reporting the modeled runtime and
the FPGA resource cost of each point.  This is the kind of what-if study
the behavioral model enables without re-running the (slow) algorithm.
"""

from __future__ import annotations

from repro.benchgen import iccad2017_design
from repro.core import FlexConfig, FlexLegalizer
from repro.core.pipeline import PipelineOrganization
from repro.core.task_assignment import TaskPartition
from repro.fpga import ResourceEstimator
from repro.perf import format_table


def main() -> None:
    layout = iccad2017_design("des_perf_b_md2", scale=0.004)
    print(f"design: {layout.summary()}\n")

    # Run the algorithm once with the full FLEX configuration.
    reference = FlexLegalizer().legalize(layout)
    print("reference run:", reference.summary(), "\n")

    configurations = [
        ("FPGA baseline (normal pipeline, 1 PE)", FlexConfig(
            pipeline=PipelineOrganization.NORMAL, use_sacs=False, fop_pe_parallelism=1,
            sacs_architecture_opt=False, sacs_bandwidth_opt=False, sacs_parallel_moves=False,
        )),
        ("+ SACS", FlexConfig(
            pipeline=PipelineOrganization.SACS_ONLY, fop_pe_parallelism=1,
            sacs_bandwidth_opt=False, sacs_parallel_moves=False,
        )),
        ("+ multi-granularity pipeline", FlexConfig(
            pipeline=PipelineOrganization.MULTI_GRANULARITY, fop_pe_parallelism=1,
            sacs_bandwidth_opt=False, sacs_parallel_moves=False,
        )),
        ("+ SACS bandwidth & parallel moves", FlexConfig(fop_pe_parallelism=1)),
        ("+ 2 FOP PEs (full FLEX)", FlexConfig(fop_pe_parallelism=2)),
        ("3 FOP PEs (scalability headroom)", FlexConfig(fop_pe_parallelism=3)),
        ("offload insert&update too (Fig. 10 alt.)", FlexConfig(
            fop_pe_parallelism=2, task_partition=TaskPartition.FOP_AND_UPDATE_ON_FPGA,
        )),
    ]

    estimator = ResourceEstimator()
    rows = []
    baseline_time = None
    for label, config in configurations:
        run = FlexLegalizer(config).model_run(reference.legalization)
        resources = estimator.estimate(config)
        time_ms = run.modeled_runtime_seconds * 1e3
        if baseline_time is None:
            baseline_time = time_ms
        rows.append([
            label,
            time_ms,
            baseline_time / time_ms,
            resources.totals.luts,
            resources.totals.brams,
            "yes" if resources.fits() else "NO",
        ])

    print(format_table(
        ["configuration", "time (ms)", "speedup", "LUTs", "BRAMs", "fits U50"], rows,
    ))


if __name__ == "__main__":
    main()
