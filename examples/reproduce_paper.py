#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one go.

Run with::

    python examples/reproduce_paper.py [--scale 0.004] [--quick]

This is a thin wrapper around ``repro.experiments.runner``; the output is
the full plain-text report (Table 1, Table 2, Fig. 2, Fig. 6(g), Fig. 8,
Fig. 9, Fig. 10) with the published reference values quoted in the notes.
Expect a few minutes of runtime at the default scale — the legalizers are
pure Python.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
