#!/usr/bin/env python
"""Compare every legalizer in the repository on one ICCAD-2017-like design.

Run with::

    python examples/compare_legalizers.py [benchmark-name] [scale]

Defaults to ``fft_2_md2`` at 1 % of the published cell count.  The script
runs FLEX, the MGL multi-threaded-CPU baseline, the DATE'22-style CPU-GPU
baseline, the analytical legalizer, Abacus and the greedy legalizer on
copies of the same input and prints a quality / modeled-runtime table —
a miniature version of the paper's Table 1 with two extra rows.
"""

from __future__ import annotations

import sys

from repro.baselines import (
    AbacusLegalizer,
    AnalyticalLegalizer,
    CpuGpuBaseline,
    GreedyLegalizer,
    MultiThreadedMglBaseline,
)
from repro.baselines.analytical import AnalyticalGpuRuntimeModel
from repro.benchgen import iccad2017_design
from repro.core import FlexLegalizer
from repro.legality import LegalityChecker
from repro.perf import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fft_2_md2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    base = iccad2017_design(name, scale=scale)
    print(f"design: {base.summary()}\n")

    checker = LegalityChecker()
    rows = []

    def record(label, layout, avedis, runtime_s):
        legal = checker.check(layout).legal
        rows.append([label, avedis, runtime_s * 1e3, "yes" if legal else "NO"])

    flex = FlexLegalizer().legalize(base.copy() if False else base.copy())
    record("FLEX (this work)", flex.legalization.layout, flex.average_displacement,
           flex.modeled_runtime_seconds)

    mgl = MultiThreadedMglBaseline().legalize(base.copy())
    record("MGL, 8-thread CPU (TCAD'22)", mgl.legalization.layout,
           mgl.average_displacement, mgl.modeled_runtime_seconds)

    gpu = CpuGpuBaseline().legalize(base.copy())
    record("CPU-GPU (DATE'22)", gpu.legalization.layout, gpu.average_displacement,
           gpu.modeled_runtime_seconds)

    ana_layout = base.copy()
    ana = AnalyticalLegalizer().legalize(ana_layout)
    ana_runtime = AnalyticalGpuRuntimeModel().runtime_seconds(ana.num_cells, ana.iterations)
    record("Analytical GPU (ISPD'25-style)", ana_layout, ana.average_displacement, ana_runtime)

    abacus_layout = base.copy()
    abacus = AbacusLegalizer().legalize(abacus_layout)
    record("Abacus + greedy multi-deck", abacus_layout, abacus.average_displacement,
           abacus.wall_seconds)

    greedy_layout = base.copy()
    greedy = GreedyLegalizer().legalize(greedy_layout)
    record("Greedy (tetris)", greedy_layout, greedy.average_displacement, greedy.wall_seconds)

    print(format_table(["legalizer", "AveDis (rows)", "runtime (ms)", "legal"], rows))
    print("\nruntime notes: FLEX / MGL / CPU-GPU / analytical runtimes are modeled")
    print("hardware times derived from measured work; Abacus and greedy report")
    print("Python wall time and are not comparable to the modeled numbers.")


if __name__ == "__main__":
    main()
