#!/usr/bin/env python
"""Quickstart: generate a design, legalize it with FLEX, inspect the result.

Run with::

    python examples/quickstart.py

The script generates a small synthetic mixed-cell-height design, runs the
FLEX accelerator (algorithm + modeled CPU/FPGA runtime), verifies the
result's legality and prints the quality and runtime summary next to the
multi-threaded CPU baseline.
"""

from __future__ import annotations

from repro.benchgen import DesignSpec, generate_design
from repro.core import FlexLegalizer
from repro.legality import LegalityChecker
from repro.perf import CpuCostModel, MultiThreadModel


def main() -> None:
    # 1. Generate a mixed-cell-height design: 800 cells, 65 % density,
    #    with 2/3/4-row multi-deck cells in the mix.
    spec = DesignSpec(
        name="quickstart",
        num_cells=800,
        density=0.65,
        height_mix={1: 0.72, 2: 0.17, 3: 0.07, 4: 0.04},
        seed=42,
    )
    layout = generate_design(spec)
    print("input design :", layout.summary())

    # 2. Legalize with FLEX (SACS + sliding-window ordering + 2 FOP PEs).
    flex = FlexLegalizer()
    result = flex.legalize(layout)

    # 3. Verify legality: no overlaps, on-grid, P/G aligned.
    report = LegalityChecker().check(layout)
    print("legality     :", report.summary())

    # 4. Quality and modeled runtime.
    print("result       :", result.summary())
    print(f"  average displacement (S_am) : {result.average_displacement:.3f} row heights")
    print(f"  FPGA cycles                 : {result.fpga.total_cycles:,.0f}")
    print(f"  FPGA utilisation            : {result.timeline.fpga_utilisation * 100:.1f} %")

    # 5. Compare against the multi-threaded CPU baseline on the same work.
    cpu_single = CpuCostModel().total_seconds(result.trace)
    cpu_8t = MultiThreadModel(threads=8).runtime_seconds(result.trace)
    speedup = cpu_8t / result.modeled_runtime_seconds
    print(f"  modeled CPU time (1 thread) : {cpu_single * 1e3:.2f} ms")
    print(f"  modeled CPU time (8 threads): {cpu_8t * 1e3:.2f} ms")
    print(f"  FLEX speedup vs 8-thread CPU: {speedup:.2f}x")


if __name__ == "__main__":
    main()
