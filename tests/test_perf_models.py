"""Tests for the performance models (repro.perf)."""

from __future__ import annotations

import math

import pytest

from repro.perf import (
    CoExecutionTimeline,
    CpuCostModel,
    CpuCostParameters,
    CpuGpuModel,
    GpuModelParameters,
    InsertionPointWork,
    LegalizationTrace,
    MultiThreadModel,
    SpeedupReport,
    TargetCellWork,
    TimelineEntry,
    format_table,
)
from repro.perf.report import geometric_mean
from repro.perf.thread_model import interpolate_speedup


def make_trace(n_targets: int = 10, ips_per_target: int = 5, **ip_kwargs) -> LegalizationTrace:
    """Build a synthetic trace with uniform insertion-point work."""
    trace = LegalizationTrace(design_name="synthetic", num_cells=n_targets, num_movable=n_targets)
    trace.premove_cells = n_targets
    trace.ordering_ops = n_targets * 4
    defaults = dict(
        n_local_cells=20,
        n_subcells=26,
        shift_passes=4,
        shift_cell_visits=104,
        chain_left=3,
        chain_right=2,
        n_breakpoints=12,
        n_merged_breakpoints=10,
        multirow_accesses=12,
        tall_accesses=2,
    )
    defaults.update(ip_kwargs)
    for t in range(n_targets):
        work = TargetCellWork(cell_index=t, height=1, width=3.0)
        work.n_local_cells = defaults["n_local_cells"]
        work.region_transfer_words = 120
        work.update_moved_cells = 2
        for _ in range(ips_per_target):
            work.add_insertion_point(InsertionPointWork(**defaults))
        trace.add_target(work)
        trace.update_ops += 3
    return trace


class TestCounters:
    def test_aggregates(self):
        trace = make_trace(4, 3)
        assert trace.total_insertion_points == 12
        assert trace.total_shift_visits == 12 * 104
        assert trace.total_breakpoints == 12 * 12
        assert trace.total_transfer_words == 4 * 120
        assert trace.total_update_moves == 8
        assert trace.total_regions == 4

    def test_fop_stage_workload_keys(self):
        work = make_trace(2, 2).fop_stage_workload()
        assert set(work) == {
            "cell_shift", "sort_bp", "merge_bp", "sum_slopesR", "sum_slopesL", "calculate_value",
        }

    def test_cell_shift_fraction_dominates(self):
        trace = make_trace(3, 4)
        assert trace.cell_shift_fraction() > 0.5

    def test_merge_traces(self):
        merged = make_trace(3, 2).merged_with(make_trace(2, 2))
        assert len(merged.targets) == 5
        assert merged.premove_cells == 5

    def test_empty_trace(self):
        trace = LegalizationTrace()
        assert trace.total_insertion_points == 0
        assert trace.cell_shift_fraction() == 0.0
        assert "0 targets" in trace.summary()


class TestCpuCostModel:
    def test_total_positive_and_additive(self):
        model = CpuCostModel()
        small = model.total_seconds(make_trace(5, 5))
        large = model.total_seconds(make_trace(10, 5))
        assert 0 < small < large
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_breakdown_sums_to_total(self):
        model = CpuCostModel()
        trace = make_trace(6, 4)
        breakdown = model.breakdown(trace)
        assert breakdown.total == pytest.approx(
            breakdown.premove + breakdown.ordering + breakdown.region + breakdown.fop + breakdown.update
        )
        assert breakdown.fop > breakdown.premove
        assert set(breakdown.fop_stages) == set(trace.fop_stage_workload())

    def test_shift_dominates_fop(self):
        stages = CpuCostModel().fop_stage_seconds(make_trace(4, 4))
        assert stages["cell_shift"] / sum(stages.values()) > 0.6

    def test_custom_parameters(self):
        cheap = CpuCostModel(CpuCostParameters(shift_per_visit_ns=1.0))
        default = CpuCostModel()
        trace = make_trace(4, 4)
        assert cheap.total_seconds(trace) < default.total_seconds(trace)

    def test_per_target_host_times(self):
        model = CpuCostModel()
        trace = make_trace(3, 3)
        per_target = model.per_target_host_times(trace)
        assert set(per_target) == {0, 1, 2}
        for entry in per_target.values():
            assert entry["fop"] > 0 and entry["region"] > 0 and entry["update"] > 0

    def test_as_dict(self):
        d = CpuCostModel().breakdown(make_trace(2, 2)).as_dict()
        assert "total" in d and "fop.cell_shift" in d


class TestThreadModel:
    def test_published_points(self):
        assert interpolate_speedup(1) == 1.0
        assert interpolate_speedup(2) == 1.25
        assert interpolate_speedup(8) == 1.8

    def test_interpolation_between_points(self):
        assert 1.25 < interpolate_speedup(3) < 1.55

    def test_saturation(self):
        assert interpolate_speedup(64) == pytest.approx(1.83)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            interpolate_speedup(0)

    def test_runtime_scales(self):
        trace = make_trace(5, 5)
        model = MultiThreadModel()
        t1 = model.runtime_seconds(trace, threads=1)
        t8 = model.runtime_seconds(trace, threads=8)
        assert t8 == pytest.approx(t1 / 1.8)

    def test_scaling_curve_monotone(self):
        curve = MultiThreadModel().scaling_curve(make_trace(5, 5))
        times = [curve[t] for t in sorted(curve)]
        assert all(a >= b for a, b in zip(times, times[1:]))


class TestCpuGpuModel:
    def test_tough_split(self):
        trace = make_trace(10, 3)
        for i, target in enumerate(trace.targets):
            target.height = 3 if i < 3 else 1
        tough, easy = CpuGpuModel().split_targets(trace)
        assert len(tough) == 3 and len(easy) == 7

    def test_breakdown_components(self):
        trace = make_trace(12, 4)
        for i, target in enumerate(trace.targets):
            target.height = 2 if i % 4 == 0 else 1
        breakdown = CpuGpuModel().breakdown(trace)
        assert breakdown.total > 0
        assert breakdown.n_tough_cells + breakdown.n_easy_cells == 12
        assert breakdown.total >= breakdown.serial_host

    def test_slower_than_flex_style_times(self):
        # The CPU-GPU model must not be faster than an ideal zero-overhead
        # GPU: it includes synchronisation and the tough-cell serial path.
        trace = make_trace(20, 4)
        for i, target in enumerate(trace.targets):
            target.height = 4 if i % 3 == 0 else 1
        model = CpuGpuModel()
        breakdown = model.breakdown(trace)
        assert breakdown.cpu_tough > 0
        assert breakdown.gpu_sync > 0

    def test_parallelism_capped(self):
        params = GpuModelParameters(max_parallel_regions=8)
        model = CpuGpuModel(params)
        assert model.achievable_parallelism(make_trace(50, 2)) == 8

    def test_more_tall_cells_slower(self):
        trace_flat = make_trace(20, 4)
        trace_tall = make_trace(20, 4)
        for i, target in enumerate(trace_tall.targets):
            target.height = 3 if i % 2 == 0 else 1
        model = CpuGpuModel()
        assert model.runtime_seconds(trace_tall) > model.runtime_seconds(trace_flat)


class TestTimeline:
    def _entries(self, n=5, fpga=10e-6, prep=2e-6, post=1e-6, xfer=1e-6):
        return [
            TimelineEntry(
                cell_index=i,
                cpu_prep=prep,
                transfer_in=xfer,
                fpga_compute=fpga,
                transfer_out=xfer / 4,
                cpu_post=post,
                preloadable=True,
            )
            for i in range(n)
        ]

    def test_overlap_hides_host_work(self):
        timeline = CoExecutionTimeline()
        entries = self._entries(n=20)
        result = timeline.run(entries)
        serial = timeline.run_serialized(entries)
        assert result.total < serial.total
        # FPGA-bound: the total is close to the FPGA busy time.
        assert result.total == pytest.approx(result.fpga_busy, rel=0.2)

    def test_first_transfer_visible(self):
        timeline = CoExecutionTimeline()
        result = timeline.run(self._entries(n=10, xfer=5e-6))
        assert result.visible_transfer == pytest.approx(5e-6, rel=0.01)

    def test_non_preloadable_transfers_add_up(self):
        entries = self._entries(n=10, xfer=5e-6)
        entries = [
            TimelineEntry(e.cell_index, e.cpu_prep, e.transfer_in, e.fpga_compute, e.transfer_out, e.cpu_post, preloadable=False)
            for e in entries
        ]
        result = CoExecutionTimeline().run(entries)
        assert result.visible_transfer == pytest.approx(10 * 5e-6, rel=0.01)

    def test_serialized_when_prep_depends_on_results(self):
        entries = self._entries(n=10)
        overlapped = CoExecutionTimeline().run(entries)
        serialized = CoExecutionTimeline(prep_depends_on_results=True).run(entries)
        assert serialized.total > overlapped.total

    def test_serial_front_added(self):
        result = CoExecutionTimeline(serial_front_seconds=1.0).run(self._entries(n=1))
        assert result.total > 1.0

    def test_empty_entries(self):
        result = CoExecutionTimeline(serial_front_seconds=0.5).run([])
        assert result.total == 0.5
        assert result.fpga_busy == 0.0

    def test_utilisation_bounds(self):
        result = CoExecutionTimeline().run(self._entries(n=8))
        assert 0.0 < result.fpga_utilisation <= 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yyyy", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text

    def test_speedup_report(self):
        report = SpeedupReport(design="d", ours_label="flex")
        report.add("flex", 1.0, quality=0.70)
        report.add("cpu", 3.0, quality=0.71)
        assert report.speedup_over("cpu") == pytest.approx(3.0)
        assert report.quality_ratio_over("cpu") == pytest.approx(0.71 / 0.70)
        row = report.row(["cpu"])
        assert row[0] == "d" and row[-1] == pytest.approx(3.0)

    def test_speedup_report_missing_label(self):
        report = SpeedupReport(design="d")
        report.add("flex", 1.0)
        assert math.isnan(report.speedup_over("unknown"))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)
