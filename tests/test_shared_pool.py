"""Persistent-pool lifecycle and shared-memory sync tests.

The multiprocess backend keeps one worker pool per backend lifetime and
publishes cell state through :mod:`repro.kernels.shm` instead of
pickling layouts.  This module covers the machinery the equivalence
suites exercise only implicitly: pool reuse across runs (fork exactly
once), teardown (no live children after ``close()``, after dropping the
backend, or after a worker task raises), the legalizer-level lifecycle
hooks, and the store/mirror round-trip in both shared-memory and
snapshot modes.
"""

from __future__ import annotations

import gc
import multiprocessing

import pytest

from repro.geometry import Cell, Layout
from repro.kernels import MultiprocessKernelBackend
from repro.kernels.shm import SharedCellStore, WorkerLayoutMirror
from repro.mgl.legalizer import MGLLegalizer

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def spread_layout() -> Layout:
    """Six well-separated clusters: shards statically at 2+ workers."""
    layout = Layout(12, 2000, name="spread")
    index = 0
    for cluster in range(6):
        base = 40.0 + cluster * 300.0
        for i in range(8):
            layout.add_cell(
                Cell(
                    index=index,
                    width=4.0,
                    height=1,
                    gp_x=base + 5.1 * i,
                    gp_y=float((i * 3) % 12),
                )
            )
            index += 1
    layout.rebuild_index()
    return layout


def reference_placements():
    layout = spread_layout()
    MGLLegalizer(backend="python").legalize(layout)
    return [(c.x, c.y, c.legalized) for c in layout.cells]


def placements(layout: Layout):
    return [(c.x, c.y, c.legalized) for c in layout.cells]


def pool_procs(backend):
    """The live worker processes of a backend's current pool."""
    assert backend._pool is not None and backend._pool.workers
    return [w.process for w in backend._pool.workers]


def assert_reaped(procs):
    """Every tracked worker process exited (asserts on *this* backend's
    workers, not on global ``active_children()`` — other suites may
    legitimately hold persistent pools of their own)."""
    assert procs and all(not p.is_alive() for p in procs)


@needs_fork
class TestPoolLifecycle:
    def test_pool_persists_across_runs(self):
        """Two consecutive legalize calls fork exactly once (same pids)."""
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        legalizer = MGLLegalizer(backend=backend)
        oracle = reference_placements()
        try:
            first = spread_layout()
            result = legalizer.legalize(first)
            assert result.trace.shard_stats["mode"] == "static"
            assert placements(first) == oracle
            assert backend.workers_spawned == 2
            pids_first = sorted(w.process.pid for w in backend._pool.workers)

            second = spread_layout()
            legalizer.legalize(second)
            assert placements(second) == oracle
            # The same worker processes served both runs.
            assert backend.workers_spawned == 2
            pids_second = sorted(w.process.pid for w in backend._pool.workers)
            assert pids_first == pids_second
        finally:
            backend.close()

    def test_close_reaps_workers_and_is_idempotent(self):
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        MGLLegalizer(backend=backend).legalize(spread_layout())
        workers = list(backend._pool.workers)
        assert workers and all(w.process.is_alive() for w in workers)
        backend.close()
        assert backend._pool is None
        assert_reaped([w.process for w in workers])
        backend.close()  # idempotent

    def test_close_is_not_terminal(self):
        """A closed backend lazily re-forks on the next run."""
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        oracle = reference_placements()
        try:
            MGLLegalizer(backend=backend).legalize(spread_layout())
            backend.close()
            layout = spread_layout()
            MGLLegalizer(backend=backend).legalize(layout)
            assert placements(layout) == oracle
            assert backend.workers_spawned == 4  # two pools over the lifetime
        finally:
            backend.close()

    def test_context_manager_closes_pool(self):
        with MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        ) as backend:
            MGLLegalizer(backend=backend).legalize(spread_layout())
            procs = pool_procs(backend)
        assert backend._pool is None
        assert_reaped(procs)

    def test_dropped_backend_reaps_workers(self):
        """Garbage-collecting an unclosed backend must not leak workers."""
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        MGLLegalizer(backend=backend).legalize(spread_layout())
        procs = pool_procs(backend)
        assert all(p.is_alive() for p in procs)
        del backend
        gc.collect()
        assert_reaped(procs)

    def test_worker_task_error_tears_down_pool(self):
        """A worker-side exception surfaces in the parent and reaps the pool."""
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        state = backend._ensure_pool()
        procs = pool_procs(backend)
        worker = state.workers[0]
        worker.conn.send(("no-such-task-kind", None, None))
        with pytest.raises(Exception, match="no-such-task-kind"):
            try:
                backend._recv_reply(worker)
            except Exception:
                backend.close()
                raise
        assert backend._pool is None
        assert_reaped(procs)

    def test_legalizer_close_hands_through_to_backend(self):
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        legalizer = MGLLegalizer(backend=backend)
        legalizer.legalize(spread_layout())
        procs = pool_procs(backend)
        legalizer.close()
        assert backend._pool is None
        assert_reaped(procs)

    def test_legalizer_context_manager(self):
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        with MGLLegalizer(backend=backend) as legalizer:
            legalizer.legalize(spread_layout())
            procs = pool_procs(backend)
        assert backend._pool is None
        assert_reaped(procs)

    def test_incremental_engine_close(self):
        from repro.incremental.engine import IncrementalLegalizer

        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        with IncrementalLegalizer(backend=backend) as engine:
            engine.begin(spread_layout())
            procs = pool_procs(backend)
        assert backend._pool is None
        assert_reaped(procs)

    def test_incremental_engine_close_tolerates_plain_legalizer(self):
        from repro.incremental.engine import IncrementalLegalizer

        class BareLegalizer:
            metrics = MGLLegalizer().metrics

            def legalize(self, layout):  # pragma: no cover - never called
                raise AssertionError

        engine = IncrementalLegalizer.__new__(IncrementalLegalizer)
        engine.legalizer = BareLegalizer()
        engine.close()  # must not raise on close-less legalizers

    def test_sequential_backend_close_is_noop(self):
        legalizer = MGLLegalizer(backend="python")
        legalizer.close()
        with MGLLegalizer(backend="python"):
            pass


class TestStoreMirrorRoundTrip:
    @staticmethod
    def build_layout(n: int = 10, name: str = "sync") -> Layout:
        layout = Layout(6, 400, name=name)
        for i in range(n):
            fixed = i % 4 == 3
            layout.add_cell(
                Cell(
                    index=i,
                    width=3.0 + (i % 3),
                    height=1 + (i % 2),
                    gp_x=7.3 * i + 0.125,
                    gp_y=float(i % 5),
                    x=float(4 * i),
                    y=float(i % 5),
                    fixed=fixed,
                    legalized=i % 2 == 0 or fixed,
                    name=f"n{i}",
                )
            )
        layout.rebuild_index()
        return layout

    @staticmethod
    def assert_mirror_matches(mirror: WorkerLayoutMirror, layout: Layout):
        assert len(mirror.layout.cells) == len(layout.cells)
        for mine, theirs in zip(mirror.layout.cells, layout.cells):
            assert (
                mine.index, mine.name, mine.x, mine.y, mine.gp_x, mine.gp_y,
                mine.width, mine.height, mine.fixed, mine.legalized,
            ) == (
                theirs.index, theirs.name, theirs.x, theirs.y, theirs.gp_x,
                theirs.gp_y, theirs.width, theirs.height, theirs.fixed,
                theirs.legalized,
            )
        index_of = lambda l: [  # noqa: E731 - local shorthand
            [(c.index, c.x) for c in l.obstacles_in_row(row)]
            for row in range(l.num_rows)
        ]
        assert index_of(mirror.layout) == index_of(layout)

    @pytest.mark.parametrize("use_shared_memory", [True, False])
    def test_publish_sync_refresh_roundtrip(self, use_shared_memory):
        if use_shared_memory:
            pytest.importorskip("numpy")
        store = SharedCellStore(use_shared_memory)
        mirror = WorkerLayoutMirror()
        try:
            layout = self.build_layout()
            store.publish(layout)
            mirror.apply_sync(store.build_sync(mirror))
            self.assert_mirror_matches(mirror, layout)

            # Mutate the mirror (as a shard task would), then refresh: the
            # mirror must reset exactly to the published state.
            cell = mirror.layout.cells[1]
            mirror.layout.mark_legalized(cell, 100.0, 2.0)
            mirror.stale = True
            mirror.refresh()
            self.assert_mirror_matches(mirror, layout)

            # Republish after parent-side movement: epoch bumps, same design.
            target = next(c for c in layout.cells if not c.fixed)
            layout.mark_legalized(target, target.x + 8.0, target.y)
            store.publish(layout)
            sync = store.build_sync(mirror)
            assert "design" not in sync and "names" not in sync
            mirror.apply_sync(sync)
            self.assert_mirror_matches(mirror, layout)

            # ECO growth: appended cells travel as a names tail only.
            base = len(layout.cells)
            for j in range(5):
                layout.add_cell(
                    Cell(
                        index=base + j, width=2.0, height=1,
                        gp_x=50.0 + 3 * j, gp_y=1.0, name=f"eco{j}",
                    )
                )
            layout.rebuild_index()
            store.publish(layout)
            sync = store.build_sync(mirror)
            assert "design" not in sync
            if use_shared_memory:
                assert tuple(sync.get("names", ())) == tuple(
                    f"eco{j}" for j in range(5)
                )
            mirror.apply_sync(sync)
            self.assert_mirror_matches(mirror, layout)
        finally:
            mirror.close()
            store.close()

    @pytest.mark.parametrize("use_shared_memory", [True, False])
    def test_design_identity_change_rebuilds_mirror(self, use_shared_memory):
        if use_shared_memory:
            pytest.importorskip("numpy")
        store = SharedCellStore(use_shared_memory)
        mirror = WorkerLayoutMirror()
        try:
            store.publish(self.build_layout(10, name="first"))
            mirror.apply_sync(store.build_sync(mirror))

            other = self.build_layout(6, name="second")
            store.publish(other)
            sync = store.build_sync(mirror)
            assert "design" in sync  # new layout object => full design sync
            mirror.apply_sync(sync)
            assert mirror.layout.name == "second"
            self.assert_mirror_matches(mirror, other)
        finally:
            mirror.close()
            store.close()

    def test_sync_is_incremental_when_up_to_date(self):
        pytest.importorskip("numpy")
        store = SharedCellStore(True)
        mirror = WorkerLayoutMirror()
        try:
            layout = self.build_layout()
            store.publish(layout)
            mirror.apply_sync(store.build_sync(mirror))
            store.publish(layout)
            sync = store.build_sync(mirror)
            # Same design, same segment, same size: the catch-up carries
            # nothing but the epoch/revision stamps.
            assert set(sync) == {"epoch", "design_rev", "n_cells"}
        finally:
            mirror.close()
            store.close()


@needs_fork
class TestSubsetRunsOnPool:
    def test_legalize_subset_reuses_pool(self):
        """ECO-style subset calls ride the same persistent pool."""
        backend = MultiprocessKernelBackend(
            workers=2, strategy="static", min_parallel_targets=2
        )
        try:
            layout = spread_layout()
            legalizer = MGLLegalizer(backend=backend)
            legalizer.legalize(layout)
            spawned = backend.workers_spawned

            # Knock two far-apart clusters dirty and re-legalize them.
            reference = layout.copy()
            dirty_ref = [c for c in reference.cells if c.index in (0, 40)]
            for cell in dirty_ref:
                reference.unlegalize_cell(cell)
            MGLLegalizer(backend="python").legalize_subset(reference, dirty_ref)

            dirty = [c for c in layout.cells if c.index in (0, 40)]
            for cell in dirty:
                layout.unlegalize_cell(cell)
            legalizer.legalize_subset(layout, dirty)
            assert placements(layout) == placements(reference)
            assert backend.workers_spawned == spawned  # no re-fork
        finally:
            backend.close()
