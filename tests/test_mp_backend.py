"""Unit tests of the multiprocess backend: configuration, registry
integration, kernel delegation and the intra-region point-parallel path.

End-to-end equality against the reference is covered by
``tests/test_kernels.py`` (the backend registers itself into the
parametrized equivalence suite) and ``tests/test_shard_properties.py``;
this module covers the backend's own machinery.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import FlexConfig
from repro.core.sacs import SortAheadShifter
from repro.kernels import (
    MultiprocessKernelBackend,
    available_backends,
    get_kernel_backend,
    resolve_backend,
)
from repro.kernels.mp_backend import WORKERS_ENV_VAR, default_worker_count
from repro.mgl.fop import FOPConfig, find_optimal_position
from repro.perf.report import shard_summary

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


class TestConfiguration:
    def test_registered_in_backend_registry(self):
        assert "multiprocess" in available_backends()
        assert isinstance(get_kernel_backend("multiprocess"), MultiprocessKernelBackend)

    def test_parameterized_name_sets_worker_count(self):
        backend = get_kernel_backend("multiprocess:3")
        assert isinstance(backend, MultiprocessKernelBackend)
        assert backend.workers == 3
        # Parameterized instances are cached under their full name.
        assert get_kernel_backend("multiprocess:3") is backend
        assert get_kernel_backend("multiprocess") is not backend

    def test_unknown_parameterized_base_raises(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            get_kernel_backend("numpy:4")

    def test_flex_config_accepts_parameterized_backend(self):
        FlexConfig(kernel_backend="multiprocess:2").validate()
        with pytest.raises(ValueError, match="kernel_backend"):
            FlexConfig(kernel_backend="multiprocess:x:y").validate()

    def test_env_var_controls_default_worker_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert default_worker_count() == 5
        assert MultiprocessKernelBackend().workers == 5
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert default_worker_count() == max(1, min(8, os.cpu_count() or 1))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            MultiprocessKernelBackend(workers=-1)
        with pytest.raises(ValueError, match="workers"):
            MultiprocessKernelBackend(workers=0)
        with pytest.raises(ValueError, match="strategy"):
            MultiprocessKernelBackend(strategy="magic")
        with pytest.raises(ValueError, match="sequential"):
            MultiprocessKernelBackend(inner="multiprocess")

    def test_invalid_parameterized_worker_counts_rejected(self):
        # Non-integer and < 1 "multiprocess:N" spellings raise a clear
        # ValueError naming the offending spelling (not a registry
        # KeyError, and not a crash deep inside pool setup).
        with pytest.raises(ValueError, match="multiprocess:0"):
            get_kernel_backend("multiprocess:0")
        with pytest.raises(ValueError, match="multiprocess:x"):
            get_kernel_backend("multiprocess:x")
        with pytest.raises(ValueError, match=">= 1"):
            get_kernel_backend("multiprocess:-3")

    def test_invalid_env_worker_counts_rejected(self, monkeypatch):
        for junk in ("zero", "1.5", "0", "-2", ""):
            monkeypatch.setenv(WORKERS_ENV_VAR, junk)
            if junk == "":
                # Empty string falls back to the cpu-count default.
                assert default_worker_count() >= 1
                continue
            with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
                default_worker_count()
            with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
                MultiprocessKernelBackend()

    def test_inner_defaults_to_fastest_sequential_backend(self):
        backend = MultiprocessKernelBackend(workers=2)
        expected = "numpy" if "numpy" in available_backends() else "python"
        assert backend.inner.name == expected

    def test_close_is_idempotent(self):
        backend = MultiprocessKernelBackend(workers=2)
        backend.close()
        backend.close()


class TestKernelDelegation:
    def test_kernel_methods_match_inner(self):
        from repro.testing import small_design
        from repro.mgl.insertion import enumerate_all_insertion_points
        from repro.mgl.local_region import build_local_region, initial_window
        from repro.mgl.premove import premove

        layout = small_design(num_cells=60, density=0.6, seed=3)
        premove(layout)
        for cell in layout.movable_cells()[: len(layout.cells) // 2]:
            cell.legalized = True
        layout.rebuild_index()
        target = next(c for c in layout.movable_cells() if not c.legalized)
        region, _ = build_local_region(layout, target, initial_window(layout, target))
        backend = MultiprocessKernelBackend(workers=2)
        inner = backend.inner
        ctx = backend.build_sacs_context(region)
        inner_ctx = inner.build_sacs_context(region)
        for point in list(enumerate_all_insertion_points(region, target))[:5]:
            got = backend.shift_sacs(region, target, point, ctx)
            ref = inner.shift_sacs(region, target, point, inner_ctx)
            assert (got.xt_lo, got.xt_hi, got.feasible) == (ref.xt_lo, ref.xt_hi, ref.feasible)
            assert got.left_thresholds == ref.left_thresholds
            assert got.right_thresholds == ref.right_thresholds

    def test_resolve_backend_instance_passthrough(self):
        backend = MultiprocessKernelBackend(workers=2)
        assert resolve_backend(backend) is backend


@needs_fork
class TestPointParallel:
    def test_parallel_fop_matches_reference(self):
        """Forced-low thresholds: whole FOP runs through the worker pool."""
        from repro.testing import small_design
        from repro.mgl.local_region import build_local_region, initial_window
        from repro.mgl.premove import premove
        from repro.perf.counters import TargetCellWork

        layout = small_design(num_cells=150, density=0.75, seed=21)
        premove(layout)
        accepted = []
        for cell in layout.movable_cells():
            if not any(cell.overlaps(other) for other in accepted):
                cell.legalized = True
                accepted.append(cell)
        layout.rebuild_index()
        target = next(c for c in layout.movable_cells() if not c.legalized)
        window = initial_window(layout, target, width_factor=30.0, min_width=120.0)
        region, _ = build_local_region(layout, target, window)

        ref_work = TargetCellWork(cell_index=target.index)
        reference = find_optimal_position(
            region, target,
            FOPConfig(shifter=SortAheadShifter(), backend="python"),
            ref_work,
        )

        backend = MultiprocessKernelBackend(workers=2)
        backend.POINT_PARALLEL_MIN_POINTS = 1
        backend.POINT_PARALLEL_MIN_WORK = 1
        try:
            work = TargetCellWork(cell_index=target.index)
            shifter = SortAheadShifter(backend=backend)
            result = find_optimal_position(
                region, target, FOPConfig(shifter=shifter, backend=backend), work
            )
            assert backend._point_parallel_regions >= 1
        finally:
            backend.close()

        assert (result.feasible, result.bottom_row, result.x, result.cost) == (
            reference.feasible, reference.bottom_row, reference.x, reference.cost
        )
        assert (result.n_points_evaluated, result.n_points_feasible) == (
            reference.n_points_evaluated, reference.n_points_feasible
        )
        # The winning outcome is re-derived in the parent and must match.
        assert result.outcome is not None
        assert result.outcome.left_thresholds == reference.outcome.left_thresholds
        assert result.outcome.right_thresholds == reference.outcome.right_thresholds
        # Work records (including the once-per-region sort report) match.
        assert work.insertion_points == ref_work.insertion_points

    def test_should_parallelize_respects_thresholds(self):
        backend = MultiprocessKernelBackend(workers=2)

        class FakeRegion:
            local_cells = list(range(300))

        points = list(range(backend.POINT_PARALLEL_MIN_POINTS))
        assert backend.should_parallelize_fop(FakeRegion(), points)
        assert not backend.should_parallelize_fop(FakeRegion(), points[:-1])
        solo = MultiprocessKernelBackend(workers=1)
        assert not solo.should_parallelize_fop(FakeRegion(), points)


class TestTraceReporting:
    def test_shard_summary_formats_stats(self):
        from repro.perf.counters import LegalizationTrace

        trace = LegalizationTrace(kernel_backend="multiprocess", worker_count=4)
        assert "workers=4" in shard_summary(trace)
        trace.shard_stats = {
            "workers": 4,
            "inner_backend": "numpy",
            "mode": "wavefront",
            "speculation_rejects": 3,
            "commits": 50,
            "n_components": 2,
            "shard_targets": [30, 20],
            "escaped_targets": 0,
            "sequential_rerun": False,
        }
        text = shard_summary(trace)
        assert "mode=wavefront" in text
        assert "rejects=3/50" in text
        assert "shards=30/20" in text
        plain = LegalizationTrace()
        assert shard_summary(plain) == "backend=python workers=1"
