"""Tests for FlexConfig, the task assignment and the pipeline descriptions."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_FLEX_CONFIG, FlexConfig, NORMAL_PIPELINE_CONFIG
from repro.core.pipeline import (
    FOP_STAGES_SPEC,
    PipelineOrganization,
    describe_organisation,
    stage_names,
)
from repro.core.task_assignment import (
    FOP_RESULT_WORDS,
    TaskAssignment,
    TaskPartition,
    UPDATE_WORDS_PER_MOVED_CELL,
)
from repro.perf.counters import TargetCellWork

from test_perf_models import make_trace


class TestFlexConfig:
    def test_default_is_full_flex(self):
        cfg = DEFAULT_FLEX_CONFIG
        assert cfg.fop_pe_parallelism == 2
        assert cfg.use_sacs
        assert cfg.pipeline is PipelineOrganization.MULTI_GRANULARITY
        assert cfg.task_partition is TaskPartition.FOP_ON_FPGA
        cfg.validate()

    def test_normal_pipeline_config(self):
        NORMAL_PIPELINE_CONFIG.validate()
        assert not NORMAL_PIPELINE_CONFIG.use_sacs
        assert NORMAL_PIPELINE_CONFIG.fop_pe_parallelism == 1

    def test_with_updates_returns_copy(self):
        cfg = FlexConfig()
        other = cfg.with_updates(fop_pe_parallelism=4)
        assert cfg.fop_pe_parallelism == 2
        assert other.fop_pe_parallelism == 4

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FlexConfig(fpga_clock_mhz=0).validate()
        with pytest.raises(ValueError):
            FlexConfig(fop_pe_parallelism=0).validate()
        with pytest.raises(ValueError):
            FlexConfig(ordering_window_size=1).validate()

    def test_multigranularity_requires_sacs(self):
        with pytest.raises(ValueError):
            FlexConfig(use_sacs=False, pipeline=PipelineOrganization.MULTI_GRANULARITY).validate()

    def test_label(self):
        assert "2PE" in FlexConfig().label()
        assert "sacs" in FlexConfig().label()


class TestPipelineDescription:
    def test_stage_names_order(self):
        assert stage_names() == [
            "cell_shift", "sort_bp", "merge_bp", "sum_slopesR", "sum_slopesL", "calculate_value",
        ]

    def test_stage_spec_positive(self):
        for spec in FOP_STAGES_SPEC:
            assert spec.per_item_cycles > 0
            assert spec.fixed_cycles >= 0

    def test_describe_organisations(self):
        for org in PipelineOrganization:
            text = describe_organisation(org)
            assert isinstance(text, str) and len(text) > 10


class TestTaskAssignment:
    def test_default_partition_steps(self):
        assignment = TaskAssignment()
        assert assignment.steps_on_fpga() == ("fop",)
        assert "update" in assignment.steps_on_cpu()
        assert "premove" in assignment.steps_on_cpu()

    def test_all_cpu_partition(self):
        assignment = TaskAssignment(TaskPartition.ALL_CPU)
        assert assignment.steps_on_fpga() == ()
        assert "fop" in assignment.steps_on_cpu()

    def test_fop_and_update_partition(self):
        assignment = TaskAssignment(TaskPartition.FOP_AND_UPDATE_ON_FPGA)
        assert assignment.steps_on_fpga() == ("fop", "update")
        assert "update" not in assignment.steps_on_cpu()

    def test_transfer_words_fop_only(self):
        work = TargetCellWork(cell_index=0)
        work.region_transfer_words = 200
        work.update_moved_cells = 5
        ta = TaskAssignment(TaskPartition.FOP_ON_FPGA).assign_target(work, preloadable=True)
        assert ta.host_to_fpga_words == 200
        assert ta.fpga_to_host_words == FOP_RESULT_WORDS

    def test_transfer_words_with_update_offloaded(self):
        work = TargetCellWork(cell_index=0)
        work.region_transfer_words = 200
        work.update_moved_cells = 5
        ta = TaskAssignment(TaskPartition.FOP_AND_UPDATE_ON_FPGA).assign_target(work, preloadable=True)
        assert ta.fpga_to_host_words == FOP_RESULT_WORDS + 6 * UPDATE_WORDS_PER_MOVED_CELL

    def test_all_cpu_has_no_transfers(self):
        work = TargetCellWork(cell_index=0)
        work.region_transfer_words = 200
        ta = TaskAssignment(TaskPartition.ALL_CPU).assign_target(work, preloadable=True)
        assert ta.host_to_fpga_words == 0 and ta.fpga_to_host_words == 0

    def test_assign_trace_totals(self):
        trace = make_trace(5, 2)
        summary = TaskAssignment().assign_trace(trace)
        assert len(summary.targets) == 5
        assert summary.total_host_to_fpga_words == 5 * 120
        assert summary.total_fpga_to_host_words == 5 * FOP_RESULT_WORDS
        assert summary.total_transfer_words == summary.total_host_to_fpga_words + summary.total_fpga_to_host_words

    def test_preload_flags_respected(self):
        trace = make_trace(3, 1)
        summary = TaskAssignment().assign_trace(trace, preload_flags=[False, True])
        assert summary.targets[0].preloadable is False
        assert summary.targets[1].preloadable is True
        assert summary.targets[2].preloadable is True  # default
