"""Fixture: the lock-discipline-clean mirror of lck_bad — zero findings."""

import threading


class Counter:
    _GUARDED_BY = {"_count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def value(self):
        with self._lock:
            return self._count

    def _reset_locked(self):
        # *_locked suffix: documented caller-holds-the-lock helper.
        self._count = 0

    def drain(self):
        with self._lock:
            self._reset_locked()
