"""Fixture: the fork-safety-clean mirror of frk_bad — zero findings."""

from multiprocessing import shared_memory


def _pool_worker(conn):
    while True:
        task = conn.recv()
        if task is None:
            return
        conn.send(task)


def spawn(ctx, conn):
    proc = ctx.Process(target=_pool_worker, args=(conn,))
    proc.start()
    return proc


def read_segment(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf)
    finally:
        shm.close()


class Segment:
    def __init__(self, name):
        # Escapes to self: the owner's lifecycle methods release it.
        self.shm = shared_memory.SharedMemory(name=name)

    def close(self):
        self.shm.close()
