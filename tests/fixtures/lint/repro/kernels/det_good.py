"""Fixture: the determinism-clean mirror of det_bad — zero findings."""

import random
import time

import numpy as np


def shard_order(cells):
    out = []
    for cell in sorted(set(cells)):  # sorted: order is specified
        out.append(cell)
    return out


def pool_size(configured):
    return max(1, int(configured))  # host-independent


def jitter(seed):
    return random.Random(seed).random()  # explicitly seeded instance


def jitter_np(seed):
    return np.random.default_rng(seed).random()  # seeded generator


def stamp():
    return time.perf_counter()  # durations are telemetry, not wall clock


def cache_token(region):
    return region.index  # stable identity, not an address
