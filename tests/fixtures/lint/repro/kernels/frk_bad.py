"""Fixture: every frk-* rule must fire in this file."""

import multiprocessing
import threading
from multiprocessing import shared_memory

_REGISTRY_LOCK = threading.Lock()


def _pool_worker(conn):
    with _REGISTRY_LOCK:  # frk-capture: pre-fork lock read by worker entry
        conn.send("ready")


class Pool:
    def spawn_lambda(self):
        return multiprocessing.Process(target=lambda: None)  # frk-capture

    def spawn_bound(self):
        return multiprocessing.Process(target=self.run)  # frk-capture

    def spawn_self_arg(self):
        return multiprocessing.Process(
            target=_pool_worker, args=(self,)  # frk-capture
        )

    def run(self):
        pass


def leak_on_exception(name):
    shm = shared_memory.SharedMemory(name=name)  # frk-shm-lifecycle
    return bytes(shm.buf)


def drop_segment():
    shared_memory.SharedMemory(create=True, size=8)  # frk-shm-lifecycle
