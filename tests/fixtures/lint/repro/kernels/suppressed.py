"""Fixture: violations silenced by per-line suppressions — zero findings."""

import os


def cache_token(region):
    # Identity token, never ordered or persisted.
    return id(region)  # repro: allow[det-id-key]


def pool_size():
    return os.cpu_count()  # repro: allow[*] result-neutral by construction
