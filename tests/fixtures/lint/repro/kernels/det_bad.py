"""Fixture: every det-* rule must fire exactly once in this file."""

import os
import random
import time


def shard_order(cells):
    out = []
    for cell in set(cells):  # det-set-iter
        out.append(cell)
    return out


def pool_size():
    return os.cpu_count()  # det-cpu-count


def jitter():
    return random.random()  # det-unseeded-random


def stamp():
    return time.time()  # det-wall-clock


def cache_token(region):
    return id(region)  # det-id-key
