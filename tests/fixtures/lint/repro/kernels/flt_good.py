"""Fixture: the float-exactness-clean mirror of flt_bad — zero findings."""

import numpy as np


def explicit_fold(values):
    total = 0.0
    for value in values:  # the documented left-to-right float64 fold
        total += value
    return total


def count(cells):
    return sum(1 for _ in cells)  # int sum: exact in any order


def total_len(shards):
    return sum(len(shard) for shard in shards)  # int sum


def ranked(n):
    return sum(range(n))  # int sum


def widened(arr):
    return arr.astype("float64")  # full width is fine


def as_double(x):
    return np.float64(x)
