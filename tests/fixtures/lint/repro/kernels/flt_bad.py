"""Fixture: every flt-* rule must fire in this file."""

import math

import numpy as np


def compensated(values):
    return math.fsum(values)  # flt-fsum


def folded(values):
    return sum(values)  # flt-sum (not provably int)


def narrowed(x):
    return np.float32(x)  # flt-narrow


def narrowed_astype(arr):
    return arr.astype("float32")  # flt-narrow (string dtype)
