"""Fixture: both lck-* rules must fire (lock rules are not path-scoped)."""

import threading


class Counter:
    _GUARDED_BY = {"_count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        self._count += 1  # lck-unguarded

    def peek(self):
        return self._count  # lck-unguarded

    def reset(self):
        with self._lock:
            with self._lock:  # lck-nested (self-deadlock)
                self._count = 0
