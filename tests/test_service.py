"""Tests of the legalization service (daemon + sessions + protocol).

The load-bearing block is the concurrency contract: whatever
interleaving of clients, connections and queue coalescing the daemon
serves, every session's final placement must be **bit-for-bit
identical** to an offline :class:`~repro.incremental.IncrementalLegalizer`
replay of that session's served ledger — on every registered kernel
backend, at any worker count.  The protocol block exercises every
structured error path the wire can produce and asserts the daemon (and
innocent bystander sessions) survive each one.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.benchgen import EcoSpec, generate_eco_stream
from repro.designio import layout_fingerprint, layout_from_dict, layout_to_dict
from repro.incremental import IncrementalLegalizer
from repro.kernels import available_backends
from repro.obs.metrics import find_series
from repro.service import (
    LegalizationServer,
    ServeConfig,
    ServiceClient,
    ServiceError,
    Session,
    SessionConfig,
    offline_replay,
)
from repro.service.protocol import MAGIC, recv_frame, send_frame
from repro.service.protocol import ProtocolError as ServiceErrorLike
from repro.service.server import _InflightGauge
from repro.testing import small_design

import numpy as np


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def legalized_copy(layout):
    """A legalized copy (streams must be generated against legal state)."""
    copy = layout.copy()
    engine = IncrementalLegalizer(backend="python")
    engine.begin(copy)
    engine.close()
    return copy


def eco_stream_for(layout, *, batches, seed, churn=0.05):
    """A seeded delta stream valid against ``layout`` after legalization."""
    return generate_eco_stream(
        legalized_copy(layout), EcoSpec(churn=churn, batches=batches, seed=seed)
    )


def move_only_batch(layout, rng, size=3):
    """Moves of existing movable cells only — valid in *any* apply order."""
    movable = [c for c in layout.cells if not c.fixed]
    picks = rng.choice(len(movable), size=min(size, len(movable)), replace=False)
    return [
        {
            "op": "move",
            "index": movable[int(i)].index,
            "gp_x": float(rng.uniform(0, layout.width - movable[int(i)].width)),
            "gp_y": float(rng.uniform(0, layout.num_rows - movable[int(i)].height)),
        }
        for i in picks
    ]


@pytest.fixture
def server():
    srv = LegalizationServer(ServeConfig(port=0)).start()
    yield srv
    srv.close()


def connect(srv, **kwargs):
    host, port = srv.address
    return ServiceClient(host, port, timeout=kwargs.pop("timeout", 30.0))


# ----------------------------------------------------------------------
# End-to-end service behaviour
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_single_session_round_trip(self, server):
        design = small_design(num_cells=90, density=0.55, seed=11)
        stream = eco_stream_for(design, batches=4, seed=5)
        with connect(server) as client:
            assert client.ping()["sessions"] == 0
            handle = client.open_session(
                design, config={"backend": "python", "max_avedis_drift": 0.05}
            )
            assert handle.opened["base_legalized"]
            for batch in stream:
                result = handle.apply(batch)
                assert result["success"]
                assert result["mode"] in ("incremental", "full", "repack", "noop")
            repack = handle.repack(wait=True)
            assert repack["mode"] == "repack"
            assert repack["repack_reason"] == "requested"
            stats = handle.stats()
            assert stats["engine"]["batches"] == len(stream) + 1
            final = handle.close()
            assert final["failed_batches"] == 0
            assert len(final["ledger"]) == len(stream) + 1
            assert handle.verify(final), "served layout != offline replay"

    def test_empty_batch_and_stats_wait(self, server):
        design = small_design(num_cells=60, density=0.5, seed=2)
        with connect(server) as client:
            handle = client.open_session(design, config={"backend": "python"})
            result = handle.apply([])
            assert result["mode"] == "noop"
            stats = handle.stats(wait=True)
            assert stats["queue_depth"] == 0
            final = handle.close()
            assert handle.verify(final)

    def test_async_submit_then_barrier(self, server):
        design = small_design(num_cells=70, density=0.5, seed=4)
        stream = eco_stream_for(design, batches=6, seed=9)
        with connect(server) as client:
            handle = client.open_session(design, config={"backend": "python"})
            for batch in stream:
                response = handle.apply(batch, wait=False)
                assert response["queued"]
            stats = handle.stats(wait=True)
            assert stats["ledger_entries"] == len(stream)
            assert stats["async_errors"] == 0
            final = handle.close()
            assert handle.verify(final)

    def test_final_layout_round_trip(self, server):
        design = small_design(num_cells=60, density=0.5, seed=6)
        stream = eco_stream_for(design, batches=2, seed=1)
        with connect(server) as client:
            handle = client.open_session(design, config={"backend": "python"})
            for batch in stream:
                handle.apply(batch)
            final = handle.close(return_layout=True)
            served = layout_from_dict(final["layout"])
            assert layout_fingerprint(served) == final["fingerprint"]

    def test_session_name_and_attach(self, server):
        design = small_design(num_cells=50, density=0.5, seed=8)
        with connect(server) as client_a, connect(server) as client_b:
            handle = client_a.open_session(
                design, session="mydesign", config={"backend": "python"}
            )
            assert handle.name == "mydesign"
            # A second connection addresses the same session by name.
            other = client_b.attach("mydesign")
            result = other.apply(move_only_batch(design, np.random.default_rng(0)))
            assert result["success"]
            final = handle.close()
            assert final["ledger"], "batch from the second connection not served"


# ----------------------------------------------------------------------
# The concurrency contract
# ----------------------------------------------------------------------
class TestConcurrentExactness:
    @pytest.mark.parametrize("backend", available_backends())
    def test_concurrent_clients_bit_for_bit(self, server, backend):
        """4 clients x 10 batches each: zero mismatches vs offline replay."""
        clients, batches = 4, 10
        config = {"backend": backend, "max_avedis_drift": 0.10, "worker_budget": 2}
        designs = [
            small_design(num_cells=80, density=0.55, seed=20 + i)
            for i in range(clients)
        ]
        streams = [
            eco_stream_for(designs[i], batches=batches, seed=100 + i, churn=0.05)
            for i in range(clients)
        ]
        results = [None] * clients
        errors = []

        def run_client(i):
            try:
                with connect(server, timeout=120.0) as client:
                    handle = client.open_session(designs[i], config=config)
                    for batch in streams[i]:
                        result = handle.apply(batch)
                        assert result["success"], f"client {i} batch failed"
                    final = handle.close()
                    results[i] = (handle, final)
            except Exception as exc:  # surface in the main thread
                errors.append((i, exc))

        threads = [
            threading.Thread(target=run_client, args=(i,)) for i in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, f"client errors: {errors}"
        for i, (handle, final) in enumerate(results):
            assert final["failed_batches"] == 0, f"client {i}"
            assert len(final["ledger"]) == batches, f"client {i}"
            assert handle.verify(final), (
                f"client {i}: served placement diverged from offline replay "
                f"on backend {backend!r}"
            )

    def test_two_connections_one_session_any_interleaving(self, server):
        """Racing writers: whatever order won, the ledger replays exactly."""
        design = small_design(num_cells=80, density=0.55, seed=31)
        batches_per_writer = 6
        config = {"backend": "python"}
        with connect(server) as opener:
            handle = opener.open_session(design, session="shared", config=config)

            def writer(seed):
                rng = np.random.default_rng(seed)
                with connect(server) as client:
                    writer_handle = client.attach("shared")
                    for _ in range(batches_per_writer):
                        writer_handle.apply(move_only_batch(design, rng))

            threads = [threading.Thread(target=writer, args=(s,)) for s in (1, 2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            final = handle.close()
            assert len(final["ledger"]) == 2 * batches_per_writer
            assert final["failed_batches"] == 0
            assert handle.verify(final), (
                "interleaved writers broke replay equality"
            )


# ----------------------------------------------------------------------
# Coalescing and admission (deterministic, session-level)
# ----------------------------------------------------------------------
class TestQueueMechanics:
    def _session(self, **config):
        design = layout_to_dict(small_design(num_cells=40, density=0.5, seed=3))
        return Session(
            "unit", design, SessionConfig(backend="python", **config)
        ), design

    def test_coalescing_batches_share_one_dispatch(self):
        session, design = self._session()
        rng = np.random.default_rng(7)
        layout = layout_from_dict(design)
        batches = [move_only_batch(layout, rng) for _ in range(3)]
        # Simulate an active dispatcher so submissions pile up in the
        # queue, then release it: one drain must apply all three.
        with session._mutex:
            session._dispatching = True
        for batch in batches:
            session.submit(batch, wait=False)
        assert session.queue_depth() == 3
        with session._mutex:
            session._dispatching = False
        session.barrier()
        assert session.dispatches == 1
        assert session.coalesced_batches == 2
        assert len(session.ledger) == 3
        final = session.close()
        replayed = offline_replay(design, final["ledger"], session.config)
        assert layout_fingerprint(replayed) == final["fingerprint"]

    def test_inflight_gauge_rejects_at_limit(self):
        gauge = _InflightGauge(2)
        design = layout_to_dict(small_design(num_cells=40, density=0.5, seed=3))
        session = Session(
            "unit", design, SessionConfig(backend="python"), inflight=gauge
        )
        rng = np.random.default_rng(5)
        layout = layout_from_dict(design)
        with session._mutex:
            session._dispatching = True  # park submissions in the queue
        session.submit(move_only_batch(layout, rng), wait=False)
        session.submit(move_only_batch(layout, rng), wait=False)
        with pytest.raises(ServiceErrorLike) as excinfo:
            session.submit(move_only_batch(layout, rng), wait=False)
        assert excinfo.value.code == "busy"
        with session._mutex:
            session._dispatching = False
        session.barrier()
        assert gauge.value == 0  # slots released as batches completed
        session.submit(move_only_batch(layout, rng), wait=True)
        session.close()

    def test_closed_session_rejects_submissions(self):
        session, design = self._session()
        session.close()
        rng = np.random.default_rng(1)
        with pytest.raises(ServiceErrorLike) as excinfo:
            session.submit(move_only_batch(layout_from_dict(design), rng))
        assert excinfo.value.code == "session_closed"

    def test_counters_consistent_under_concurrent_readers(self):
        """Regression for the lck-unguarded fixes in Session.

        Dispatcher counters and the ledger are now mutated and read only
        under ``_mutex``; hammering one session from many submitter
        threads while another thread polls ``stats()``/``counters()``
        must end with counts that reconcile exactly against what was
        submitted (and must not crash the poller mid-snapshot).
        """
        session, design = self._session()
        rng = np.random.default_rng(11)
        layout = layout_from_dict(design)
        batches = [move_only_batch(layout, rng) for _ in range(12)]
        stop = threading.Event()
        snapshots = []

        def poll():
            while not stop.is_set():
                snapshots.append((session.counters(), session.stats()))

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        threads = [
            threading.Thread(target=session.submit, args=(batch,))
            for batch in batches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        session.barrier()
        stop.set()
        poller.join(timeout=10.0)
        assert not poller.is_alive()
        counters = session.counters()
        stats = session.stats()
        assert stats["ledger_entries"] == len(batches)
        assert 1 <= counters["dispatches"] <= len(batches) + 1  # + barrier
        assert counters["coalesced_batches"] <= len(batches) - 1
        # Every polled snapshot was internally sane (no torn reads).
        for polled_counters, polled_stats in snapshots:
            assert 0 <= polled_counters["coalesced_batches"] <= len(batches)
            assert polled_stats["ledger_entries"] <= len(batches)
        final = session.close()
        replayed = offline_replay(design, final["ledger"], session.config)
        assert layout_fingerprint(replayed) == final["fingerprint"]

    def test_close_returns_ledger_snapshot(self):
        """close() hands back a copy, not the live (guarded) ledger list."""
        session, design = self._session()
        rng = np.random.default_rng(2)
        session.submit(move_only_batch(layout_from_dict(design), rng))
        final = session.close()
        assert final["ledger"] is not session.ledger
        assert final["ledger"] == session.ledger


# ----------------------------------------------------------------------
# Protocol error paths — each must leave the daemon serving
# ----------------------------------------------------------------------
class TestProtocolErrors:
    def _raw(self, server):
        sock = socket.create_connection(server.address, timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _alive(self, server):
        with connect(server) as client:
            assert client.ping()["ok"]

    @staticmethod
    def _assert_dropped(sock):
        """The daemon hung up: EOF, or RST if our junk was still unread."""
        try:
            assert sock.recv(1) == b""
        except ConnectionResetError:
            pass

    def test_malformed_frame_drops_connection_not_daemon(self, server):
        with self._raw(server) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_frame"
            # The stream is poisoned: the daemon hangs up on us...
            self._assert_dropped(sock)
        self._alive(server)  # ...but keeps serving everyone else

    def test_oversized_payload_declaration(self, server):
        with self._raw(server) as sock:
            sock.sendall(struct.pack("!4sI", MAGIC, 1 << 31))
            response = recv_frame(sock)
            assert response["error"]["code"] == "payload_too_large"
            self._assert_dropped(sock)
        self._alive(server)

    def test_bad_json_keeps_connection(self, server):
        with self._raw(server) as sock:
            body = b"{this is not json"
            sock.sendall(struct.pack("!4sI", MAGIC, len(body)) + body)
            response = recv_frame(sock)
            assert response["error"]["code"] == "bad_json"
            # Frame was fully consumed: the same connection still works.
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True

    def test_non_object_payload(self, server):
        with self._raw(server) as sock:
            body = b"[1, 2, 3]"
            sock.sendall(struct.pack("!4sI", MAGIC, len(body)) + body)
            assert recv_frame(sock)["error"]["code"] == "bad_json"

    def test_unknown_op(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("levitate")
            assert excinfo.value.code == "unknown_op"
            assert client.ping()["ok"]

    def test_missing_op(self, server):
        with self._raw(server) as sock:
            send_frame(sock, {"deltas": []})
            assert recv_frame(sock)["error"]["code"] == "bad_request"

    def test_apply_to_unknown_session(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("apply_deltas", session="ghost", deltas=[])
            assert excinfo.value.code == "unknown_session"

    def test_apply_to_closed_session(self, server):
        design = small_design(num_cells=40, density=0.5, seed=5)
        with connect(server) as client:
            handle = client.open_session(
                design, session="brief", config={"backend": "python"}
            )
            handle.close()
            with pytest.raises(ServiceError) as excinfo:
                handle.apply([])
            assert excinfo.value.code == "session_closed"

    def test_invalid_deltas_leave_session_usable(self, server):
        design = small_design(num_cells=50, density=0.5, seed=12)
        with connect(server) as client:
            handle = client.open_session(design, config={"backend": "python"})
            with pytest.raises(ServiceError) as excinfo:
                handle.apply([{"op": "move", "index": 99999, "gp_x": 1, "gp_y": 1}])
            assert excinfo.value.code == "invalid_deltas"
            with pytest.raises(ServiceError) as excinfo:
                handle.apply([{"op": "warp_cell", "index": 0}])
            assert excinfo.value.code == "invalid_deltas"
            # Rejected batches mutated nothing and were not recorded.
            result = handle.apply(move_only_batch(design, np.random.default_rng(2)))
            assert result["success"]
            final = handle.close()
            assert len(final["ledger"]) == 1
            assert handle.verify(final)

    def test_bad_session_config(self, server):
        design = small_design(num_cells=40, density=0.5, seed=5)
        with connect(server) as client:
            for config in (
                {"backend": "warp-drive"},
                {"backend": "numpy:4"},
                {"frobnicate": True},
                {"full_threshold": 3.0},
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client.open_session(design, config=config)
                assert excinfo.value.code == "bad_request", config
            assert client.ping()["sessions"] == 0

    def test_invalid_design_payload(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("open_session", design={"cells": "nope"}, config={})
            assert excinfo.value.code == "bad_request"

    def test_mid_batch_disconnect_leaves_sessions_intact(self, server):
        design = small_design(num_cells=50, density=0.5, seed=13)
        with connect(server) as client:
            handle = client.open_session(
                design, session="sturdy", config={"backend": "python"}
            )
            # A second connection dies mid-frame: header promises 512
            # bytes, sends 10, vanishes.
            rude = self._raw(server)
            rude.sendall(struct.pack("!4sI", MAGIC, 512) + b"0123456789")
            rude.close()
            time.sleep(0.1)
            # The daemon and the session shrug it off.
            result = handle.apply(move_only_batch(design, np.random.default_rng(3)))
            assert result["success"]
            final = handle.close()
            assert handle.verify(final)


# ----------------------------------------------------------------------
# Observability: the stats server section and the metrics op
# ----------------------------------------------------------------------
def _counter_total(snapshot, name, **labels):
    """Sum a counter's value over every series matching ``labels``."""
    wanted = {k: str(v) for k, v in labels.items()}
    return sum(
        c["value"]
        for c in snapshot.get("counters", [])
        if c["name"] == name
        and all(c["labels"].get(k) == v for k, v in wanted.items())
    )


class TestObservability:
    """The registry is process-global, so every assertion here is
    delta-based (scrape before, scrape after) — other tests in the same
    pytest process legitimately bump the same counters."""

    def test_stats_includes_server_section(self, server):
        design = small_design(num_cells=50, density=0.5, seed=21)
        with connect(server) as client:
            handle = client.open_session(
                design, session="obsstats", config={"backend": "python"}
            )
            stats = handle.stats()
            srv = stats["server"]
            assert srv["sessions"] == 1
            assert srv["max_sessions"] == server.config.max_sessions
            assert srv["inflight"] == 0
            assert srv["max_inflight"] == server.config.max_inflight
            assert srv["queue_depths"] == {"obsstats": 0}
            assert srv["draining"] is False
            handle.close()

    def test_metrics_op_counts_and_latency(self, server):
        design = small_design(num_cells=60, density=0.5, seed=22)
        batches = [
            move_only_batch(design, np.random.default_rng(s)) for s in range(5)
        ]
        with connect(server) as client:
            before = client.metrics()["metrics"]
            handle = client.open_session(
                design, session="obsm", config={"backend": "python"}
            )
            for batch in batches:
                handle.apply(batch)
            response = client.metrics()
            after = response["metrics"]

            applied = _counter_total(
                after, "repro_requests_total", op="apply_deltas", status="ok"
            ) - _counter_total(
                before, "repro_requests_total", op="apply_deltas", status="ok"
            )
            assert applied >= len(batches)

            hist = find_series(
                after, "histograms", "repro_op_latency_seconds", op="apply_deltas"
            )
            assert hist is not None
            assert hist["count"] >= len(batches)
            assert hist["sum"] >= 0.0
            assert sum(hist["buckets"]) == hist["count"]

            # Liveness gauges refreshed at scrape time.
            assert find_series(after, "gauges", "repro_inflight")["value"] == 0
            depth = find_series(
                after, "gauges", "repro_session_queue_depth", session="obsm"
            )
            assert depth is not None and depth["value"] == 0

            # Per-session engine summaries ride along with the scrape.
            summary = response["sessions"]["obsm"]
            assert summary["queue_depth"] == 0
            assert summary["engine"]["batches"] == len(batches)

            handle.close()
            # Closed sessions must not linger as stale gauge series.
            final = client.metrics()["metrics"]
            assert find_series(
                final, "gauges", "repro_session_queue_depth", session="obsm"
            ) is None

    def test_metrics_prometheus_text(self, server):
        design = small_design(num_cells=40, density=0.5, seed=23)
        with connect(server) as client:
            handle = client.open_session(
                design, session="obsprom", config={"backend": "python"}
            )
            handle.apply(move_only_batch(design, np.random.default_rng(1)))
            response = client.metrics(format="prometheus")
            text = response["text"]
            assert "# TYPE repro_requests_total counter" in text
            assert "# TYPE repro_op_latency_seconds histogram" in text
            assert (
                'repro_op_latency_seconds_bucket{op="apply_deltas",le="+Inf"}'
                in text
            )
            assert 'repro_session_queue_depth{session="obsprom"} 0' in text
            assert "repro_inflight 0" in text
            handle.close()

    def test_metrics_rejects_unknown_format(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.metrics(format="xml")
            assert excinfo.value.code == "bad_request"
            assert client.ping()["ok"]

    def test_metrics_under_concurrent_clients(self, server):
        """4 concurrent clients: live scrape mid-soak, consistent deltas."""
        clients, batches = 4, 6
        designs = [
            small_design(num_cells=60, density=0.5, seed=40 + i)
            for i in range(clients)
        ]
        with connect(server) as scraper:
            before = scraper.metrics()["metrics"]
            errors = []

            def run_client(i):
                try:
                    rng = np.random.default_rng(200 + i)
                    with connect(server, timeout=120.0) as client:
                        handle = client.open_session(
                            designs[i], config={"backend": "python"}
                        )
                        for _ in range(batches):
                            assert handle.apply(
                                move_only_batch(designs[i], rng)
                            )["success"]
                        handle.close()
                except Exception as exc:
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            # Scrapes interleave with the soak: each must be a coherent
            # snapshot, never a crash or a torn histogram.
            while any(t.is_alive() for t in threads):
                snap = scraper.metrics()["metrics"]
                for hist in snap.get("histograms", []):
                    assert sum(hist["buckets"]) == hist["count"], hist["name"]
                time.sleep(0.01)
            for t in threads:
                t.join(timeout=120)
            assert not errors, f"client errors: {errors}"

            after = scraper.metrics()["metrics"]
            applied = _counter_total(
                after, "repro_requests_total", op="apply_deltas", status="ok"
            ) - _counter_total(
                before, "repro_requests_total", op="apply_deltas", status="ok"
            )
            assert applied == clients * batches
            assert find_series(after, "gauges", "repro_inflight")["value"] == 0


# ----------------------------------------------------------------------
# Admission control and shutdown
# ----------------------------------------------------------------------
class TestAdmissionAndShutdown:
    def test_max_sessions(self):
        srv = LegalizationServer(ServeConfig(port=0, max_sessions=1)).start()
        try:
            design = small_design(num_cells=40, density=0.5, seed=5)
            with connect(srv) as client:
                first = client.open_session(
                    design, session="one", config={"backend": "python"}
                )
                with pytest.raises(ServiceError) as excinfo:
                    client.open_session(design, config={"backend": "python"})
                assert excinfo.value.code == "session_limit"
                first.close()
                # The slot frees up once the session closes.
                second = client.open_session(
                    design, session="two", config={"backend": "python"}
                )
                second.close()
        finally:
            srv.close()

    def test_duplicate_session_name(self, server):
        design = small_design(num_cells=40, density=0.5, seed=5)
        with connect(server) as client:
            client.open_session(design, session="dup", config={"backend": "python"})
            with pytest.raises(ServiceError) as excinfo:
                client.open_session(design, session="dup", config={"backend": "python"})
            assert excinfo.value.code == "bad_request"

    def test_shutdown_drains_and_stops(self):
        srv = LegalizationServer(ServeConfig(port=0)).start()
        design = small_design(num_cells=50, density=0.5, seed=17)
        with connect(srv) as client:
            handle = client.open_session(design, config={"backend": "python"})
            for _ in range(3):
                handle.apply(
                    move_only_batch(design, np.random.default_rng(4)), wait=False
                )
            response = client.shutdown()
            assert response["ok"]
        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                connect(srv, timeout=1.0).close()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon still accepting connections after shutdown")
        srv.close()  # idempotent

    def test_open_rejected_while_draining(self):
        srv = LegalizationServer(ServeConfig(port=0)).start()
        design = small_design(num_cells=40, density=0.5, seed=5)
        with connect(srv) as client:
            srv._draining = True
            with pytest.raises(ServiceError) as excinfo:
                client.open_session(design, config={"backend": "python"})
            assert excinfo.value.code == "shutting_down"
        srv.close()

    def test_ping_reports_draining(self):
        """Regression for the lck-unguarded fix: ping reads ``_draining``
        under the server mutex, so a drain started on another thread is
        visible to clients immediately and consistently."""
        srv = LegalizationServer(ServeConfig(port=0)).start()
        try:
            with connect(srv) as client:
                assert client.ping()["draining"] is False
                with srv._mutex:
                    srv._draining = True
                assert client.ping()["draining"] is True
        finally:
            srv.close()
