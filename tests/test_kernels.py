"""Backend-equivalence tests for the kernel layer (repro.kernels).

Every registered backend must reproduce the pure-Python oracle **bit for
bit**: identical displacement curves, identical minimization results,
identical SACS shift outcomes (values *and* threshold-dict insertion
order, which downstream stable sorts depend on), identical FOP
positions/costs, and identical end-to-end legalization results and work
counters.  The suite is parametrized over the registry so a new backend
only needs to be registered to be covered.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.benchgen import DesignSpec, generate_design
from repro.core import FlexConfig, FlexLegalizer
from repro.core.sacs import SortAheadShifter
from repro.geometry import Cell, Window
from repro.kernels import (
    DEFAULT_BACKEND,
    available_backends,
    get_kernel_backend,
    resolve_backend,
)
from repro.mgl import MGLLegalizer
from repro.mgl.curves import BreakpointPiece
from repro.mgl.fop import FOPConfig, find_optimal_position
from repro.mgl.insertion import enumerate_all_insertion_points
from repro.mgl.local_region import build_local_region
from repro.mgl.premove import premove
from repro.testing import small_design

#: Backends compared against the oracle (the oracle compares to itself
#: trivially, which also locks the parametrization shape).
BACKENDS = available_backends()
NON_REFERENCE = [name for name in BACKENDS if name != "python"]

needs_numpy = pytest.mark.skipif(
    "numpy" not in BACKENDS, reason="numpy backend not available"
)


# ----------------------------------------------------------------------
# Workload construction helpers
# ----------------------------------------------------------------------
def prepared_region(
    num_cells=160,
    density=0.7,
    seed=13,
    target_height=2,
    height_mix=None,
    target_width=4.0,
):
    """A localRegion over a legalized neighbourhood plus a pending target."""
    spec = DesignSpec(
        name=f"kern{seed}",
        num_cells=num_cells,
        density=density,
        seed=seed,
        perturbation_x=0.0,
        perturbation_y=0.0,
        **({"height_mix": height_mix} if height_mix else {}),
    )
    layout = generate_design(spec)
    premove(layout)
    accepted = []
    for cell in layout.movable_cells():
        if not any(cell.overlaps(other) for other in accepted):
            cell.legalized = True
            accepted.append(cell)
    layout.rebuild_index()
    target = Cell(
        index=len(layout.cells),
        width=target_width,
        height=target_height,
        gp_x=layout.width / 2,
        gp_y=layout.height / 2,
    )
    layout.add_cell(target)
    window = Window(layout.width * 0.2, layout.width * 0.8, 0, layout.num_rows)
    region, _ = build_local_region(layout, target, window)
    return region, target


REGION_CASES = {
    "mixed": dict(),
    "single_height": dict(target_height=1, height_mix={1: 1.0}),
    "tall": dict(
        target_height=3,
        height_mix={1: 0.5, 2: 0.2, 3: 0.15, 4: 0.1, 5: 0.05},
    ),
    "dense": dict(num_cells=320, density=0.82, seed=7),
}


def random_pieces(rng: random.Random, n: int):
    """A synthetic breakpoint-piece population with many exact duplicates."""
    xs = [round(rng.uniform(0.0, 80.0), 1) for _ in range(n)]
    slopes = [(-1.0, 1.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0), (1.0, 0.0)]
    return [BreakpointPiece(x, *rng.choice(slopes)) for x in xs]


def outcome_key(outcome):
    """Full observable state of a ShiftOutcome, including dict order."""
    return (
        list(outcome.left_thresholds.items()),
        list(outcome.right_thresholds.items()),
        outcome.xt_lo,
        outcome.xt_hi,
        outcome.feasible,
        outcome.passes,
        outcome.cell_visits,
        outcome.multirow_accesses,
        outcome.tall_accesses,
        outcome.sorted_cells,
    )


# ----------------------------------------------------------------------
# Registry / dispatch
# ----------------------------------------------------------------------
class TestRegistry:
    def test_python_backend_always_registered(self):
        assert "python" in BACKENDS
        assert DEFAULT_BACKEND == "python"

    def test_resolve_accepts_name_instance_and_none(self):
        backend = get_kernel_backend("python")
        assert resolve_backend("python") is backend
        assert resolve_backend(backend) is backend
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            get_kernel_backend("no-such-backend")

    def test_flex_config_validates_backend(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            FlexConfig(kernel_backend="no-such-backend").validate()

    @needs_numpy
    def test_flex_config_label_mentions_non_default_backend(self):
        assert "numpy" in FlexConfig(kernel_backend="numpy").label()
        assert "python" not in FlexConfig().label()


# ----------------------------------------------------------------------
# Curve construction + minimization
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", NON_REFERENCE)
@pytest.mark.parametrize("case", sorted(REGION_CASES))
@pytest.mark.parametrize("fwd_bwd", [False, True])
def test_curves_match_reference_on_regions(backend_name, case, fwd_bwd):
    """build + minimize + evaluate agree on every feasible insertion point."""
    region, target = prepared_region(**REGION_CASES[case])
    reference = get_kernel_backend("python")
    backend = get_kernel_backend(backend_name)
    ref_ctx = reference.build_sacs_context(region)
    checked = 0
    for point in enumerate_all_insertion_points(region, target):
        outcome = reference.shift_sacs(region, target, point, ref_ctx)
        if not outcome.feasible:
            continue
        ref_curves = reference.build_curves(region, target, point.bottom_row, outcome, 10.0)
        curves = backend.build_curves(region, target, point.bottom_row, outcome, 10.0)
        ref_eval = reference.minimize(
            ref_curves, outcome.xt_lo, outcome.xt_hi,
            preferred_x=target.gp_x, fwd_bwd=fwd_bwd,
        )
        evaluation = backend.minimize(
            curves, outcome.xt_lo, outcome.xt_hi,
            preferred_x=target.gp_x, fwd_bwd=fwd_bwd,
        )
        assert evaluation == ref_eval
        sites = [math.floor(ref_eval.best_x), math.ceil(ref_eval.best_x)]
        assert backend.evaluate(curves, sites) == reference.evaluate(ref_curves, sites)
        checked += 1
    assert checked > 10


@needs_numpy
@pytest.mark.parametrize("fwd_bwd", [False, True])
@pytest.mark.parametrize("seed", range(8))
def test_numpy_minimize_matches_on_random_pieces(seed, fwd_bwd, monkeypatch):
    """Randomized piece populations, forced through the vectorized path."""
    import repro.kernels.numpy_backend as numpy_backend

    monkeypatch.setattr(numpy_backend, "_VECTOR_MIN", 1)
    np = numpy_backend.np
    rng = random.Random(seed)
    reference = get_kernel_backend("python")
    backend = get_kernel_backend("numpy")
    for n in (1, 2, 3, 7, 20, 120):
        pieces = random_pieces(rng, n)
        constant = rng.uniform(-5.0, 5.0)
        lo = rng.uniform(-10.0, 30.0)
        hi = lo + rng.uniform(0.0, 60.0)
        preferred = rng.choice([None, rng.uniform(lo, hi)])
        curves = numpy_backend.CurveArrays(
            np.array([p.x for p in pieces]),
            np.array([p.left_slope for p in pieces]),
            np.array([p.right_slope for p in pieces]),
            constant,
        )
        ref = reference.minimize(
            (pieces, constant), lo, hi, preferred_x=preferred, fwd_bwd=fwd_bwd
        )
        got = backend.minimize(curves, lo, hi, preferred_x=preferred, fwd_bwd=fwd_bwd)
        assert got == ref
        queries = [lo, hi, (lo + hi) / 2, ref.best_x]
        assert backend.evaluate(curves, queries) == reference.evaluate(
            (pieces, constant), queries
        )


@needs_numpy
def test_numpy_minimize_handles_empty_curve_set():
    import repro.kernels.numpy_backend as numpy_backend

    np = numpy_backend.np
    empty = numpy_backend.CurveArrays(
        np.empty(0), np.empty(0), np.empty(0), 1.5
    )
    got = get_kernel_backend("numpy").minimize(empty, 0.0, 4.0, preferred_x=2.0)
    ref = get_kernel_backend("python").minimize(([], 1.5), 0.0, 4.0, preferred_x=2.0)
    assert got == ref


@needs_numpy
def test_numpy_shift_accepts_reference_context():
    """A caller-owned reference context must be augmented in place, so the
    once-per-region sort report (and every other counter) stays exact."""
    region, target = prepared_region(**REGION_CASES["mixed"])
    reference = get_kernel_backend("python")
    backend = get_kernel_backend("numpy")
    ref_ctx = reference.build_sacs_context(region)
    plain_ctx = reference.build_sacs_context(region)
    points = list(enumerate_all_insertion_points(region, target))[:6]
    for point in points:
        ref = reference.shift_sacs(region, target, point, ref_ctx)
        got = backend.shift_sacs(region, target, point, plain_ctx)
        assert outcome_key(got) == outcome_key(ref)


@needs_numpy
def test_numpy_minimize_rejects_empty_interval():
    import repro.kernels.numpy_backend as numpy_backend

    np = numpy_backend.np
    curves = numpy_backend.CurveArrays(
        np.arange(60.0), np.full(60, -1.0), np.full(60, 1.0), 0.0
    )
    with pytest.raises(ValueError, match="empty evaluation interval"):
        get_kernel_backend("numpy").minimize(curves, 10.0, 9.0)


@needs_numpy
def test_numpy_build_curves_pieces_match_reference(monkeypatch):
    """Forced-vectorized construction yields the reference pieces in order."""
    import repro.kernels.numpy_backend as numpy_backend

    monkeypatch.setattr(numpy_backend, "_VECTOR_MIN", 1)
    region, target = prepared_region(**REGION_CASES["dense"])
    reference = get_kernel_backend("python")
    backend = get_kernel_backend("numpy")
    ctx = reference.build_sacs_context(region)
    checked = 0
    for point in enumerate_all_insertion_points(region, target):
        outcome = reference.shift_sacs(region, target, point, ctx)
        if not outcome.feasible:
            continue
        ref_pieces, ref_const = reference.build_curves(
            region, target, point.bottom_row, outcome, 10.0
        )
        curves = backend.build_curves(region, target, point.bottom_row, outcome, 10.0)
        assert isinstance(curves, numpy_backend.CurveArrays)
        pieces, constant = curves.to_pieces()
        assert pieces == ref_pieces
        assert constant == ref_const
        checked += 1
        if checked >= 40:
            break
    assert checked


# ----------------------------------------------------------------------
# SACS shifting chains
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", NON_REFERENCE)
@pytest.mark.parametrize("case", sorted(REGION_CASES))
def test_sacs_outcomes_match_reference(backend_name, case):
    """Thresholds, bounds, counters and dict order match on every point."""
    region, target = prepared_region(**REGION_CASES[case])
    reference = get_kernel_backend("python")
    backend = get_kernel_backend(backend_name)
    ref_ctx = reference.build_sacs_context(region)
    ctx = backend.build_sacs_context(region)
    points = list(enumerate_all_insertion_points(region, target))
    assert points
    for point in points:
        ref = reference.shift_sacs(region, target, point, ref_ctx)
        got = backend.shift_sacs(region, target, point, ctx)
        assert outcome_key(got) == outcome_key(ref)


@pytest.mark.parametrize("backend_name", NON_REFERENCE)
@pytest.mark.parametrize("seed", range(6))
def test_sacs_matches_on_randomized_layouts(backend_name, seed):
    """Property-style sweep over randomized designs and target shapes."""
    rng = random.Random(1000 + seed)
    mix = rng.choice(
        [None, {1: 1.0}, {1: 0.55, 2: 0.25, 3: 0.1, 4: 0.07, 5: 0.03}]
    )
    region, target = prepared_region(
        num_cells=rng.randrange(60, 220),
        density=rng.uniform(0.4, 0.85),
        seed=seed,
        target_height=rng.choice([1, 1, 2, 3]),
        height_mix=mix,
        target_width=rng.choice([2.0, 4.0, 7.0]),
    )
    reference = get_kernel_backend("python")
    backend = get_kernel_backend(backend_name)
    ref_ctx = reference.build_sacs_context(region)
    ctx = backend.build_sacs_context(region)
    for point in enumerate_all_insertion_points(region, target):
        ref = reference.shift_sacs(region, target, point, ref_ctx)
        got = backend.shift_sacs(region, target, point, ctx)
        assert outcome_key(got) == outcome_key(ref)


# ----------------------------------------------------------------------
# FOP and end-to-end legalization
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", NON_REFERENCE)
@pytest.mark.parametrize("case", sorted(REGION_CASES))
def test_fop_positions_match_reference(backend_name, case):
    region, target = prepared_region(**REGION_CASES[case])
    results = {}
    for name in ("python", backend_name):
        config = FOPConfig(shifter=SortAheadShifter(backend=name), backend=name)
        results[name] = find_optimal_position(region, target, config)
    ref, got = results["python"], results[backend_name]
    assert (got.feasible, got.bottom_row, got.x, got.cost) == (
        ref.feasible, ref.bottom_row, ref.x, ref.cost
    )
    assert (got.n_points_evaluated, got.n_points_feasible) == (
        ref.n_points_evaluated, ref.n_points_feasible
    )


#: Fresh-layout factories mirroring the tiny_design / dense_design fixtures
#: (each backend needs its own unlegalized copy).
DESIGN_FACTORIES = {
    "tiny_design": lambda: small_design(),
    "dense_design": lambda: small_design(num_cells=120, density=0.82, seed=9),
}


@pytest.mark.parametrize("backend_name", NON_REFERENCE)
@pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
def test_mgl_legalization_identical_across_backends(backend_name, design_name):
    def run(backend):
        layout = DESIGN_FACTORIES[design_name]()
        legalizer = MGLLegalizer(
            FOPConfig(shifter=SortAheadShifter()), backend=backend
        )
        result = legalizer.legalize(layout)
        return layout, result

    ref_layout, ref_result = run("python")
    layout, result = run(backend_name)
    assert [(c.x, c.y) for c in layout.cells] == [
        (c.x, c.y) for c in ref_layout.cells
    ]
    assert result.average_displacement == ref_result.average_displacement
    assert result.failed_cells == ref_result.failed_cells
    trace, ref_trace = result.trace, ref_result.trace
    assert trace.kernel_backend == backend_name
    assert ref_trace.kernel_backend == "python"
    assert trace.total_insertion_points == ref_trace.total_insertion_points
    assert trace.total_shift_visits == ref_trace.total_shift_visits
    assert trace.total_breakpoints == ref_trace.total_breakpoints
    assert trace.total_sort_items == ref_trace.total_sort_items


@needs_numpy
def test_backend_override_does_not_mutate_shared_config():
    """MGLLegalizer(backend=...) must copy, not write through, the config."""
    shared = FOPConfig(shifter=SortAheadShifter())
    fast = MGLLegalizer(shared, backend="numpy")
    reference = MGLLegalizer(shared)
    assert shared.backend is None
    assert resolve_backend(reference.fop_config.backend).name == "python"
    assert resolve_backend(fast.fop_config.backend).name == "numpy"
    assert fast.fop_config.shifter is not shared.shifter
    assert reference.fop_config.shifter is shared.shifter


@pytest.mark.parametrize("backend_name", NON_REFERENCE)
def test_flex_legalization_identical_across_backends(backend_name):
    def run(backend):
        layout = DESIGN_FACTORIES["dense_design"]()
        result = FlexLegalizer(FlexConfig(kernel_backend=backend)).legalize(layout)
        return layout, result

    ref_layout, ref_result = run("python")
    layout, result = run(backend_name)
    assert [(c.x, c.y) for c in layout.cells] == [
        (c.x, c.y) for c in ref_layout.cells
    ]
    assert result.average_displacement == ref_result.average_displacement
    # The modeled hardware runtime derives from the (identical) counters.
    assert result.fpga.total_cycles == ref_result.fpga.total_cycles
    assert result.trace.kernel_backend == backend_name


# ----------------------------------------------------------------------
# Batched cross-insertion-point kernels
# ----------------------------------------------------------------------
class TestBatchKernels:
    """minimize_batch / evaluate_batch equal the per-point paths bit for bit."""

    def _random_batch(self, rng, k, numpy_backend):
        np = numpy_backend.np
        sets, bounds, piece_sets = [], [], []
        for _ in range(k):
            n = rng.choice([1, 2, 3, 7, 20, 120, 300])
            pieces = random_pieces(rng, n)
            constant = rng.uniform(-5.0, 5.0)
            lo = rng.uniform(-10.0, 30.0)
            hi = lo + rng.uniform(0.0, 60.0)
            sets.append(
                numpy_backend.CurveArrays(
                    np.array([p.x for p in pieces]),
                    np.array([p.left_slope for p in pieces]),
                    np.array([p.right_slope for p in pieces]),
                    constant,
                )
            )
            piece_sets.append((pieces, constant))
            bounds.append((lo, hi))
        return sets, piece_sets, bounds

    @needs_numpy
    @pytest.mark.parametrize("fwd_bwd", [False, True])
    @pytest.mark.parametrize("seed", range(4))
    def test_numpy_minimize_batch_matches_reference(self, seed, fwd_bwd):
        import repro.kernels.numpy_backend as numpy_backend

        rng = random.Random(4000 + seed)
        reference = get_kernel_backend("python")
        backend = get_kernel_backend("numpy")
        for trial in range(8):
            k = rng.randrange(2, 12)
            sets, piece_sets, bounds = self._random_batch(rng, k, numpy_backend)
            preferred = rng.choice([None, 12.5])
            got = backend.minimize_batch(
                sets, bounds, preferred_x=preferred, fwd_bwd=fwd_bwd
            )
            refs = [
                reference.minimize(ps, lo, hi, preferred_x=preferred, fwd_bwd=fwd_bwd)
                for ps, (lo, hi) in zip(piece_sets, bounds)
            ]
            per_point = [
                backend.minimize(c, lo, hi, preferred_x=preferred, fwd_bwd=fwd_bwd)
                for c, (lo, hi) in zip(sets, bounds)
            ]
            assert got == refs
            assert got == per_point

    @needs_numpy
    def test_numpy_evaluate_batch_matches_reference(self):
        import repro.kernels.numpy_backend as numpy_backend

        rng = random.Random(77)
        reference = get_kernel_backend("python")
        backend = get_kernel_backend("numpy")
        sets, piece_sets, bounds = self._random_batch(rng, 9, numpy_backend)
        queries = [
            sorted({float(math.floor(lo)), float(math.ceil(hi)), (lo + hi) / 2.0})
            for lo, hi in bounds
        ]
        queries[3] = []  # empty query lists must be preserved
        got = backend.evaluate_batch(sets, queries)
        refs = [reference.evaluate(ps, q) for ps, q in zip(piece_sets, queries)]
        assert got == refs

    @needs_numpy
    def test_numpy_minimize_batch_mixed_scalar_and_vector_sets(self):
        import repro.kernels.numpy_backend as numpy_backend

        rng = random.Random(5)
        reference = get_kernel_backend("python")
        backend = get_kernel_backend("numpy")
        np = numpy_backend.np
        pieces = random_pieces(rng, 200)
        vector = numpy_backend.CurveArrays(
            np.array([p.x for p in pieces]),
            np.array([p.left_slope for p in pieces]),
            np.array([p.right_slope for p in pieces]),
            1.25,
        )
        scalar = (random_pieces(rng, 5), -0.5)
        empty = numpy_backend.CurveArrays(np.empty(0), np.empty(0), np.empty(0), 2.0)
        sets = [scalar, vector, empty, vector]
        bounds = [(0.0, 10.0), (5.0, 40.0), (0.0, 4.0), (1.0, 2.0)]
        got = backend.minimize_batch(sets, bounds, preferred_x=3.0)
        for curves, (lo, hi), result in zip(sets, bounds, got):
            if isinstance(curves, numpy_backend.CurveArrays):
                ref = reference.minimize(
                    (curves.to_pieces()[0], curves.constant), lo, hi, preferred_x=3.0
                )
            else:
                ref = reference.minimize(curves, lo, hi, preferred_x=3.0)
            assert result == ref

    @needs_numpy
    def test_numpy_minimize_batch_rejects_empty_interval(self):
        import repro.kernels.numpy_backend as numpy_backend

        np = numpy_backend.np
        curves = numpy_backend.CurveArrays(
            np.arange(60.0), np.full(60, -1.0), np.full(60, 1.0), 0.0
        )
        with pytest.raises(ValueError, match="empty evaluation interval"):
            get_kernel_backend("numpy").minimize_batch(
                [curves, curves], [(0.0, 5.0), (10.0, 9.0)]
            )

    @needs_numpy
    def test_numpy_minimize_batch_routes_near_duplicates_to_oracle(self):
        import repro.kernels.numpy_backend as numpy_backend

        np = numpy_backend.np
        reference = get_kernel_backend("python")
        backend = get_kernel_backend("numpy")
        # One row with a near-coincident (0 < dx <= eps) breakpoint pair.
        xs = np.array([1.0, 1.0 + 5e-10, 2.0] + list(np.arange(3.0, 60.0)))
        near = numpy_backend.CurveArrays(
            xs, np.full(len(xs), -1.0), np.full(len(xs), 1.0), 0.0
        )
        clean = numpy_backend.CurveArrays(
            np.arange(60.0), np.full(60, -1.0), np.full(60, 1.0), 0.5
        )
        got = backend.minimize_batch([near, clean], [(0.0, 50.0), (0.0, 50.0)])
        ref_near = reference.minimize((near.to_pieces()[0], 0.0), 0.0, 50.0)
        ref_clean = reference.minimize((clean.to_pieces()[0], 0.5), 0.0, 50.0)
        assert got == [ref_near, ref_clean]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_default_batch_api_equals_scalar_loop(self, backend_name):
        """Every backend's batch API must agree with its scalar methods."""
        region, target = prepared_region(**REGION_CASES["mixed"])
        reference = get_kernel_backend("python")
        backend = get_kernel_backend(backend_name)
        ctx = reference.build_sacs_context(region)
        sets, bounds = [], []
        for point in enumerate_all_insertion_points(region, target):
            outcome = reference.shift_sacs(region, target, point, ctx)
            if not outcome.feasible:
                continue
            sets.append(
                backend.build_curves(region, target, point.bottom_row, outcome, 10.0)
            )
            bounds.append((outcome.xt_lo, outcome.xt_hi))
            if len(sets) >= 24:
                break
        batch = backend.minimize_batch(sets, bounds, preferred_x=target.gp_x)
        loop = [
            backend.minimize(c, lo, hi, preferred_x=target.gp_x)
            for c, (lo, hi) in zip(sets, bounds)
        ]
        assert batch == loop
        queries = [[math.floor(e.best_x), math.ceil(e.best_x)] for e in batch]
        assert backend.evaluate_batch(sets, queries) == [
            backend.evaluate(c, q) for c, q in zip(sets, queries)
        ]
