"""Tests for benchmark generation (repro.benchgen) and design I/O."""

from __future__ import annotations


import pytest

from repro.benchgen import DesignSpec, generate_design, iccad2017_design, iccad2017_suite
from repro.benchgen.generator import describe_design
from repro.benchgen.iccad2017 import (
    ICCAD2017_BENCHMARKS,
    benchmark_names,
    get_benchmark,
    iccad2017_spec,
)
from repro.designio import (
    layout_from_dict,
    layout_to_dict,
    load_cells,
    load_layout_json,
    save_cells,
    save_layout_json,
)
from repro.legality import LegalityChecker


class TestDesignSpec:
    def test_height_mix_normalised(self):
        spec = DesignSpec(name="d", num_cells=10, density=0.5, height_mix={1: 2.0, 2: 2.0})
        assert spec.height_mix == {1: 0.5, 2: 0.5}

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            DesignSpec(name="d", num_cells=10, density=1.2)

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            DesignSpec(name="d", num_cells=0, density=0.5)

    def test_scaled_preserves_density(self):
        spec = DesignSpec(name="d", num_cells=1000, density=0.6)
        scaled = spec.scaled(0.1)
        assert scaled.num_cells == 100
        assert scaled.density == spec.density
        assert scaled.height_mix == spec.height_mix

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            DesignSpec(name="d", num_cells=10, density=0.5).scaled(0.0)


class TestGenerator:
    def test_deterministic(self):
        spec = DesignSpec(name="d", num_cells=60, density=0.5, seed=4)
        a = generate_design(spec)
        b = generate_design(spec)
        assert [(c.gp_x, c.gp_y, c.width, c.height) for c in a.cells] == [
            (c.gp_x, c.gp_y, c.width, c.height) for c in b.cells
        ]

    def test_seed_changes_design(self):
        a = generate_design(DesignSpec(name="d", num_cells=60, density=0.5, seed=1))
        b = generate_design(DesignSpec(name="d", num_cells=60, density=0.5, seed=2))
        assert [(c.gp_x, c.gp_y) for c in a.cells] != [(c.gp_x, c.gp_y) for c in b.cells]

    def test_cell_count(self):
        layout = generate_design(DesignSpec(name="d", num_cells=75, density=0.5, seed=0))
        assert len(layout.movable_cells()) == 75

    def test_density_close_to_target(self):
        for target in (0.3, 0.6, 0.85):
            layout = generate_design(DesignSpec(name="d", num_cells=300, density=target, seed=3))
            assert layout.density() == pytest.approx(target, rel=0.25)

    def test_cells_inside_chip(self):
        layout = generate_design(DesignSpec(name="d", num_cells=150, density=0.7, seed=5))
        for cell in layout.cells:
            assert -1e-9 <= cell.gp_x <= layout.width - cell.width + 1e-9
            assert -1e-9 <= cell.gp_y <= layout.height - cell.height + 1e-9

    def test_height_mix_respected(self):
        spec = DesignSpec(
            name="d", num_cells=400, density=0.5, seed=6, height_mix={1: 0.5, 2: 0.3, 4: 0.2}
        )
        layout = generate_design(spec)
        hist = layout.height_histogram()
        assert set(hist) <= {1, 2, 4}
        assert hist[1] / 400 == pytest.approx(0.5, abs=0.1)

    def test_no_cells_marked_legal(self):
        layout = generate_design(DesignSpec(name="d", num_cells=50, density=0.5, seed=7))
        assert all(not c.legalized for c in layout.movable_cells())

    def test_blockages_generated(self):
        spec = DesignSpec(
            name="d", num_cells=100, density=0.4, seed=8, fixed_blockage_fraction=0.05
        )
        layout = generate_design(spec)
        assert len(layout.fixed_cells()) >= 1

    def test_rows_even(self):
        layout = generate_design(DesignSpec(name="d", num_cells=90, density=0.5, seed=9))
        assert layout.num_rows % 2 == 0

    def test_describe_design(self):
        layout = generate_design(DesignSpec(name="d", num_cells=80, density=0.5, seed=10))
        desc = describe_design(layout)
        assert desc["num_cells"] == 80
        assert 0.0 <= desc["multi_row_fraction"] <= 1.0

    def test_perturbation_creates_overlaps_but_stays_local(self):
        layout = generate_design(DesignSpec(name="d", num_cells=200, density=0.7, seed=11))
        total_overlap = 0.0
        cells = layout.movable_cells()
        for i, a in enumerate(cells[:50]):
            for b in cells[i + 1 : 50]:
                total_overlap += a.overlap_area(b)
        assert total_overlap > 0.0  # the GP input genuinely needs legalization


class TestIccad2017Suite:
    def test_sixteen_benchmarks(self):
        assert len(ICCAD2017_BENCHMARKS) == 16
        assert len(benchmark_names()) == 16

    def test_lookup(self):
        info = get_benchmark("des_perf_1")
        assert info.cell_count == 112644
        assert info.density == pytest.approx(0.906)

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_spec_scaling(self):
        spec = iccad2017_spec("fft_a_md2", scale=0.01)
        assert spec.num_cells == round(30625 * 0.01)

    def test_md1_designs_have_no_tall_cells(self):
        for name in ("des_perf_1", "des_perf_a_md1", "des_perf_b_md1"):
            assert get_benchmark(name).tall_fraction() == 0.0

    def test_pci_b_a_md2_has_most_tall_cells(self):
        fractions = {b.name: b.tall_fraction() for b in ICCAD2017_BENCHMARKS}
        assert max(fractions, key=fractions.get) == "pci_b_a_md2"

    def test_design_generation(self):
        layout = iccad2017_design("pci_b_b_md2", scale=0.002)
        assert layout.name == "pci_b_b_md2"
        assert len(layout.movable_cells()) == round(28914 * 0.002)

    def test_generation_deterministic_by_name(self):
        a = iccad2017_design("fft_2_md2", scale=0.002)
        b = iccad2017_design("fft_2_md2", scale=0.002)
        assert [(c.gp_x, c.gp_y) for c in a.cells] == [(c.gp_x, c.gp_y) for c in b.cells]

    def test_suite_subset(self):
        pairs = list(iccad2017_suite(scale=0.001, names=["fft_a_md2", "fft_a_md3"]))
        assert [info.name for info, _ in pairs] == ["fft_a_md2", "fft_a_md3"]
        for info, layout in pairs:
            assert layout.name == info.name


class TestDesignIO:
    def test_cells_roundtrip(self, tmp_path, tiny_design):
        path = tmp_path / "design.cells"
        save_cells(tiny_design, path)
        loaded = load_cells(path)
        assert len(loaded.cells) == len(tiny_design.cells)
        assert loaded.num_rows == tiny_design.num_rows
        for a, b in zip(loaded.cells, tiny_design.cells):
            assert (a.width, a.height) == (b.width, b.height)
            assert a.gp_x == pytest.approx(b.gp_x, abs=1e-5)

    def test_cells_bad_header(self, tmp_path):
        path = tmp_path / "bad.cells"
        path.write_text("nonsense\n")
        with pytest.raises(ValueError):
            load_cells(path)

    def test_json_roundtrip(self, tmp_path, simple_layout):
        path = tmp_path / "design.json"
        save_layout_json(simple_layout, path)
        loaded = load_layout_json(path)
        assert len(loaded.cells) == len(simple_layout.cells)
        assert loaded.cells[1].height == simple_layout.cells[1].height
        assert loaded.cells[1].legalized == simple_layout.cells[1].legalized

    def test_dict_roundtrip_preserves_flags(self, simple_layout):
        simple_layout.cells[0].fixed = False
        data = layout_to_dict(simple_layout)
        loaded = layout_from_dict(data)
        assert loaded.cells[0].legalized
        report = LegalityChecker().check(loaded)
        assert report.legal
